//! **Ablation C** — short-range decryption strategies for exponential
//! ElGamal: linear scan (the paper's "brute-force the short plaintext
//! range") vs. baby-step/giant-step.
//!
//! The paper's tasks use |range| = 2, where the linear scan is optimal;
//! this ablation locates the crossover at which BSGS wins, justifying
//! the design choice of shipping both (DESIGN.md ablation C).

use dragoon_bench::{fmt_duration, time_avg};
use dragoon_crypto::elgamal::{discrete_log_bsgs, discrete_log_in_range, PlaintextRange};
use dragoon_crypto::{Fr, G1Projective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(0xab1a7e);
    println!("== Ablation: linear-scan vs BSGS short-range decryption ==\n");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "range", "linear scan", "BSGS", "winner"
    );
    for log_range in [1u32, 4, 8, 12, 16] {
        let bound = 1u64 << log_range;
        // Random plaintexts in range — average-case cost.
        let targets: Vec<_> = (0..8)
            .map(|_| {
                let m = rng.gen_range(0..bound);
                ((G1Projective::generator() * Fr::from_u64(m)).to_affine(), m)
            })
            .collect();
        let mut i = 0;
        let linear = time_avg(8, || {
            let (t, m) = &targets[i % targets.len()];
            i += 1;
            let r = discrete_log_in_range(t, &PlaintextRange::new(0, bound - 1));
            assert_eq!(r, Some(*m));
        });
        let mut i = 0;
        let bsgs = time_avg(8, || {
            let (t, m) = &targets[i % targets.len()];
            i += 1;
            let r = discrete_log_bsgs(t, bound);
            assert_eq!(r, Some(*m));
        });
        println!(
            "{:>10} {:>14} {:>14} {:>8}",
            format!("2^{log_range}"),
            fmt_duration(linear),
            fmt_duration(bsgs),
            if linear < bsgs { "linear" } else { "BSGS" }
        );
    }
    println!(
        "\nFor the paper's multiple-choice tasks (|range| <= 4) the linear scan wins;\n\
         BSGS takes over for larger numeric-answer ranges."
    );
}
