//! **Marketplace throughput** — HITs settled per 1 000 blocks under the
//! engine, and the batched-vs-individual VPKE verification speedup that
//! pays for the batched settlement path. Emits one JSON object per
//! measurement on stdout (lines prefixed `JSON:`) for the perf
//! trajectory.
//!
//! ```sh
//! cargo bench -p dragoon-bench --bench marketplace_throughput
//! DRAGOON_SEED=7 cargo bench -p dragoon-bench --bench marketplace_throughput
//! ```

use dragoon_bench::{fmt_duration, peak_rss_kb, time_once};
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_crypto::precomp::ProofCache;
use dragoon_crypto::vpke;
use dragoon_net::{NetConfig, RelaySpec};
use dragoon_sim::{
    run_market, seed_from_env_or, MarketConfig, MarketSim, PersistConfig, ProvingConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn market_throughput(seed: u64) {
    println!("== marketplace throughput ==");
    for (label, settlement) in [
        ("per_proof", dragoon_contract::SettlementMode::PerProof),
        ("batched", dragoon_contract::SettlementMode::Batched),
    ] {
        let config = MarketConfig {
            hits: 200,
            spawn_per_block: 10,
            workers: 80,
            worker_capacity: 5,
            settlement,
            seed,
            max_blocks: 900,
            ..MarketConfig::default()
        };
        let (wall, report) = time_once(|| run_market(config.clone()));
        let per_1k = report.hits_settled as f64 * 1_000.0 / report.blocks as f64;
        println!(
            "{label:<10} {} HITs settled in {} blocks ({per_1k:.0} per 1k blocks), \
             gas {:.0}k/block, wall {}",
            report.hits_settled,
            report.blocks,
            report.gas_per_block_mean / 1_000.0,
            fmt_duration(wall),
        );
        dragoon_trace::emit_summary(
            "JSON",
            format!(
                "{{\"bench\":\"market_throughput\",\"mode\":\"{label}\",\
                 \"hits_settled\":{},\"blocks\":{},\"hits_per_1k_blocks\":{per_1k:.1},\
                 \"wall_ms\":{},\"report\":{}}}",
                report.hits_settled,
                report.blocks,
                wall.as_millis(),
                report.to_json(),
            ),
        );
    }
}

/// A scale-tier market config: lightweight tasks (4 questions, 2 golds)
/// and roomy blocks, so the measurement isolates the engine + state
/// layer rather than proof arithmetic. The executor is pinned serial so
/// journal-vs-clone numbers measure checkpointing alone — the clone
/// baseline cannot run the parallel executor, and mixing the two effects
/// would inflate the comparison ([`parallel_exec_speedup`] measures the
/// executor separately, against this same serial footing).
fn scale_config(hits: usize, seed: u64, clone_checkpointing: bool) -> MarketConfig {
    MarketConfig {
        hits,
        spawn_per_block: 25,
        workers: (hits / 2).clamp(200, 2_500),
        worker_capacity: 8,
        questions: 4,
        golds: 2,
        k: 3,
        theta: 2,
        block_gas_limit: Some(100_000_000),
        max_blocks: 4_000,
        seed,
        clone_checkpointing,
        exec_threads: 1,
        ..MarketConfig::default()
    }
}

/// **Journal vs clone checkpointing** — the same 1 000-HIT market under
/// the journaled state layer and under the pre-journal whole-state
/// clone-per-transaction baseline. Reports are asserted identical (the
/// differential guarantee); only the wall clock differs. The baseline is
/// run at 1k HITs because its per-transaction cost grows with the number
/// of instances ever created — at 10k it is not worth anyone's time,
/// which is precisely the point of the journal.
fn checkpoint_speedup(seed: u64) {
    println!("\n== journaled state vs clone checkpointing (1 000 HITs) ==");
    let mut walls = Vec::new();
    for (label, clone_checkpointing) in [("journal", false), ("clone_checkpoint", true)] {
        let config = scale_config(1_000, seed, clone_checkpointing);
        let (wall, report) = time_once(|| run_market(config.clone()));
        walls.push((label, wall, report.to_json()));
        println!(
            "{label:<17} {} HITs settled in {} blocks, wall {}",
            report.hits_settled,
            report.blocks,
            fmt_duration(wall),
        );
    }
    let (_, journal_wall, journal_json) = &walls[0];
    let (_, clone_wall, clone_json) = &walls[1];
    assert_eq!(
        journal_json, clone_json,
        "journal and clone checkpointing must produce identical reports"
    );
    let speedup = clone_wall.as_secs_f64() / journal_wall.as_secs_f64();
    println!("speedup {speedup:.2}x (identical reports — differential holds)");
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"checkpoint_speedup\",\"hits\":1000,\
             \"journal_ms\":{},\"clone_ms\":{},\"speedup\":{speedup:.2}}}",
            journal_wall.as_millis(),
            clone_wall.as_millis(),
        ),
    );
}

/// **10k-HIT scale** — the headline scenario the journal unlocks: ten
/// thousand concurrent HITs multiplexed over one chain, journal-only
/// (see [`checkpoint_speedup`] for why the clone baseline sits this
/// one out). Emits the throughput JSON that seeds the perf trajectory.
fn market_scale_10k(seed: u64) {
    println!("\n== 10 000-HIT market scale (journaled) ==");
    let config = scale_config(10_000, seed, false);
    let (wall, report) = time_once(|| run_market(config.clone()));
    let per_1k = report.hits_settled as f64 * 1_000.0 / report.blocks as f64;
    let txs: usize = report.block_stats.iter().map(|b| b.txs).sum();
    println!(
        "{} of {} HITs settled in {} blocks ({per_1k:.0} per 1k blocks), \
         {txs} txs, gas {:.0}k/block, wall {}",
        report.hits_settled,
        report.hits_published,
        report.blocks,
        report.gas_per_block_mean / 1_000.0,
        fmt_duration(wall),
    );
    assert_eq!(report.hits_unfinished, 0, "10k-HIT run must drain");
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"market_scale_10k\",\"hits_settled\":{},\
             \"blocks\":{},\"hits_per_1k_blocks\":{per_1k:.1},\"txs\":{txs},\
             \"wall_ms\":{},\"tx_per_sec\":{:.0}}}",
            report.hits_settled,
            report.blocks,
            wall.as_millis(),
            txs as f64 / wall.as_secs_f64(),
        ),
    );
}

/// **Million-HIT scale** — the tier the sharded registry and the
/// persistent block store exist for. Minimal tasks (2 questions, 1
/// gold, K = 2), uncapped blocks and a wide spawn curve, so the
/// measurement stresses instance count: one registry holding a million
/// concurrent-lifecycle HITs, every one settled, under a peak-memory
/// ceiling. The HIT count scales through `DRAGOON_SCALE_HITS` (CI
/// smokes it at 20k; unset = the full million) and the ceiling through
/// `DRAGOON_MEM_CEILING_MB`. Reports blocks/sec, tx/sec and `VmHWM`.
fn market_scale_1m(seed: u64) {
    let hits: usize = std::env::var("DRAGOON_SCALE_HITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let ceiling_mb: u64 = std::env::var("DRAGOON_MEM_CEILING_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24_576);
    println!("\n== {hits}-HIT market scale (sharded registry) ==");
    let config = MarketConfig {
        hits,
        spawn_per_block: (hits / 500).clamp(25, 2_500),
        workers: (hits / 20).clamp(500, 50_000),
        worker_capacity: 8,
        questions: 2,
        golds: 1,
        k: 2,
        theta: 1,
        overbook: 0,
        block_gas_limit: None,
        max_blocks: 20_000,
        seed,
        ..MarketConfig::default()
    };
    let (wall, report) = time_once(|| run_market(config.clone()));
    assert_eq!(report.hits_unfinished, 0, "the scale run must drain");
    assert_eq!(report.hits_published, hits);
    let txs: usize = report.block_stats.iter().map(|b| b.txs).sum();
    let blocks_per_sec = report.blocks as f64 / wall.as_secs_f64();
    let tx_per_sec = txs as f64 / wall.as_secs_f64();
    let peak_mb = peak_rss_kb() / 1024;
    println!(
        "{} of {hits} HITs settled ({} cancelled) in {} blocks, {txs} txs, \
         {blocks_per_sec:.1} blocks/sec, {tx_per_sec:.0} tx/sec, wall {}",
        report.hits_settled,
        report.hits_cancelled,
        report.blocks,
        fmt_duration(wall),
    );
    println!("peak memory {peak_mb} MB (ceiling {ceiling_mb} MB)");
    assert!(
        peak_mb < ceiling_mb,
        "{hits}-HIT run peaked at {peak_mb} MB, over the {ceiling_mb} MB ceiling"
    );
    // The persisted tiers: the same run under the synchronous
    // full-snapshot store (the PR-8 durability path) and under the
    // pipelined lifecycle. The snapshot cadence adapts to the measured
    // block count so both paths publish a handful of artifacts whatever
    // `DRAGOON_SCALE_HITS` is set to.
    let cadence = (report.blocks / 8).max(4);
    let sync_dir = bench_store_dir("1m-sync");
    let (sync_wall, sync) = time_once(|| {
        run_market(MarketConfig {
            persist: Some(PersistConfig {
                snapshot_every: cadence,
                ..PersistConfig::new(sync_dir.clone())
            }),
            ..config.clone()
        })
    });
    let pipe_dir = bench_store_dir("1m-pipe");
    let (pipe_wall, piped) = time_once(|| {
        run_market(MarketConfig {
            persist: Some(PersistConfig {
                snapshot_every: cadence,
                ..PersistConfig::pipelined(pipe_dir.clone())
            }),
            ..config.clone()
        })
    });
    assert_eq!(
        report.to_json(),
        sync.to_json(),
        "synchronous persistence must not change the market"
    );
    assert_eq!(
        report.to_json(),
        piped.to_json(),
        "the pipelined lifecycle must not change the market"
    );
    let sync_stats = sync.persist.expect("sync store stats");
    let pipe_stats = piped.persist.expect("pipelined store stats");
    let sync_bps = sync.blocks as f64 / sync_wall.as_secs_f64();
    let pipe_bps = piped.blocks as f64 / pipe_wall.as_secs_f64();
    println!(
        "persisted sync      {sync_bps:.1} blocks/sec, {} full snapshots, \
         {}k snapshot bytes, wall {}",
        sync_stats.full_snapshots,
        sync_stats.snapshot_bytes_written / 1_000,
        fmt_duration(sync_wall),
    );
    println!(
        "persisted pipelined {pipe_bps:.1} blocks/sec, {} full + {} delta snapshots, \
         {}k snapshot bytes ({} dirty units), wall {}",
        pipe_stats.full_snapshots,
        pipe_stats.delta_snapshots,
        pipe_stats.snapshot_bytes_written / 1_000,
        pipe_stats.dirty_units_encoded,
        fmt_duration(pipe_wall),
    );
    // Incremental snapshots must scale with the dirty working set, not
    // the instance population: the delta-publishing store writes
    // strictly fewer snapshot bytes than one that re-encodes every
    // instance at each cadence point.
    assert!(
        pipe_stats.delta_snapshots > 0,
        "cadence must publish deltas"
    );
    assert!(
        pipe_stats.snapshot_bytes_written < sync_stats.snapshot_bytes_written,
        "dirty-shard deltas ({} bytes) must undercut full snapshots ({} bytes)",
        pipe_stats.snapshot_bytes_written,
        sync_stats.snapshot_bytes_written,
    );
    // Compaction bound: the log left on disk is the post-artifact tail,
    // a strict subset of everything appended over the run.
    let pipe_log_len = std::fs::metadata(pipe_dir.join("blocks.log"))
        .map(|m| m.len())
        .unwrap_or(0);
    assert!(
        pipe_stats.compactions > 0 && pipe_log_len < pipe_stats.log_bytes_written,
        "compaction must bound the log: {pipe_log_len} of {} bytes left",
        pipe_stats.log_bytes_written,
    );
    let _ = std::fs::remove_dir_all(&sync_dir);
    let _ = std::fs::remove_dir_all(&pipe_dir);
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"market_scale_1m\",\"hits\":{hits},\
             \"hits_settled\":{},\"hits_cancelled\":{},\"blocks\":{},\"txs\":{txs},\
             \"blocks_per_sec\":{blocks_per_sec:.1},\"tx_per_sec\":{tx_per_sec:.0},\
             \"peak_rss_mb\":{peak_mb},\"mem_ceiling_mb\":{ceiling_mb},\
             \"wall_ms\":{},\
             \"sync_blocks_per_sec\":{sync_bps:.1},\"pipelined_blocks_per_sec\":{pipe_bps:.1},\
             \"sync_snapshot_bytes\":{},\"pipelined_snapshot_bytes\":{},\
             \"pipelined_log_bytes_left\":{pipe_log_len},\
             \"sync_persist\":{},\"pipelined_persist\":{}}}",
            report.hits_settled,
            report.hits_cancelled,
            report.blocks,
            wall.as_millis(),
            sync_stats.snapshot_bytes_written,
            pipe_stats.snapshot_bytes_written,
            sync.persist_json(),
            piped.persist_json(),
        ),
    );
}

/// A scratch store directory under the system temp dir, wiped before
/// use so a rerun never recovers into a previous run's artifacts.
fn bench_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dragoon-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// **Pipelined vs synchronous persistence** — the same seeded market
/// under the PR-8 store (synchronous writes, full snapshots, flush per
/// append) and under the pipelined block lifecycle (background writer,
/// dirty-shard incremental snapshots, log compaction, overlapped
/// settlement verification). Reports are asserted byte-identical — the
/// pipeline is a pure performance change — so the wall-clock ratio is
/// the price the synchronous durability path was charging the round
/// loop.
fn pipeline_speedup(seed: u64) {
    for hits in [1_000usize, 10_000] {
        println!("\n== pipelined vs synchronous persistence ({hits} HITs) ==");
        let cadence = if hits >= 10_000 { 64 } else { 16 };
        let run = |persist: PersistConfig| {
            let config = MarketConfig {
                persist: Some(persist),
                ..scale_config(hits, seed, false)
            };
            time_once(|| run_market(config.clone()))
        };
        let sync_dir = bench_store_dir(&format!("sync{hits}"));
        let (sync_wall, sync) = run(PersistConfig {
            snapshot_every: cadence,
            ..PersistConfig::new(sync_dir.clone())
        });
        let pipe_dir = bench_store_dir(&format!("pipe{hits}"));
        let (pipe_wall, piped) = run(PersistConfig {
            snapshot_every: cadence,
            ..PersistConfig::pipelined(pipe_dir.clone())
        });
        assert_eq!(
            sync.to_json(),
            piped.to_json(),
            "pipelined and synchronous persistence must produce identical reports"
        );
        let sync_stats = sync.persist.expect("sync run reports store stats");
        let pipe_stats = piped.persist.expect("pipelined run reports store stats");
        assert!(
            pipe_stats.delta_snapshots > 0,
            "the pipelined run must publish deltas: {pipe_stats:?}"
        );
        let speedup = sync_wall.as_secs_f64() / pipe_wall.as_secs_f64();
        println!(
            "sync       {} HITs settled in {} blocks, wall {} ({}k snapshot bytes)",
            sync.hits_settled,
            sync.blocks,
            fmt_duration(sync_wall),
            sync_stats.snapshot_bytes_written / 1_000,
        );
        println!(
            "pipelined  {} HITs settled in {} blocks, wall {} ({}k snapshot bytes, \
             {} deltas, {} dirty units, overlap {}/{})",
            piped.hits_settled,
            piped.blocks,
            fmt_duration(pipe_wall),
            pipe_stats.snapshot_bytes_written / 1_000,
            pipe_stats.delta_snapshots,
            pipe_stats.dirty_units_encoded,
            pipe_stats.overlap_hits,
            pipe_stats.overlap_hits + pipe_stats.overlap_misses,
        );
        println!("pipeline_speedup {speedup:.2}x (identical reports — differential holds)");
        dragoon_trace::emit_summary(
            "JSON",
            format!(
                "{{\"bench\":\"pipeline_speedup\",\"hits\":{hits},\
                 \"sync_ms\":{},\"pipelined_ms\":{},\"pipeline_speedup\":{speedup:.2},\
                 \"sync_persist\":{},\"pipelined_persist\":{}}}",
                sync_wall.as_millis(),
                pipe_wall.as_millis(),
                sync.persist_json(),
                piped.persist_json(),
            ),
        );
        let _ = std::fs::remove_dir_all(&sync_dir);
        let _ = std::fs::remove_dir_all(&pipe_dir);
    }
}

/// A parallel-execution scale config: per-proof settlement, so VPKE and
/// PoQoEA verification cost sits *inside* the transactions the executor
/// fans out (batched settlement already parallelizes at the block
/// boundary), plus roomy blocks so batches are rarely cut by the cap.
fn parallel_config(hits: usize, seed: u64, exec_threads: usize) -> MarketConfig {
    MarketConfig {
        settlement: dragoon_contract::SettlementMode::PerProof,
        exec_threads,
        ..scale_config(hits, seed, false)
    }
}

/// **Parallel vs serial block execution** — the same per-proof market
/// run under the strictly serial executor (`exec_threads = 1`) and under
/// the optimistic parallel executor. Reports are asserted identical (the
/// differential guarantee of `tests/parallel_equivalence.rs`); only the
/// wall clock may differ. On a single-core host the executor degrades to
/// oversubscribed threads, so the speedup column is honest about the
/// thread budget it ran with.
fn parallel_exec_speedup(seed: u64) {
    // At least two workers so the parallel machinery actually engages
    // even when the host reports one core.
    let threads = dragoon_chain::resolve_threads(0).max(2);
    for hits in [1_000usize, 10_000] {
        println!("\n== parallel vs serial block execution ({hits} HITs, per-proof) ==");
        let (serial_wall, serial) = time_once(|| run_market(parallel_config(hits, seed, 1)));
        println!(
            "serial      {} HITs settled in {} blocks, wall {}",
            serial.hits_settled,
            serial.blocks,
            fmt_duration(serial_wall),
        );
        let (parallel_wall, parallel) =
            time_once(|| run_market(parallel_config(hits, seed, threads)));
        println!(
            "parallel({threads}) {} HITs settled in {} blocks, wall {}",
            parallel.hits_settled,
            parallel.blocks,
            fmt_duration(parallel_wall),
        );
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "parallel and serial execution must produce identical reports"
        );
        let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64();
        println!(
            "speedup {speedup:.2}x at {threads} threads (identical reports — differential holds)"
        );
        dragoon_trace::emit_summary(
            "JSON",
            format!(
                "{{\"bench\":\"parallel_exec_speedup\",\"hits\":{hits},\
                 \"threads\":{threads},\"serial_ms\":{},\"parallel_ms\":{},\
                 \"speedup\":{speedup:.2},\"scheduler\":{}}}",
                serial_wall.as_millis(),
                parallel_wall.as_millis(),
                parallel.scheduler_json(),
            ),
        );
    }
}

/// **Spawn-heavy parallel execution** — the workload the access-set
/// scheduler exists for: a 1k-HIT market whose spawn phase keeps roughly
/// a third of every round's mempool `Create`/`Publish` transactions
/// (concentrated spawning, small worker quotas). Under PR 3's scheduler
/// every `Create` was a whole-round serial barrier, so this market
/// degenerated to serial execution; with speculative id reservation the
/// spawn blocks parallelize like any other. Reports are asserted
/// identical; the JSON records the measured create share and the
/// scheduler counters alongside the speedup.
fn spawn_heavy_speedup(seed: u64) {
    let threads = dragoon_chain::resolve_threads(0).max(2);
    let hits = 1_000usize;
    const SPAWN_PER_BLOCK: usize = 200;
    println!("\n== spawn-heavy parallel vs serial execution ({hits} HITs, per-proof) ==");
    let config = |exec_threads: usize| MarketConfig {
        // Concentrated spawning: 200 creations per block while the
        // backlog lasts, against lightweight 2-worker tasks with no
        // overbooking, keeps roughly a third of each ramp round's
        // mempool `Create`/`Publish`. The cap is raised so a 200-create
        // block (~260M gas) is not cut — this bench measures
        // scheduling, not carry-over.
        spawn_per_block: SPAWN_PER_BLOCK,
        k: 2,
        theta: 2,
        overbook: 0,
        block_gas_limit: Some(600_000_000),
        ..parallel_config(hits, seed, exec_threads)
    };
    let (serial_wall, serial) = time_once(|| run_market(config(1)));
    let (parallel_wall, parallel) = time_once(|| run_market(config(threads)));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "spawn-heavy parallel and serial execution must produce identical reports"
    );
    // Every published HIT is exactly one funded, successful `Create`.
    let creates = serial.hits_published;
    let txs: usize = serial.block_stats.iter().map(|b| b.txs).sum();
    let create_share = creates as f64 / txs as f64;
    let spawn_blocks = serial.hits_published.div_ceil(SPAWN_PER_BLOCK);
    let spawn_txs: usize = serial
        .block_stats
        .iter()
        .take(spawn_blocks)
        .map(|b| b.txs)
        .sum();
    let spawn_share = serial.hits_published as f64 / spawn_txs.max(1) as f64;
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64();
    println!(
        "serial      {} HITs settled in {} blocks, wall {}",
        serial.hits_settled,
        serial.blocks,
        fmt_duration(serial_wall),
    );
    println!(
        "parallel({threads}) {} HITs settled in {} blocks, wall {}",
        parallel.hits_settled,
        parallel.blocks,
        fmt_duration(parallel_wall),
    );
    println!(
        "speedup {speedup:.2}x at {threads} threads; creates are {:.0}% of all txs \
         ({:.0}% of spawn-phase blocks) — identical reports",
        create_share * 100.0,
        spawn_share * 100.0,
    );
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"spawn_heavy_speedup\",\"hits\":{hits},\
             \"threads\":{threads},\"create_share\":{create_share:.3},\
             \"spawn_phase_create_share\":{spawn_share:.3},\
             \"serial_ms\":{},\"parallel_ms\":{},\"speedup\":{speedup:.2},\
             \"scheduler\":{}}}",
            serial_wall.as_millis(),
            parallel_wall.as_millis(),
            parallel.scheduler_json(),
        ),
    );
}

/// **Econ-layer overhead** — the same 1 000-HIT market with the
/// `dragoon-econ` layer off and in observe-only mode (reputation fed by
/// every settlement receipt, pricing/churn/adversaries idle, no gating
/// or ordering). Observe-only econ influences nothing, so the reports
/// are asserted byte-identical and the wall-clock delta prices exactly
/// the layer's bookkeeping — the acceptance bar is <5% at 1k HITs.
fn econ_overhead(seed: u64) {
    println!("\n== econ layer overhead (1 000 HITs, observe-only) ==");
    let base = scale_config(1_000, seed, false);
    let econ_config = MarketConfig {
        econ: dragoon_econ::EconConfig::observe_only(),
        ..base.clone()
    };
    // Best-of-two walls per config: a single cold run overstates the
    // delta by more than the delta itself (page cache, frequency ramp).
    let (off_a, off) = time_once(|| run_market(base.clone()));
    let (off_b, _) = time_once(|| run_market(base.clone()));
    let off_wall = off_a.min(off_b);
    let (on_a, on) = time_once(|| run_market(econ_config.clone()));
    let (on_b, _) = time_once(|| run_market(econ_config.clone()));
    let on_wall = on_a.min(on_b);
    assert_eq!(
        off.to_json(),
        on.to_json(),
        "observe-only econ must not change the market"
    );
    assert!(on.econ.is_some() && off.econ.is_none());
    let overhead = on_wall.as_secs_f64() / off_wall.as_secs_f64() - 1.0;
    println!(
        "econ_off  {} HITs settled in {} blocks, wall {}",
        off.hits_settled,
        off.blocks,
        fmt_duration(off_wall),
    );
    println!(
        "econ_on   {} HITs settled in {} blocks, wall {} ({} receipts absorbed)",
        on.hits_settled,
        on.blocks,
        fmt_duration(on_wall),
        on.econ.as_ref().map_or(0, |e| e.rep_receipts),
    );
    println!(
        "overhead {:+.1}% (identical reports — observe-only differential holds)",
        overhead * 100.0
    );
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"econ_overhead\",\"hits\":1000,\
             \"econ_off_ms\":{},\"econ_on_ms\":{},\"overhead_pct\":{:.2},\
             \"econ\":{}}}",
            off_wall.as_millis(),
            on_wall.as_millis(),
            overhead * 100.0,
            on.econ_json(),
        ),
    );
}

/// **Tracing overhead** — the same 1 000-HIT market with `dragoon-trace`
/// fully off and with both layers live (deterministic events captured in
/// memory, wall-clock spans recorded per thread). Tracing observes the
/// pipeline and never steers it, so the reports are asserted
/// byte-identical and the wall-clock delta prices exactly the
/// instrumentation — the acceptance bar is <5% at 1k HITs.
fn trace_overhead(seed: u64) {
    println!("\n== tracing overhead (1 000 HITs, both layers live) ==");
    let config = scale_config(1_000, seed, false);
    // Best-of-two walls per mode, same rationale as `econ_overhead`.
    let (off_a, off) = time_once(|| run_market(config.clone()));
    let (off_b, _) = time_once(|| run_market(config.clone()));
    let off_wall = off_a.min(off_b);
    let capture = dragoon_trace::start_full_capture();
    let (on_a, on) = time_once(|| run_market(config.clone()));
    let (on_b, _) = time_once(|| run_market(config.clone()));
    let on_wall = on_a.min(on_b);
    let events = capture.finish();
    assert_eq!(
        off.to_json(),
        on.to_json(),
        "tracing must not change the market"
    );
    assert!(
        !events.is_empty(),
        "a traced run must record deterministic events"
    );
    let overhead = on_wall.as_secs_f64() / off_wall.as_secs_f64() - 1.0;
    println!(
        "trace_off {} HITs settled in {} blocks, wall {}",
        off.hits_settled,
        off.blocks,
        fmt_duration(off_wall),
    );
    println!(
        "trace_on  {} HITs settled in {} blocks, wall {} ({} events over 2 runs)",
        on.hits_settled,
        on.blocks,
        fmt_duration(on_wall),
        events.len(),
    );
    println!(
        "trace_overhead {:+.1}% (identical reports — tracing is invisible to the chain)",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "tracing overhead {:.2}% exceeds the 5% acceptance bar",
        overhead * 100.0
    );
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"trace_overhead\",\"hits\":1000,\
             \"trace_off_ms\":{},\"trace_on_ms\":{},\"trace_overhead\":{:.2},\
             \"events\":{}}}",
            off_wall.as_millis(),
            on_wall.as_millis(),
            overhead * 100.0,
            events.len(),
        ),
    );
}

/// **Network-layer overhead** — the same 1 000-HIT market single-node
/// and over a 4-node zero-delay gossip network (every replica
/// re-executes every canonical block serially). The canonical market is
/// asserted byte-identical to the single-node baseline — the net layer
/// observes the chain, it never steers it — so the wall-clock delta
/// prices exactly the replica replay + gossip bookkeeping. A lossy
/// variant (seeded delays, loss, duplicates, a withhold-and-release
/// relay) then reports blocks/sec with forks and reorgs in the mix.
fn net_overhead(seed: u64) {
    println!("\n== network layer overhead (1 000 HITs, 4 nodes) ==");
    let base = scale_config(1_000, seed, false);
    let zero_delay = MarketConfig {
        net: Some(NetConfig {
            delay: (0, 0),
            ..NetConfig::default()
        }),
        ..base.clone()
    };
    let (n1_a, n1) = time_once(|| run_market(base.clone()));
    let (n1_b, _) = time_once(|| run_market(base.clone()));
    let n1_wall = n1_a.min(n1_b);
    let (n4_a, n4) = time_once(|| run_market(zero_delay.clone()));
    let (n4_b, _) = time_once(|| run_market(zero_delay.clone()));
    let n4_wall = n4_a.min(n4_b);
    assert_eq!(
        n1.to_json(),
        n4.to_json(),
        "the net layer must not perturb the canonical market"
    );
    let zero_report = n4.net.as_ref().expect("net report");
    assert!(
        zero_report.converged && zero_report.forks_produced == 0 && zero_report.reorgs == 0,
        "zero-delay replicas track the canonical chain exactly"
    );
    let overhead = n4_wall.as_secs_f64() / n1_wall.as_secs_f64() - 1.0;
    println!(
        "single_node {} HITs settled in {} blocks, wall {}",
        n1.hits_settled,
        n1.blocks,
        fmt_duration(n1_wall),
    );
    println!(
        "four_node   {} HITs settled in {} blocks, wall {} ({} msgs gossiped)",
        n4.hits_settled,
        n4.blocks,
        fmt_duration(n4_wall),
        zero_report.messages_sent,
    );
    println!(
        "overhead {:+.1}% (identical reports — zero-delay differential holds)",
        overhead * 100.0
    );
    // The lossy wire: forks and reorgs now happen, and the final drain
    // still has to converge every node onto the canonical branch.
    let lossy = MarketConfig {
        net: Some(NetConfig {
            delay: (1, 3),
            drop_per_mille: 80,
            duplicate_per_mille: 40,
            fork_patience: 3,
            relay: RelaySpec::WithholdRelease { period: 6 },
            ..NetConfig::default()
        }),
        ..base
    };
    let (lossy_wall, lossy_report) = time_once(|| run_market(lossy.clone()));
    let lossy_net = lossy_report.net.as_ref().expect("net report");
    assert!(lossy_net.converged, "lossy run must still converge");
    let blocks_per_sec = lossy_report.blocks as f64 / lossy_wall.as_secs_f64();
    println!(
        "lossy       {} blocks at {blocks_per_sec:.0} blocks/sec, {} forks, \
         {} reorgs (max depth {}), wall {}",
        lossy_report.blocks,
        lossy_net.forks_produced,
        lossy_net.reorgs,
        lossy_net.max_reorg_depth,
        fmt_duration(lossy_wall),
    );
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"net_overhead\",\"hits\":1000,\"nodes\":4,\
             \"single_node_ms\":{},\"four_node_ms\":{},\"overhead_pct\":{:.2},\
             \"lossy_ms\":{},\"lossy_blocks_per_sec\":{blocks_per_sec:.1},\
             \"lossy_reorgs\":{},\"lossy_max_reorg_depth\":{},\"net\":{}}}",
            n1_wall.as_millis(),
            n4_wall.as_millis(),
            overhead * 100.0,
            lossy_wall.as_millis(),
            lossy_net.reorgs,
            lossy_net.max_reorg_depth,
            lossy_report.net_json(),
        ),
    );
}

/// **Cold vs prewarmed proof cache** — the same seeded 1 000-HIT market
/// under the async proving service, run twice against one shared
/// [`ProofCache`]: first with the cache empty (every requester key pays
/// its fixed-base table build inside a proof job) and again with the
/// cache already holding every table from the first run. Simulated-tick
/// latency comes from modeled cost, never the wall clock, so cache
/// warmth cannot perturb the chain — the reports are asserted
/// byte-identical and the wall-clock delta prices exactly the setup
/// work the keyed cache amortizes away.
fn cold_vs_prewarmed(seed: u64) {
    println!("\n== cold vs prewarmed proof cache (1 000 HITs, async proving) ==");
    let config = MarketConfig {
        proving: ProvingConfig {
            enabled: true,
            ticks_per_kilocost: 0,
        },
        ..scale_config(1_000, seed, false)
    };
    // Sized above the requester population so admission never bypasses
    // a key and the prewarmed run hits on every lookup.
    let cache = Arc::new(ProofCache::with_capacity(2_048));
    let (cold_wall, cold) =
        time_once(|| MarketSim::new_with_cache(config.clone(), Arc::clone(&cache)).run());
    let (warm_wall, warm) =
        time_once(|| MarketSim::new_with_cache(config.clone(), Arc::clone(&cache)).run());
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "cache warmth must not change the market"
    );
    let hits = warm.proving.cache_hits;
    let misses = warm.proving.cache_misses;
    assert!(hits > 0, "prewarmed run must hit the proof cache");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64();
    println!(
        "cold       {} HITs settled in {} blocks, wall {} ({} table builds)",
        cold.hits_settled,
        cold.blocks,
        fmt_duration(cold_wall),
        cold.proving.cache_misses,
    );
    println!(
        "prewarmed  {} HITs settled in {} blocks, wall {} ({hits} hits / {misses} misses)",
        warm.hits_settled,
        warm.blocks,
        fmt_duration(warm_wall),
    );
    println!(
        "speedup {speedup:.2}x, hit rate {:.1}% (identical reports — cache is invisible to the chain)",
        hit_rate * 100.0
    );
    dragoon_trace::emit_summary(
        "JSON",
        format!(
            "{{\"bench\":\"cold_vs_prewarmed\",\"hits\":1000,\
             \"cold_ms\":{},\"prewarmed_ms\":{},\"speedup\":{speedup:.2},\
             \"hit_rate\":{hit_rate:.3},\"proving\":{}}}",
            cold_wall.as_millis(),
            warm_wall.as_millis(),
            warm.proving.to_json(),
        ),
    );
}

fn batch_speedup(seed: u64) {
    println!("\n== batched vs individual VPKE verification ==");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c4);
    let kp = KeyPair::generate(&mut rng);
    let range = PlaintextRange::binary();
    for n in [8usize, 32, 128, 512] {
        let items: Vec<_> = (0..n)
            .map(|i| {
                let ct = kp.ek.encrypt((i % 2) as u64, &mut rng);
                let (claim, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
                (
                    vpke::DecryptionStatement {
                        ek: kp.ek,
                        ct,
                        claim,
                    },
                    proof,
                )
            })
            .collect();
        let (individual, ok_each) = time_once(|| {
            items
                .iter()
                .map(|(s, p)| vpke::verify(s, p))
                .collect::<Vec<_>>()
        });
        let (batched, ok_batch) = time_once(|| vpke::batch_verify_each(&items));
        assert_eq!(ok_each, ok_batch, "verdicts must agree");
        let speedup = individual.as_secs_f64() / batched.as_secs_f64();
        println!(
            "n = {n:<4} individual {:<10} batched {:<10} speedup {speedup:.2}x",
            fmt_duration(individual),
            fmt_duration(batched),
        );
        dragoon_trace::emit_summary(
            "JSON",
            format!(
                "{{\"bench\":\"vpke_batch_speedup\",\"n\":{n},\
                 \"individual_us\":{},\"batched_us\":{},\"speedup\":{speedup:.3}}}",
                individual.as_micros(),
                batched.as_micros(),
            ),
        );
    }
}

fn main() {
    let seed = seed_from_env_or(0xd1a6_0002);
    println!("seed: {seed:#x}\n");
    // CI (and anyone measuring one tier) can run a single bench by
    // name: `DRAGOON_BENCH_ONLY=market_scale_1m DRAGOON_SCALE_HITS=20000
    // cargo bench -p dragoon-bench --bench marketplace_throughput`.
    if let Ok(only) = std::env::var("DRAGOON_BENCH_ONLY") {
        match only.as_str() {
            "market_scale_1m" => market_scale_1m(seed),
            "market_scale_10k" => market_scale_10k(seed),
            "market_throughput" => market_throughput(seed),
            "pipeline_speedup" => pipeline_speedup(seed),
            "trace_overhead" => trace_overhead(seed),
            other => panic!("unknown DRAGOON_BENCH_ONLY tier: {other}"),
        }
        return;
    }
    market_throughput(seed);
    checkpoint_speedup(seed);
    pipeline_speedup(seed);
    parallel_exec_speedup(seed);
    spawn_heavy_speedup(seed);
    econ_overhead(seed);
    trace_overhead(seed);
    net_overhead(seed);
    cold_vs_prewarmed(seed);
    market_scale_10k(seed);
    market_scale_1m(seed);
    batch_speedup(seed);
}
