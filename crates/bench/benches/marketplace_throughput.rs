//! **Marketplace throughput** — HITs settled per 1 000 blocks under the
//! engine, and the batched-vs-individual VPKE verification speedup that
//! pays for the batched settlement path. Emits one JSON object per
//! measurement on stdout (lines prefixed `JSON:`) for the perf
//! trajectory.
//!
//! ```sh
//! cargo bench -p dragoon-bench --bench marketplace_throughput
//! DRAGOON_SEED=7 cargo bench -p dragoon-bench --bench marketplace_throughput
//! ```

use dragoon_bench::{fmt_duration, time_once};
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_crypto::vpke;
use dragoon_sim::{run_market, seed_from_env_or, MarketConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn market_throughput(seed: u64) {
    println!("== marketplace throughput ==");
    for (label, settlement) in [
        ("per_proof", dragoon_contract::SettlementMode::PerProof),
        ("batched", dragoon_contract::SettlementMode::Batched),
    ] {
        let config = MarketConfig {
            hits: 200,
            spawn_per_block: 10,
            workers: 80,
            worker_capacity: 5,
            settlement,
            seed,
            max_blocks: 900,
            ..MarketConfig::default()
        };
        let (wall, report) = time_once(|| run_market(config.clone()));
        let per_1k = report.hits_settled as f64 * 1_000.0 / report.blocks as f64;
        println!(
            "{label:<10} {} HITs settled in {} blocks ({per_1k:.0} per 1k blocks), \
             gas {:.0}k/block, wall {}",
            report.hits_settled,
            report.blocks,
            report.gas_per_block_mean / 1_000.0,
            fmt_duration(wall),
        );
        println!(
            "JSON: {{\"bench\":\"market_throughput\",\"mode\":\"{label}\",\
             \"hits_settled\":{},\"blocks\":{},\"hits_per_1k_blocks\":{per_1k:.1},\
             \"wall_ms\":{},\"report\":{}}}",
            report.hits_settled,
            report.blocks,
            wall.as_millis(),
            report.to_json(),
        );
    }
}

fn batch_speedup(seed: u64) {
    println!("\n== batched vs individual VPKE verification ==");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c4);
    let kp = KeyPair::generate(&mut rng);
    let range = PlaintextRange::binary();
    for n in [8usize, 32, 128, 512] {
        let items: Vec<_> = (0..n)
            .map(|i| {
                let ct = kp.ek.encrypt((i % 2) as u64, &mut rng);
                let (claim, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
                (
                    vpke::DecryptionStatement {
                        ek: kp.ek,
                        ct,
                        claim,
                    },
                    proof,
                )
            })
            .collect();
        let (individual, ok_each) = time_once(|| {
            items
                .iter()
                .map(|(s, p)| vpke::verify(s, p))
                .collect::<Vec<_>>()
        });
        let (batched, ok_batch) = time_once(|| vpke::batch_verify_each(&items));
        assert_eq!(ok_each, ok_batch, "verdicts must agree");
        let speedup = individual.as_secs_f64() / batched.as_secs_f64();
        println!(
            "n = {n:<4} individual {:<10} batched {:<10} speedup {speedup:.2}x",
            fmt_duration(individual),
            fmt_duration(batched),
        );
        println!(
            "JSON: {{\"bench\":\"vpke_batch_speedup\",\"n\":{n},\
             \"individual_us\":{},\"batched_us\":{},\"speedup\":{speedup:.3}}}",
            individual.as_micros(),
            batched.as_micros(),
        );
    }
}

fn main() {
    let seed = seed_from_env_or(0xd1a6_0002);
    println!("seed: {seed:#x}\n");
    market_throughput(seed);
    batch_speedup(seed);
}
