//! Statistical microbenchmarks (Criterion) of the cryptographic
//! substrate: field/curve/hash/pairing primitives and the VPKE/PoQoEA
//! kernels. These ground the table-level numbers in primitive costs.

use criterion::{criterion_group, criterion_main, Criterion};
use dragoon_core::poqoea;
use dragoon_core::task::Answer;
use dragoon_core::workload::imagenet_workload;
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_crypto::g1::G1Projective;
use dragoon_crypto::g2::G2Affine;
use dragoon_crypto::pairing::pairing;
use dragoon_crypto::{keccak256, vpke, Fq, Fr, G1Affine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_field(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fq::random(&mut rng);
    let b = Fq::random(&mut rng);
    c.bench_function("fq_mul", |bench| bench.iter(|| black_box(a) * black_box(b)));
    c.bench_function("fq_inverse", |bench| {
        bench.iter(|| black_box(a).inverse().unwrap())
    });
    let x = Fr::random(&mut rng);
    let y = Fr::random(&mut rng);
    c.bench_function("fr_mul", |bench| bench.iter(|| black_box(x) * black_box(y)));
}

fn bench_group(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let p = G1Projective::generator();
    let k = Fr::random(&mut rng);
    c.bench_function("g1_scalar_mul", |bench| {
        bench.iter(|| black_box(p) * black_box(k))
    });
    let q = G1Affine::random(&mut rng);
    c.bench_function("g1_add_mixed", |bench| {
        bench.iter(|| black_box(p).add_affine(&black_box(q)))
    });
}

fn bench_hash(c: &mut Criterion) {
    let data = vec![0xa5u8; 1024];
    c.bench_function("keccak256_1k", |bench| {
        bench.iter(|| keccak256(black_box(&data)))
    });
}

fn bench_pairing(c: &mut Criterion) {
    let mut c = c.benchmark_group("pairing");
    c.sample_size(10);
    let p = G1Affine::generator();
    let q = G2Affine::generator();
    c.bench_function("optimal_ate", |bench| {
        bench.iter(|| pairing(black_box(&p), black_box(&q)))
    });
    c.finish();
}

fn bench_vpke(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let kp = KeyPair::generate(&mut rng);
    let range = PlaintextRange::binary();
    let ct = kp.ek.encrypt(1, &mut rng);
    let mut prng = rng.clone();
    c.bench_function("vpke_prove", |bench| {
        bench.iter(|| vpke::prove(&kp.dk, black_box(&ct), &range, &mut prng))
    });
    let (claim, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
    let stmt = vpke::DecryptionStatement {
        ek: kp.ek,
        ct,
        claim,
    };
    c.bench_function("vpke_verify", |bench| {
        bench.iter(|| vpke::verify(black_box(&stmt), black_box(&proof)))
    });
}

fn bench_poqoea(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let kp = KeyPair::generate(&mut rng);
    let range = PlaintextRange::binary();
    let workload = imagenet_workload(4_000_000, &mut rng);
    let mut v = workload.truth.0.clone();
    for &i in &workload.golden.indexes {
        v[i] = 1 - v[i];
    }
    let cts = Answer(v).encrypt(&kp.ek, &mut rng);
    let mut prng = rng.clone();
    c.bench_function("poqoea_prove_6_golds", |bench| {
        bench.iter(|| {
            poqoea::prove_quality(&kp.dk, black_box(&cts), &workload.golden, &range, &mut prng)
        })
    });
    let (chi, proof) = poqoea::prove_quality(&kp.dk, &cts, &workload.golden, &range, &mut rng);
    c.bench_function("poqoea_verify_6_golds", |bench| {
        bench.iter(|| {
            poqoea::verify_quality_bool(&kp.ek, black_box(&cts), chi, &proof, &workload.golden)
        })
    });
}

criterion_group!(
    benches,
    bench_field,
    bench_group,
    bench_hash,
    bench_pairing,
    bench_vpke,
    bench_poqoea
);
criterion_main!(benches);
