//! **Table I reproduction** — off-chain *proving* cost of VPKE and
//! PoQoEA, concrete constructions vs. generic zk-proof (Groth16).
//!
//! Paper (ImageNet task: 106 binary questions, 6 gold standards):
//!
//! | Statement          | Time   | Peak memory |
//! |--------------------|--------|-------------|
//! | Ours VPKE          | 3 ms   | 53 MB       |
//! | Ours PoQoEA        | 10 ms  | 53 MB       |
//! | Generic VPKE       | 37 s   | 3.9 GB      |
//! | Generic PoQoEA     | 112 s  | 10.3 GB     |
//!
//! Absolute numbers differ (authors' libsnark/RSA-OAEP baseline vs. our
//! Groth16/Baby-Jubjub baseline, different hardware); the claim being
//! reproduced is the *orders-of-magnitude gap* between the special-
//! purpose construction and the generic framework.

use dragoon_bench::{fmt_duration, time_avg, time_once};
use dragoon_core::poqoea;
use dragoon_core::task::Answer;
use dragoon_core::workload::imagenet_workload;
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_crypto::vpke;
use dragoon_zkp::jubjub::{jub_decrypt_point, jub_encrypt, JubKeyPair, JubPoint};
use dragoon_zkp::{groth16, poqoea_circuit, vpke_circuit, CrsCache, PoqoeaInstance, VpkeInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x7ab1e1);
    println!("== Table I: off-chain proving cost (ImageNet task: 106 binary Qs, 6 golds) ==\n");

    // ---------------- Concrete constructions ----------------
    let kp = KeyPair::generate(&mut rng);
    let range = PlaintextRange::binary();
    let ct = kp.ek.encrypt(1, &mut rng);
    let mut r = rng.clone();
    let vpke_time = time_avg(50, || vpke::prove(&kp.dk, &ct, &range, &mut r));

    let workload = imagenet_workload(4_000_000, &mut rng);
    // A low-quality answer (all gold standards wrong) — the proving case
    // the requester actually pays for (rejections).
    let mut answer_vec = workload.truth.0.clone();
    for &i in &workload.golden.indexes {
        answer_vec[i] = 1 - answer_vec[i];
    }
    let bad = Answer(answer_vec);
    let cts = bad.encrypt(&kp.ek, &mut rng);
    let mut r = rng.clone();
    let poqoea_time = time_avg(20, || {
        poqoea::prove_quality(&kp.dk, &cts, &workload.golden, &range, &mut r)
    });
    // Working-set estimate: ciphertexts + proof items (the concrete
    // prover's live data).
    let concrete_mem_bytes = cts.0.len() * 128 + workload.golden.len() * 168;

    // ---------------- Generic zk-proof (Groth16) ----------------
    let jkp = JubKeyPair::generate(&mut rng);
    let jct = jub_encrypt(&jkp.pk, 1, &mut rng);
    let m_point = jub_decrypt_point(&jkp.sk, &jct);
    let vpke_inst = VpkeInstance {
        ct: jct,
        pk: jkp.pk,
        m_point,
    };
    let cs = vpke_circuit(&vpke_inst, &jkp.sk);
    // A fresh (cold) CRS cache: Table I deliberately measures the cold
    // trusted setup through the same entry point the cached paths use.
    let crs = CrsCache::new();
    let (vpke_setup_t, pk_vpke) = time_once(|| crs.get_or_setup(&cs, &mut rng).unwrap());
    let (gen_vpke_time, _proof) = time_once(|| groth16::prove(&pk_vpke, &cs, &mut rng).unwrap());
    // Optimized baseline: the same prover with Pippenger bucket MSMs —
    // what libsnark would look like with a modern MSM, keeping the
    // paper-faithful naive column above intact.
    let (opt_vpke_time, _proof) = time_once(|| {
        groth16::prove_with_msm(&pk_vpke, &cs, &mut rng, dragoon_crypto::g1::msm_pippenger).unwrap()
    });
    let gen_vpke_mem = pk_vpke.size_bytes() + cs.num_variables() * 32 * 8;

    // PoQoEA over the 6 gold standards (all mismatching — the rejection
    // case, matching the concrete measurement above).
    let g = JubPoint::generator();
    let mut jcts = Vec::new();
    let mut m_points = Vec::new();
    let mut gold_points = Vec::new();
    let mut mismatch = Vec::new();
    for (&_, &s) in workload.golden.indexes.iter().zip(&workload.golden.answers) {
        let wrong = 1 - s;
        let ct = jub_encrypt(&jkp.pk, wrong, &mut rng);
        m_points.push(jub_decrypt_point(&jkp.sk, &ct));
        jcts.push(ct);
        gold_points.push(g.mul_scalar(&dragoon_crypto::Fr::from_u64(s)));
        mismatch.push(true);
    }
    let poq_inst = PoqoeaInstance {
        pk: jkp.pk,
        cts: jcts,
        m_points,
        gold_points,
        mismatch,
    };
    let cs_poq = poqoea_circuit(&poq_inst, &jkp.sk);
    let (poq_setup_t, pk_poq) = time_once(|| crs.get_or_setup(&cs_poq, &mut rng).unwrap());
    let (gen_poq_time, _proof) = time_once(|| groth16::prove(&pk_poq, &cs_poq, &mut rng).unwrap());
    let (opt_poq_time, _proof) = time_once(|| {
        groth16::prove_with_msm(
            &pk_poq,
            &cs_poq,
            &mut rng,
            dragoon_crypto::g1::msm_pippenger,
        )
        .unwrap()
    });
    let gen_poq_mem = pk_poq.size_bytes() + cs_poq.num_variables() * 32 * 8;

    // ---------------- The table ----------------
    println!(
        "{:<22} {:>12} {:>14}   (paper: time / memory)",
        "Statement to Prove", "Time", "Working set"
    );
    println!(
        "{:<22} {:>12} {:>14}   (3 ms / 53 MB)",
        "Ours  VPKE",
        fmt_duration(vpke_time),
        format!("{} KB", concrete_mem_bytes / 1_000 + 1)
    );
    println!(
        "{:<22} {:>12} {:>14}   (10 ms / 53 MB)",
        "Ours  PoQoEA",
        fmt_duration(poqoea_time),
        format!("{} KB", concrete_mem_bytes / 1_000 + 1)
    );
    println!(
        "{:<22} {:>12} {:>14}   (37 s / 3.9 GB)",
        "Generic VPKE",
        fmt_duration(gen_vpke_time),
        format!("{} MB", gen_vpke_mem / 1_000_000)
    );
    println!(
        "{:<22} {:>12} {:>14}   (112 s / 10.3 GB)",
        "Generic PoQoEA",
        fmt_duration(gen_poq_time),
        format!("{} MB", gen_poq_mem / 1_000_000)
    );
    // Optimized-baseline column: same Groth16 prover, Pippenger MSMs.
    println!(
        "{:<22} {:>12} {:>14}   (optimized baseline: Pippenger MSM)",
        "Generic VPKE (opt)",
        fmt_duration(opt_vpke_time),
        format!("{} MB", gen_vpke_mem / 1_000_000)
    );
    println!(
        "{:<22} {:>12} {:>14}   (optimized baseline: Pippenger MSM)",
        "Generic PoQoEA (opt)",
        fmt_duration(opt_poq_time),
        format!("{} MB", gen_poq_mem / 1_000_000)
    );
    println!(
        "JSON: {{\"bench\":\"table1_prover_msm\",\"vpke_naive_ms\":{},\
         \"vpke_pippenger_ms\":{},\"poqoea_naive_ms\":{},\"poqoea_pippenger_ms\":{}}}",
        gen_vpke_time.as_millis(),
        opt_vpke_time.as_millis(),
        gen_poq_time.as_millis(),
        opt_poq_time.as_millis(),
    );
    println!(
        "\n(Generic-ZKP trusted setup, not counted above: VPKE {} | PoQoEA {};",
        fmt_duration(vpke_setup_t),
        fmt_duration(poq_setup_t)
    );
    println!(
        " circuit sizes: VPKE {} constraints, PoQoEA {} constraints)",
        cs.num_constraints(),
        cs_poq.num_constraints()
    );
    let speedup_vpke = gen_vpke_time.as_nanos() as f64 / vpke_time.as_nanos() as f64;
    let speedup_poq = gen_poq_time.as_nanos() as f64 / poqoea_time.as_nanos() as f64;
    println!(
        "\nSpeedup of concrete over generic: VPKE {speedup_vpke:.0}x, PoQoEA {speedup_poq:.0}x \
         (paper: ~12 000x and ~11 200x)"
    );
    assert!(
        speedup_vpke > 100.0 && speedup_poq > 100.0,
        "the orders-of-magnitude gap must reproduce"
    );
}
