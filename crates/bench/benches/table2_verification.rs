//! **Table II reproduction** — on-chain *verification* cost of VPKE and
//! PoQoEA, concrete constructions vs. generic zk-proof (Groth16 /
//! pairing check).
//!
//! Paper:
//!
//! | Statement        | Verifying time |
//! |------------------|----------------|
//! | Ours VPKE        | 1 ms           |
//! | Ours PoQoEA      | 2 ms           |
//! | Generic VPKE     | 11 ms          |
//! | Generic PoQoEA   | 17 ms          |
//!
//! The concrete verifications are a handful of G1 scalar multiplications;
//! the generic ones are pairing-product checks. The reproduced claim:
//! concrete verification beats even SNARKs' famously cheap verifier,
//! by roughly an order of magnitude.
//!
//! The bench also prints the *gas* equivalents under EIP-1108 prices,
//! connecting Table II to Table III's "verify PoQoEA to reject" row.

use dragoon_bench::{fmt_duration, time_avg};
use dragoon_chain::GasSchedule;
use dragoon_core::poqoea;
use dragoon_core::task::Answer;
use dragoon_core::workload::imagenet_workload;
use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
use dragoon_crypto::vpke;
use dragoon_zkp::jubjub::{jub_decrypt_point, jub_encrypt, JubKeyPair, JubPoint};
use dragoon_zkp::{
    circuits, groth16, poqoea_circuit, vpke_circuit, CrsCache, PoqoeaInstance, VpkeInstance,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x7ab1e2);
    println!("== Table II: verification cost (6 gold standards) ==\n");

    // ---------------- Concrete ----------------
    let kp = KeyPair::generate(&mut rng);
    let range = PlaintextRange::binary();
    let ct = kp.ek.encrypt(1, &mut rng);
    let (claim, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
    let stmt = vpke::DecryptionStatement {
        ek: kp.ek,
        ct,
        claim,
    };
    let vpke_verify = time_avg(50, || vpke::verify(&stmt, &proof));
    assert!(vpke::verify(&stmt, &proof));

    let workload = imagenet_workload(4_000_000, &mut rng);
    let mut answer_vec = workload.truth.0.clone();
    for &i in &workload.golden.indexes {
        answer_vec[i] = 1 - answer_vec[i];
    }
    let bad = Answer(answer_vec);
    let cts = bad.encrypt(&kp.ek, &mut rng);
    let (chi, qproof) = poqoea::prove_quality(&kp.dk, &cts, &workload.golden, &range, &mut rng);
    let poqoea_verify = time_avg(20, || {
        poqoea::verify_quality_bool(&kp.ek, &cts, chi, &qproof, &workload.golden)
    });
    assert!(poqoea::verify_quality_bool(
        &kp.ek,
        &cts,
        chi,
        &qproof,
        &workload.golden
    ));

    // ---------------- Generic (Groth16 verify) ----------------
    let jkp = JubKeyPair::generate(&mut rng);
    let jct = jub_encrypt(&jkp.pk, 1, &mut rng);
    let m_point = jub_decrypt_point(&jkp.sk, &jct);
    let vpke_inst = VpkeInstance {
        ct: jct,
        pk: jkp.pk,
        m_point,
    };
    let cs = vpke_circuit(&vpke_inst, &jkp.sk);
    let crs = CrsCache::new();
    let pk_vpke = crs.get_or_setup(&cs, &mut rng).unwrap();
    let gproof = groth16::prove(&pk_vpke, &cs, &mut rng).unwrap();
    let publics = circuits::vpke_public_inputs(&vpke_inst);
    let gen_vpke_verify = time_avg(5, || {
        groth16::verify(&pk_vpke.vk, &gproof, &publics).unwrap()
    });
    assert!(groth16::verify(&pk_vpke.vk, &gproof, &publics).unwrap());

    let g = JubPoint::generator();
    let mut jcts = Vec::new();
    let mut m_points = Vec::new();
    let mut gold_points = Vec::new();
    let mut mismatch = Vec::new();
    for &s in &workload.golden.answers {
        let ctj = jub_encrypt(&jkp.pk, 1 - s, &mut rng);
        m_points.push(jub_decrypt_point(&jkp.sk, &ctj));
        jcts.push(ctj);
        gold_points.push(g.mul_scalar(&dragoon_crypto::Fr::from_u64(s)));
        mismatch.push(true);
    }
    let poq_inst = PoqoeaInstance {
        pk: jkp.pk,
        cts: jcts,
        m_points,
        gold_points,
        mismatch,
    };
    let cs_poq = poqoea_circuit(&poq_inst, &jkp.sk);
    let pk_poq = crs.get_or_setup(&cs_poq, &mut rng).unwrap();
    let gproof_poq = groth16::prove(&pk_poq, &cs_poq, &mut rng).unwrap();
    let publics_poq = circuits::poqoea_public_inputs(&poq_inst);
    let gen_poq_verify = time_avg(5, || {
        groth16::verify(&pk_poq.vk, &gproof_poq, &publics_poq).unwrap()
    });
    assert!(groth16::verify(&pk_poq.vk, &gproof_poq, &publics_poq).unwrap());

    // ---------------- The table ----------------
    println!(
        "{:<22} {:>14}   (paper)",
        "Statement to Verify", "Verifying Time"
    );
    println!(
        "{:<22} {:>14}   (1 ms)",
        "Ours  VPKE",
        fmt_duration(vpke_verify)
    );
    println!(
        "{:<22} {:>14}   (2 ms)",
        "Ours  PoQoEA",
        fmt_duration(poqoea_verify)
    );
    println!(
        "{:<22} {:>14}   (11 ms)",
        "Generic VPKE",
        fmt_duration(gen_vpke_verify)
    );
    println!(
        "{:<22} {:>14}   (17 ms)",
        "Generic PoQoEA",
        fmt_duration(gen_poq_verify)
    );

    // Gas equivalents under EIP-1108.
    let sched = GasSchedule::istanbul();
    let vpke_gas = 5 * sched.ec_mul + 3 * sched.ec_add + sched.keccak(520);
    let poqoea_gas = (qproof.len() as u64) * (vpke_gas + sched.ec_mul);
    let snark_gas = sched.pairing(4) + 12 * sched.ec_mul; // 4-pair check + IC MSM
    println!("\nOn-chain gas equivalents (EIP-1108 schedule):");
    println!("  Ours VPKE          ~{vpke_gas} gas");
    println!("  Ours PoQoEA (χ=0)  ~{poqoea_gas} gas");
    println!("  Groth16 verify     ~{snark_gas} gas (pairing-dominated)");

    assert!(
        gen_vpke_verify > vpke_verify,
        "concrete verification must beat the SNARK verifier"
    );
    assert!(gen_poq_verify > poqoea_verify);
}
