//! **Table III reproduction** — on-chain overall handling fees of the
//! concrete ImageNet task (4 workers; 106 questions; 6 gold standards;
//! rejection if 3+ gold standards failed).
//!
//! Paper (gas / USD at 1.5 gwei, $115/ETH):
//!
//! | Row                                 | Gas      | USD   |
//! |-------------------------------------|----------|-------|
//! | Publish task (requester)            | ~1 293k  | $0.22 |
//! | Submit answers (per worker)         | ~2 830k  | $0.48 |
//! | Verify PoQoEA to reject an answer   | ~180k    | $0.03 |
//! | Overall (best: reject none)         | ~12 164k | $2.09 |
//! | Overall (worst: reject all)         | ~12 877k | $2.22 |
//!
//! Our numbers come out of the gas-metered contract running the full
//! protocol — every SSTORE, keccak, precompile call, log and calldata
//! byte priced per the Istanbul schedule.
//!
//! Also prints two ablations: gas vs. number of questions N, and the
//! Istanbul (EIP-1108) vs. Byzantium precompile-price comparison.

use dragoon_chain::{gas_to_usd, GasSchedule};
use dragoon_core::workload::{generate_workload, imagenet_workload, AnswerModel};
use dragoon_crypto::elgamal::PlaintextRange;
use dragoon_protocol::{driver, WorkerBehavior};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn behaviors(good: usize, bad: usize) -> Vec<WorkerBehavior> {
    let mut v = vec![WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 1.0 }); good];
    v.extend(vec![
        WorkerBehavior::Honest(AnswerModel::Diligent {
            accuracy: 0.0
        });
        bad
    ]);
    v
}

fn row(label: &str, gas: u64, paper: &str) {
    println!(
        "{:<44} {:>9}k  ${:>5.2}   (paper: {})",
        label,
        gas / 1_000,
        gas_to_usd(gas),
        paper
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0x7ab1e3);
    println!("== Table III: on-chain overall handling fees (ImageNet task) ==");
    println!("   task policy: 4 workers, 106 questions, 6 gold standards, Θ=4\n");

    // Best case: all four workers are perfect — no rejections.
    let best = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: behaviors(4, 0),
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    // Worst case: all four workers fail every gold standard — the
    // requester rejects all of them with PoQoEA proofs.
    let worst = driver::run(
        driver::RunConfig {
            workload: imagenet_workload(4_000_000, &mut rng),
            behaviors: behaviors(0, 4),
            schedule: GasSchedule::istanbul(),
            block_gas_limit: None,
        },
        &mut rng,
    );
    assert_eq!(worst.gas.rejects.len(), 4, "worst case rejects all four");
    assert!(best.gas.rejects.is_empty(), "best case rejects none");

    let submit = best.gas.submit_per_worker();
    let avg_submit = submit.iter().sum::<u64>() / submit.len() as u64;
    let avg_reject = worst.gas.rejects.iter().sum::<u64>() / worst.gas.rejects.len() as u64;

    row(
        "Publish task (by requester)",
        best.gas.publish,
        "~1293k / $0.22",
    );
    row("Submit answers (by worker)", avg_submit, "~2830k / $0.48");
    row(
        "Verify PoQoEA to reject an answer",
        avg_reject,
        "~180k / $0.03",
    );
    row(
        "Overall (best-case: reject no submission)",
        best.gas.total(),
        "~12164k / $2.09",
    );
    row(
        "Overall (worst-case: reject all submissions)",
        worst.gas.total(),
        "~12877k / $2.22",
    );
    println!(
        "\nMTurk handling fee for the same task: >= $4.00 — the decentralized\n\
         handling cost undercuts the centralized platform, the paper's headline claim."
    );
    assert!(
        gas_to_usd(worst.gas.total()) < 4.0,
        "on-chain handling must undercut MTurk's $4 fee"
    );
    assert!(worst.gas.total() > best.gas.total());

    // ---------------- Ablation A: gas vs. N ----------------
    println!("\n-- Ablation A: per-worker submit gas vs. number of questions N --");
    println!("{:>6} {:>14} {:>12}", "N", "submit gas", "USD");
    for n in [25usize, 50, 106, 200, 400] {
        let golds = 6.min(n / 4).max(1);
        let w = generate_workload(
            n,
            golds,
            4,
            golds as u64 / 2 + 1,
            PlaintextRange::binary(),
            4_000_000,
            &mut rng,
        );
        let rep = driver::run(
            driver::RunConfig {
                workload: w,
                behaviors: behaviors(4, 0),
                schedule: GasSchedule::istanbul(),
                block_gas_limit: None,
            },
            &mut rng,
        );
        let s = rep.gas.submit_per_worker();
        let avg = s.iter().sum::<u64>() / s.len() as u64;
        println!("{:>6} {:>13}k {:>11.2}", n, avg / 1_000, gas_to_usd(avg));
    }

    // ---------------- Ablation D: point compression what-if ----------------
    println!("\n-- Ablation D: calldata under compressed (32B) vs uncompressed (64B) points --");
    let sched = GasSchedule::istanbul();
    // A reveal carries 106 ciphertexts x 2 points; compression halves the
    // point bytes. Non-zero-byte cost dominates (random field elements).
    let uncompressed_bytes = 106 * 2 * 64;
    let compressed_bytes = 106 * 2 * 32;
    let unc = sched.calldata_nonzero * uncompressed_bytes as u64;
    let cmp = sched.calldata_nonzero * compressed_bytes as u64 + 106 * 2 * 40; // ~40 gas/point EVM decompression overhead (sqrt via modexp is far more; this is the optimistic bound)
    println!(
        "  reveal calldata, uncompressed: {:>7} gas   compressed: {:>7} gas   (saves {}k of a ~2.6M tx — why the paper keeps points uncompressed)",
        unc,
        cmp,
        (unc.saturating_sub(cmp)) / 1_000
    );

    // ---------------- Ablation B: Istanbul vs Byzantium ----------------
    println!("\n-- Ablation B: gas schedule (EIP-1108 repricing) --");
    for (name, sched) in [
        ("Istanbul (paper's setting)", GasSchedule::istanbul()),
        ("Byzantium (pre-EIP-1108)", GasSchedule::byzantium()),
    ] {
        let rep = driver::run(
            driver::RunConfig {
                workload: imagenet_workload(4_000_000, &mut rng),
                behaviors: behaviors(0, 4),
                schedule: sched,
                block_gas_limit: None,
            },
            &mut rng,
        );
        let avg_rej = rep.gas.rejects.iter().sum::<u64>() / rep.gas.rejects.len().max(1) as u64;
        println!(
            "{:<28} reject: {:>5}k gas   total: {:>7}k gas (${:.2})",
            name,
            avg_rej / 1_000,
            rep.gas.total() / 1_000,
            gas_to_usd(rep.gas.total())
        );
    }
}
