//! # dragoon-bench
//!
//! The benchmark harness regenerating every table of the paper's
//! evaluation (§VI), plus shared helpers for the bench binaries.
//!
//! * `benches/table1_proving.rs` — Table I (off-chain proving cost).
//! * `benches/table2_verification.rs` — Table II (verification cost).
//! * `benches/table3_gas.rs` — Table III (on-chain handling fees).
//! * `benches/ablation_decrypt.rs` — BSGS vs. linear-scan decryption.
//! * `benches/micro_primitives.rs` — statistical microbenchmarks
//!   (field/curve/hash/pairing) via Criterion.

use std::time::{Duration, Instant};

/// Times `f` averaged over `iters` runs (after one warmup).
pub fn time_avg<T>(iters: u32, mut f: impl FnMut() -> T) -> Duration {
    let _ = f();
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed() / iters
}

/// Times `f` once (for expensive operations like SNARK proving).
pub fn time_once<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Formats a duration compactly (µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.1} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.1} s", us as f64 / 1_000_000.0)
    }
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable — the
/// scale-tier benches report and gate on it so a memory regression at
/// million-HIT scale fails loudly instead of silently swapping.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}
