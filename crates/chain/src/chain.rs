//! The simulated blockchain: a round-based (synchronous) chain hosting
//! one contract state machine, with gas metering and transaction
//! atomicity.
//!
//! Rounds model the paper's clock periods: parties submit messages during
//! a round; at the round boundary the adversary schedules the pending
//! set (see [`crate::mempool`]), the scheduled transactions execute
//! in order against the contract, and a block is produced. Reverted
//! transactions consume their gas but leave contract and ledger state
//! untouched (as on Ethereum).
//!
//! Atomicity is provided by the **state journal**
//! ([`dragoon_ledger::journal`]): the chain brackets every transaction
//! with [`Journaled::begin_tx`] on the contract and the ledger, and a
//! revert replays the undo records of exactly the state the transaction
//! touched. The pre-journal strategy — cloning the whole contract +
//! ledger per transaction — survives as an opt-in baseline
//! ([`Chain::with_clone_checkpointing`]) for differential tests and the
//! throughput-comparison bench.

use crate::gas::{CalldataStats, Gas, GasMeter, GasSchedule};
use crate::mempool::{PendingTx, ReorderPolicy, Scheduled};
use crate::parallel::ParallelStats;
use dragoon_ledger::{Address, Journaled, Ledger};
use std::fmt;

/// Messages must report their calldata profile (for intrinsic gas) and a
/// short label (for receipts and gas reports).
pub trait ChainMessage: Clone {
    /// Zero/non-zero byte composition of the ABI-encoded payload.
    fn calldata(&self) -> CalldataStats;
    /// A short human-readable label, e.g. `"commit"`.
    fn label(&self) -> &'static str;
}

/// A contract hosted on the chain.
///
/// Implementations must be [`Journaled`]: the chain brackets each
/// transaction with `begin_tx` / `commit_tx` / `rollback_tx`, and the
/// contract records undo entries for every mutation so a revert restores
/// exactly the touched state (no whole-state snapshot).
pub trait StateMachine: Journaled {
    /// The message type accepted by the contract.
    type Msg: ChainMessage;
    /// The event type the contract emits.
    type Event: Clone;
    /// The error type for reverted transactions.
    type Error: fmt::Display;

    /// Handles one delivered transaction.
    fn on_message(
        &mut self,
        env: &mut ExecEnv<'_, Self::Event>,
        sender: Address,
        msg: Self::Msg,
    ) -> Result<(), Self::Error>;

    /// Invoked once at the beginning of every round (clock period) —
    /// contracts use this for phase deadlines.
    fn on_clock(&mut self, _env: &mut ExecEnv<'_, Self::Event>, _round: u64) {}
}

/// The execution environment a contract sees while handling a message.
pub struct ExecEnv<'a, E> {
    /// The cryptocurrency ledger `L`.
    pub ledger: &'a mut Ledger,
    /// The transaction gas meter.
    pub gas: &'a mut GasMeter,
    /// The gas schedule in force.
    pub schedule: &'a GasSchedule,
    /// The current round (clock period).
    pub round: u64,
    /// The contract's own address (escrow account).
    pub contract: Address,
    events: &'a mut Vec<E>,
}

impl<'a, E> ExecEnv<'a, E> {
    /// Assembles an execution environment (crate-internal: the parallel
    /// executor builds per-thread environments over shadow ledgers).
    pub(crate) fn new(
        ledger: &'a mut Ledger,
        gas: &'a mut GasMeter,
        schedule: &'a GasSchedule,
        round: u64,
        contract: Address,
        events: &'a mut Vec<E>,
    ) -> Self {
        Self {
            ledger,
            gas,
            schedule,
            round,
            contract,
            events,
        }
    }
}

impl<E: Clone> ExecEnv<'_, E> {
    /// Emits a contract event, charging LOG gas for `data_len` bytes with
    /// one topic (the event signature), as Solidity does.
    pub fn emit(&mut self, event: E, data_len: usize) {
        let cost = self.schedule.log(1, data_len);
        self.gas.charge("log", cost);
        self.events.push(event);
    }

    /// Emits an event without charging gas (for synthetic bookkeeping
    /// events that a real contract would not log).
    pub fn emit_free(&mut self, event: E) {
        self.events.push(event);
    }

    /// Runs `f` in a child environment scoped to a different contract
    /// address and event type — the internal-call mechanism a registry
    /// contract uses to route a transaction into one of many hosted
    /// instances (each with its own escrow account on the ledger).
    ///
    /// Gas, ledger and round state are shared with the parent; events
    /// the child emits are mapped through `adapt` back into the parent's
    /// event type. Transaction atomicity is unaffected: the child shares
    /// the outer transaction's journal scope, exactly as EVM sub-calls
    /// share the outer transaction's revert scope.
    pub fn scoped<E2: Clone, T>(
        &mut self,
        contract: Address,
        f: impl FnOnce(&mut ExecEnv<'_, E2>) -> T,
        adapt: impl FnMut(E2) -> E,
    ) -> T {
        let mut child_events: Vec<E2> = Vec::new();
        let out = {
            let mut child = ExecEnv {
                ledger: &mut *self.ledger,
                gas: &mut *self.gas,
                schedule: self.schedule,
                round: self.round,
                contract,
                events: &mut child_events,
            };
            f(&mut child)
        };
        self.events.extend(child_events.into_iter().map(adapt));
        out
    }
}

/// Execution status of a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxStatus {
    /// Executed successfully.
    Ok,
    /// Reverted with the contract's error message; state rolled back.
    Reverted(String),
}

/// A transaction receipt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// Submission sequence number.
    pub seq: u64,
    /// Sender address.
    pub sender: Address,
    /// Message label.
    pub label: &'static str,
    /// The round in which the transaction executed.
    pub round: u64,
    /// Gas consumed (including intrinsic cost; consumed even on revert).
    pub gas_used: Gas,
    /// Outcome.
    pub status: TxStatus,
    /// The labelled gas breakdown for this transaction.
    pub gas_breakdown: Vec<(&'static str, Gas)>,
}

/// A produced block: the receipts of one round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Round number (block height).
    pub round: u64,
    /// Receipts, in execution order.
    pub receipts: Vec<Receipt>,
}

/// A compact per-block footprint read at block boundaries — the
/// chain-level observation feed market-economics layers (dynamic
/// pricing, congestion models) consume without re-scanning receipts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockObservation {
    /// Block height (round number).
    pub round: u64,
    /// Executed transactions (including reverted).
    pub txs: usize,
    /// Reverted transactions.
    pub reverted: usize,
    /// Gas consumed by the block.
    pub gas_used: Gas,
}

impl Block {
    /// Summarizes this block as a [`BlockObservation`].
    pub fn observation(&self) -> BlockObservation {
        BlockObservation {
            round: self.round,
            txs: self.receipts.len(),
            reverted: self
                .receipts
                .iter()
                .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
                .count(),
            gas_used: self.receipts.iter().map(|r| r.gas_used).sum(),
        }
    }
}

/// An open per-transaction checkpoint: either the journal transactions
/// the chain opened on contract + ledger, or (in the clone baseline) the
/// pre-transaction whole-state snapshots.
enum Checkpoint<S> {
    /// Journal transactions are open; revert replays undo records.
    Journal,
    /// Clone-checkpoint baseline; revert restores the snapshots.
    Snapshot(Box<(S, Ledger)>),
}

/// The simulated chain hosting a single contract instance.
pub struct Chain<S: StateMachine> {
    /// The ledger (public, so tests can mint and inspect balances).
    pub ledger: Ledger,
    pub(crate) contract: S,
    pub(crate) contract_addr: Address,
    pub(crate) schedule: GasSchedule,
    pub(crate) round: u64,
    pub(crate) mempool: Vec<PendingTx<S::Msg>>,
    pub(crate) blocks: Vec<Block>,
    pub(crate) events: Vec<(u64, S::Event)>,
    pub(crate) next_seq: u64,
    deploy_gas: Gas,
    pub(crate) block_gas_limit: Option<Gas>,
    /// `Some` switches atomicity back to whole-state clone checkpointing
    /// (the function pointer is `S::clone`, captured where `S: Clone` is
    /// in scope so the hot path stays free of the bound).
    pub(crate) clone_checkpoint: Option<fn(&S) -> S>,
    /// Worker threads for optimistic parallel block execution; `1` keeps
    /// the strictly serial path (see [`crate::parallel`]).
    pub(crate) exec_threads: usize,
    /// Counters for the parallel executor (how many transactions ran
    /// optimistically, how often it fell back, …).
    pub(crate) parallel_stats: ParallelStats,
    /// When set, every produced block's executed transactions are kept
    /// (in receipt order) in `last_block_txs` — the canonical sequencer
    /// feed `dragoon-net` rebroadcasts to replicas. Off by default:
    /// recording clones every landed transaction.
    pub(crate) record_block_txs: bool,
    /// The most recent block's executed transactions (receipt order);
    /// empty unless `record_block_txs` is on.
    pub(crate) last_block_txs: Vec<PendingTx<S::Msg>>,
}

impl<S: StateMachine> Chain<S> {
    /// Deploys `contract` at a fresh address, charging realistic
    /// deployment gas for `code_len` bytes of runtime code.
    pub fn deploy(contract: S, code_len: usize, schedule: GasSchedule) -> Self {
        let contract_addr = Address::contract_address(&Address::ZERO, 1);
        let deploy_gas = schedule.tx_base + schedule.create(code_len);
        Self {
            ledger: Ledger::new(),
            contract,
            contract_addr,
            schedule,
            round: 0,
            mempool: Vec::new(),
            blocks: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
            deploy_gas,
            block_gas_limit: None,
            clone_checkpoint: None,
            exec_threads: 1,
            parallel_stats: ParallelStats::default(),
            record_block_txs: false,
            last_block_txs: Vec::new(),
        }
    }

    /// Caps the gas per block (Ethereum mainnet ran ~10M around the
    /// paper's measurement window). Transactions that do not fit are
    /// carried over to the next round, preserving order — which is why
    /// phase windows must absorb a round of spill-over in heavy tasks.
    pub fn with_block_gas_limit(mut self, limit: Gas) -> Self {
        self.block_gas_limit = Some(limit);
        self
    }

    /// Switches revert atomicity back to the pre-journal strategy:
    /// cloning the whole contract + ledger before every transaction.
    ///
    /// This exists as the **comparison baseline** — differential tests
    /// assert journaled execution is bit-identical to it, and the
    /// throughput bench quantifies what the journal saves. Production
    /// paths should never enable it.
    pub fn with_clone_checkpointing(mut self) -> Self
    where
        S: Clone,
    {
        self.clone_checkpoint = Some(S::clone);
        self
    }

    /// Whether the clone-checkpoint baseline is active.
    pub fn clone_checkpointing(&self) -> bool {
        self.clone_checkpoint.is_some()
    }

    /// Sets the worker-thread count for optimistic parallel block
    /// execution (`0` and `1` both keep the serial path). Takes effect
    /// through [`Chain::advance_round_parallel`]; the plain
    /// [`Chain::advance_round`] is always serial.
    pub fn with_exec_threads(mut self, threads: usize) -> Self {
        self.exec_threads = threads.max(1);
        self
    }

    /// The configured executor thread count.
    pub fn exec_threads(&self) -> usize {
        self.exec_threads
    }

    /// Counters describing how the parallel executor ran (all zero while
    /// only the serial path has been used).
    pub fn parallel_stats(&self) -> ParallelStats {
        self.parallel_stats
    }

    /// The contract's address (its escrow account on the ledger).
    pub fn contract_address(&self) -> Address {
        self.contract_addr
    }

    /// The gas charged for deploying the contract.
    pub fn deploy_gas(&self) -> Gas {
        self.deploy_gas
    }

    /// Read-only access to the hosted contract state.
    pub fn contract(&self) -> &S {
        &self.contract
    }

    /// Mutable access to the hosted contract state — for out-of-band
    /// machinery like kicking off overlapped verification, not for
    /// state changes (those go through transactions so the journal,
    /// replay and equivalence paths all see them).
    pub fn contract_mut(&mut self) -> &mut S {
        &mut self.contract
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The gas schedule in force.
    pub fn schedule(&self) -> &GasSchedule {
        &self.schedule
    }

    /// Submits a transaction to the mempool; returns its sequence number.
    pub fn submit(&mut self, sender: Address, msg: S::Msg) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.mempool.push(PendingTx { sender, msg, seq });
        seq
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Toggles per-block transaction recording (see
    /// [`Chain::last_block_txs`]). The canonical sequencer in
    /// `dragoon-net` enables this so each produced block's executed
    /// transactions can be rebroadcast to replicas.
    pub fn set_record_block_txs(&mut self, on: bool) {
        self.record_block_txs = on;
        if !on {
            self.last_block_txs.clear();
        }
    }

    /// The most recent block's executed transactions in receipt order
    /// (carried-over transactions excluded). Empty unless
    /// [`Chain::set_record_block_txs`] enabled recording.
    pub fn last_block_txs(&self) -> &[PendingTx<S::Msg>] {
        &self.last_block_txs
    }

    /// Advances one round: the policy schedules the mempool, scheduled
    /// transactions execute, a block is produced. Returns the block.
    pub fn advance_round(&mut self, policy: &mut dyn ReorderPolicy<S::Msg>) -> &Block {
        self.round += 1;
        self.last_block_txs.clear();
        self.clock_tick();

        let pending = std::mem::take(&mut self.mempool);
        let Scheduled { deliver, delay } = policy.schedule(self.round, pending);
        self.mempool = delay;

        let mut receipts = Vec::new();
        let mut block_gas: Gas = 0;
        let mut deliver = deliver.into_iter();
        let mut carried: Vec<PendingTx<S::Msg>> = Vec::new();
        for tx in deliver.by_ref() {
            if !self.execute_tx_into_block(tx, &mut block_gas, &mut receipts, &mut carried) {
                break;
            }
        }
        // Whatever did not fit in this block carries to the next round,
        // ahead of newly delayed messages.
        carried.extend(deliver);
        self.seal_block(receipts, carried)
    }

    /// Clock tick: phase deadlines fire before the round's deliveries,
    /// matching the paper's "until the beginning of next clock period"
    /// semantics for delayed executions.
    pub(crate) fn clock_tick(&mut self) {
        let mut meter = GasMeter::new();
        let mut events = Vec::new();
        let mut env = ExecEnv {
            ledger: &mut self.ledger,
            gas: &mut meter,
            schedule: &self.schedule,
            round: self.round,
            contract: self.contract_addr,
            events: &mut events,
        };
        self.contract.on_clock(&mut env, self.round);
        for e in events {
            self.events.push((self.round, e));
        }
    }

    /// Executes one transaction into the block under construction,
    /// honoring the block gas limit. Returns `false` when the block is
    /// full: the transaction was rolled back and pushed to `carried`,
    /// and the caller must stop delivering (everything else carries).
    pub(crate) fn execute_tx_into_block(
        &mut self,
        tx: PendingTx<S::Msg>,
        block_gas: &mut Gas,
        receipts: &mut Vec<Receipt>,
        carried: &mut Vec<PendingTx<S::Msg>>,
    ) -> bool {
        match self.block_gas_limit {
            None => {
                if self.record_block_txs {
                    self.last_block_txs.push(tx.clone());
                }
                receipts.push(self.execute_tx(tx));
                true
            }
            Some(limit) => {
                // Execute speculatively; if the block would exceed
                // its gas limit (and is not empty — a single tx
                // larger than the limit must still land somewhere),
                // roll the transaction back out of the block and
                // carry it over. The per-transaction checkpoint
                // (journal or clone baseline) stays open across the
                // limit check, so block-overflow rollback reuses the
                // transaction's own revert path.
                let events_len = self.events.len();
                let (receipt, open) = self.execute_tx_open(tx.clone());
                if *block_gas + receipt.gas_used > limit && !receipts.is_empty() {
                    if let Some(checkpoint) = open {
                        self.rollback_checkpoint(checkpoint);
                    }
                    // `open == None` means the tx reverted, so state
                    // already equals the pre-transaction state.
                    self.events.truncate(events_len);
                    carried.push(tx);
                    false
                } else {
                    if let Some(checkpoint) = open {
                        self.commit_checkpoint(checkpoint);
                    }
                    *block_gas += receipt.gas_used;
                    receipts.push(receipt);
                    if self.record_block_txs {
                        self.last_block_txs.push(tx);
                    }
                    true
                }
            }
        }
    }

    /// Produces the round's block and re-queues carried transactions
    /// ahead of newly delayed messages.
    pub(crate) fn seal_block(
        &mut self,
        receipts: Vec<Receipt>,
        mut carried: Vec<PendingTx<S::Msg>>,
    ) -> &Block {
        if !carried.is_empty() {
            carried.extend(std::mem::take(&mut self.mempool));
            self.mempool = carried;
        }
        self.blocks.push(Block {
            round: self.round,
            receipts,
        });
        self.blocks.last().expect("just pushed")
    }

    /// Convenience: advance with honest FIFO scheduling.
    pub fn advance_round_fifo(&mut self) -> &Block {
        self.advance_round(&mut crate::mempool::FifoPolicy)
    }

    /// Replays one persisted block: the recorded *landed* transactions of
    /// a round, in receipt order. Mirrors `advance_round` minus
    /// scheduling and the gas cap — both already happened when the block
    /// was produced, so every recorded transaction executes
    /// unconditionally and lands in the same order. Used by crash
    /// recovery ([`crate::store`]) to rebuild committed state from the
    /// block log; serial replay is bit-identical to the parallel
    /// production run by the same equivalence the replica layer pins.
    pub(crate) fn replay_block(&mut self, txs: Vec<PendingTx<S::Msg>>) -> &Block {
        self.round += 1;
        self.clock_tick();
        let mut receipts = Vec::with_capacity(txs.len());
        for tx in txs {
            receipts.push(self.execute_tx(tx));
        }
        self.blocks.push(Block {
            round: self.round,
            receipts,
        });
        self.blocks.last().expect("just pushed")
    }

    /// Opens a per-transaction checkpoint: journal transactions on the
    /// contract and the ledger, or (baseline mode) whole-state clones.
    fn open_checkpoint(&mut self) -> Checkpoint<S> {
        match self.clone_checkpoint {
            Some(snap) => {
                Checkpoint::Snapshot(Box::new((snap(&self.contract), self.ledger.clone())))
            }
            None => {
                self.contract.begin_tx();
                self.ledger.begin_tx();
                Checkpoint::Journal
            }
        }
    }

    /// Reverts contract + ledger to the checkpointed state.
    fn rollback_checkpoint(&mut self, checkpoint: Checkpoint<S>) {
        match checkpoint {
            Checkpoint::Journal => {
                self.contract.rollback_tx();
                self.ledger.rollback_tx();
            }
            Checkpoint::Snapshot(snapshot) => {
                let (contract, ledger) = *snapshot;
                self.contract = contract;
                self.ledger = ledger;
            }
        }
    }

    /// Finalizes the transaction's mutations, discarding the checkpoint.
    fn commit_checkpoint(&mut self, checkpoint: Checkpoint<S>) {
        if let Checkpoint::Journal = checkpoint {
            self.contract.commit_tx();
            self.ledger.commit_tx();
        }
    }

    fn execute_tx(&mut self, tx: PendingTx<S::Msg>) -> Receipt {
        let (receipt, open) = self.execute_tx_open(tx);
        if let Some(checkpoint) = open {
            self.commit_checkpoint(checkpoint);
        }
        receipt
    }

    /// Executes one transaction inside a fresh checkpoint. On revert the
    /// checkpoint is consumed restoring pre-transaction state and `None`
    /// is returned; on success the **still-open** checkpoint is returned
    /// so the gas-capped block path can either commit it or roll the
    /// whole (successful) transaction back out of an overfull block.
    fn execute_tx_open(&mut self, tx: PendingTx<S::Msg>) -> (Receipt, Option<Checkpoint<S>>) {
        let checkpoint = self.open_checkpoint();
        let mut meter = GasMeter::new();
        meter.charge("intrinsic", self.schedule.intrinsic(&tx.msg.calldata()));
        let label = tx.msg.label();
        let mut events = Vec::new();

        let result = {
            let mut env = ExecEnv {
                ledger: &mut self.ledger,
                gas: &mut meter,
                schedule: &self.schedule,
                round: self.round,
                contract: self.contract_addr,
                events: &mut events,
            };
            self.contract.on_message(&mut env, tx.sender, tx.msg)
        };

        let (status, open) = match result {
            Ok(()) => {
                for e in events {
                    self.events.push((self.round, e));
                }
                (TxStatus::Ok, Some(checkpoint))
            }
            Err(e) => {
                // Roll back all touched state; gas is still consumed.
                self.rollback_checkpoint(checkpoint);
                (TxStatus::Reverted(e.to_string()), None)
            }
        };

        (
            Receipt {
                seq: tx.seq,
                sender: tx.sender,
                label,
                round: self.round,
                gas_used: meter.used(),
                status,
                gas_breakdown: meter.breakdown().to_vec(),
            },
            open,
        )
    }

    /// All produced blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The footprint of the most recent block, for block-boundary
    /// observers (econ layers reading fill rate and congestion).
    pub fn last_observation(&self) -> Option<BlockObservation> {
        self.blocks.last().map(Block::observation)
    }

    /// All events with the round in which they were emitted.
    pub fn events(&self) -> &[(u64, S::Event)] {
        &self.events
    }

    /// All receipts across all blocks, in execution order.
    pub fn receipts(&self) -> impl Iterator<Item = &Receipt> {
        self.blocks.iter().flat_map(|b| b.receipts.iter())
    }

    /// Total gas consumed by all transactions (excluding deployment).
    pub fn total_gas(&self) -> Gas {
        self.receipts().map(|r| r.gas_used).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mempool::ReversePolicy;

    /// A toy counter contract for exercising the chain plumbing. Its
    /// journal is the simplest possible: an eager snapshot of both fields
    /// at transaction start.
    #[derive(Clone, Default)]
    struct Counter {
        value: u64,
        last_sender: Option<Address>,
        undo: Option<(u64, Option<Address>)>,
    }

    impl Journaled for Counter {
        fn begin_tx(&mut self) {
            self.undo = Some((self.value, self.last_sender));
        }
        fn commit_tx(&mut self) {
            self.undo = None;
        }
        fn rollback_tx(&mut self) {
            let (value, last_sender) = self.undo.take().expect("open transaction");
            self.value = value;
            self.last_sender = last_sender;
        }
    }

    #[derive(Clone)]
    enum CounterMsg {
        Add(u64),
        Fail,
    }

    impl ChainMessage for CounterMsg {
        fn calldata(&self) -> CalldataStats {
            CalldataStats {
                zero: 28,
                nonzero: 8,
            }
        }
        fn label(&self) -> &'static str {
            match self {
                CounterMsg::Add(_) => "add",
                CounterMsg::Fail => "fail",
            }
        }
    }

    impl StateMachine for Counter {
        type Msg = CounterMsg;
        type Event = u64;
        type Error = String;

        fn on_message(
            &mut self,
            env: &mut ExecEnv<'_, u64>,
            sender: Address,
            msg: CounterMsg,
        ) -> Result<(), String> {
            match msg {
                CounterMsg::Add(n) => {
                    env.gas.charge("sstore", env.schedule.sstore_update);
                    self.value += n;
                    self.last_sender = Some(sender);
                    env.emit(self.value, 32);
                    Ok(())
                }
                CounterMsg::Fail => {
                    // Mutate state, then revert — atomicity must undo it.
                    self.value = 999_999;
                    Err("deliberate failure".into())
                }
            }
        }
    }

    fn chain() -> Chain<Counter> {
        Chain::deploy(Counter::default(), 1000, GasSchedule::istanbul())
    }

    #[test]
    fn executes_in_fifo_order() {
        let mut c = chain();
        let a1 = Address::from_byte(1);
        let a2 = Address::from_byte(2);
        c.submit(a1, CounterMsg::Add(1));
        c.submit(a2, CounterMsg::Add(2));
        let block = c.advance_round_fifo();
        assert_eq!(block.receipts.len(), 2);
        assert_eq!(c.contract().value, 3);
        assert_eq!(c.contract().last_sender, Some(a2));
    }

    #[test]
    fn reverse_policy_flips_final_sender() {
        let mut c = chain();
        c.submit(Address::from_byte(1), CounterMsg::Add(1));
        c.submit(Address::from_byte(2), CounterMsg::Add(2));
        c.advance_round(&mut ReversePolicy);
        assert_eq!(c.contract().last_sender, Some(Address::from_byte(1)));
    }

    #[test]
    fn reverted_tx_rolls_back_but_burns_gas() {
        let mut c = chain();
        c.submit(Address::from_byte(1), CounterMsg::Add(5));
        c.submit(Address::from_byte(1), CounterMsg::Fail);
        c.advance_round_fifo();
        assert_eq!(c.contract().value, 5, "failed tx must not mutate state");
        let receipts: Vec<_> = c.receipts().collect();
        assert_eq!(receipts.len(), 2);
        assert!(matches!(receipts[1].status, TxStatus::Reverted(_)));
        assert!(receipts[1].gas_used >= 21_000, "revert still burns gas");
    }

    #[test]
    fn gas_includes_intrinsic_and_ops() {
        let mut c = chain();
        c.submit(Address::from_byte(1), CounterMsg::Add(1));
        c.advance_round_fifo();
        let r = c.receipts().next().unwrap();
        // intrinsic 21000 + 28*4 + 8*16 = 21240; sstore 5000; log 375+375+256.
        assert_eq!(r.gas_used, 21_240 + 5_000 + 1_006);
        assert_eq!(r.label, "add");
    }

    #[test]
    fn events_recorded_with_round() {
        let mut c = chain();
        c.submit(Address::from_byte(1), CounterMsg::Add(7));
        c.advance_round_fifo();
        assert_eq!(c.events(), &[(1, 7)]);
    }

    #[test]
    fn mempool_persists_delayed() {
        let mut c = chain();
        c.submit(Address::from_byte(1), CounterMsg::Add(1));
        // Adversary delays everything one round.
        let mut delay_all = crate::mempool::AdversarialPolicy::new(|_, pending| Scheduled {
            deliver: Vec::new(),
            delay: pending,
        });
        c.advance_round(&mut delay_all);
        assert_eq!(c.contract().value, 0);
        assert_eq!(c.mempool_len(), 1);
        c.advance_round_fifo();
        assert_eq!(c.contract().value, 1);
    }

    #[test]
    fn block_gas_limit_defers_overflow() {
        let mut c = chain().with_block_gas_limit(50_000);
        // Each Add costs ~27k; a 50k block fits one (the second would
        // push the block past its limit and is carried over).
        for i in 0..4 {
            c.submit(Address::from_byte(1), CounterMsg::Add(1 << i));
        }
        let block = c.advance_round_fifo();
        assert_eq!(block.receipts.len(), 1, "second tx exceeds the block");
        assert_eq!(c.contract().value, 0b1);
        assert_eq!(c.mempool_len(), 3);
        // The deferred transactions execute in order across later rounds.
        c.advance_round_fifo();
        assert_eq!(c.contract().value, 0b11);
        c.advance_round_fifo();
        c.advance_round_fifo();
        assert_eq!(c.contract().value, 0b1111);
        assert_eq!(c.mempool_len(), 0);
    }

    #[test]
    fn oversized_tx_still_lands_alone() {
        // A transaction larger than the block limit executes alone in
        // its own block rather than starving forever.
        let mut c = chain().with_block_gas_limit(10_000);
        c.submit(Address::from_byte(1), CounterMsg::Add(1));
        let block = c.advance_round_fifo();
        assert_eq!(block.receipts.len(), 1);
        assert_eq!(c.contract().value, 1);
    }

    #[test]
    fn no_limit_executes_everything() {
        let mut c = chain();
        for _ in 0..10 {
            c.submit(Address::from_byte(1), CounterMsg::Add(1));
        }
        let block = c.advance_round_fifo();
        assert_eq!(block.receipts.len(), 10);
    }

    #[test]
    fn deploy_gas_scales_with_code() {
        let small = Chain::deploy(Counter::default(), 100, GasSchedule::istanbul());
        let large = Chain::deploy(Counter::default(), 10_000, GasSchedule::istanbul());
        assert!(large.deploy_gas() > small.deploy_gas());
    }
}
