//! The EVM gas schedule and a metering accumulator.
//!
//! Dragoon's Table III reports on-chain handling *fees*; those are a
//! deterministic function of the operations the contract performs and the
//! gas schedule of the chain at measurement time (Ethereum, March 2020 —
//! the Istanbul fork, i.e. EIP-1108 precompile prices and EIP-2028
//! calldata prices). The [`GasSchedule`] encodes those constants; the
//! [`GasMeter`] accrues charges per transaction with a labelled breakdown
//! so benches can print *where* the gas goes.

use serde::{Deserialize, Serialize};

/// Gas amounts.
pub type Gas = u64;

/// Byte-composition of a transaction payload, for intrinsic calldata gas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CalldataStats {
    /// Number of zero bytes.
    pub zero: usize,
    /// Number of non-zero bytes.
    pub nonzero: usize,
}

impl CalldataStats {
    /// Counts the zero/non-zero bytes of a payload.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let zero = bytes.iter().filter(|&&b| b == 0).count();
        Self {
            zero,
            nonzero: bytes.len() - zero,
        }
    }

    /// Total byte length.
    pub fn len(&self) -> usize {
        self.zero + self.nonzero
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Self) -> Self {
        Self {
            zero: self.zero + other.zero,
            nonzero: self.nonzero + other.nonzero,
        }
    }
}

/// The constants of an EVM gas schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GasSchedule {
    /// Base cost of any transaction.
    pub tx_base: Gas,
    /// Per zero calldata byte.
    pub calldata_zero: Gas,
    /// Per non-zero calldata byte.
    pub calldata_nonzero: Gas,
    /// SSTORE of a fresh (zero → non-zero) slot.
    pub sstore_set: Gas,
    /// SSTORE updating an existing non-zero slot.
    pub sstore_update: Gas,
    /// SLOAD.
    pub sload: Gas,
    /// Keccak-256 base cost.
    pub keccak_base: Gas,
    /// Keccak-256 per 32-byte word.
    pub keccak_word: Gas,
    /// LOG base cost.
    pub log_base: Gas,
    /// LOG per topic.
    pub log_topic: Gas,
    /// LOG per data byte.
    pub log_data_byte: Gas,
    /// BN-254 G1 addition precompile (EIP-1108: 150).
    pub ec_add: Gas,
    /// BN-254 G1 scalar-multiplication precompile (EIP-1108: 6 000).
    pub ec_mul: Gas,
    /// Pairing-check base (EIP-1108: 45 000).
    pub pairing_base: Gas,
    /// Pairing-check per point pair (EIP-1108: 34 000).
    pub pairing_per_pair: Gas,
    /// Value-transferring CALL surcharge.
    pub call_value: Gas,
    /// CREATE base cost (contract deployment).
    pub create_base: Gas,
    /// Per byte of deployed contract code.
    pub code_deposit_byte: Gas,
}

impl GasSchedule {
    /// The Istanbul-fork schedule (Ethereum, Dec 2019 – Apr 2021) — the
    /// rules in force when the paper's ropsten experiment ran
    /// (March 2020). EIP-1108 repriced the BN-254 precompiles; EIP-2028
    /// repriced calldata to 16 gas per non-zero byte.
    pub fn istanbul() -> Self {
        Self {
            tx_base: 21_000,
            calldata_zero: 4,
            calldata_nonzero: 16,
            sstore_set: 20_000,
            sstore_update: 5_000,
            sload: 800,
            keccak_base: 30,
            keccak_word: 6,
            log_base: 375,
            log_topic: 375,
            log_data_byte: 8,
            ec_add: 150,
            ec_mul: 6_000,
            pairing_base: 45_000,
            pairing_per_pair: 34_000,
            call_value: 9_000,
            create_base: 32_000,
            code_deposit_byte: 200,
        }
    }

    /// The pre-Istanbul (Byzantium/Petersburg) schedule, for the ablation
    /// contrasting how EIP-1108 changed the feasibility of on-chain
    /// verification (the paper's §I cites "12 pairings already spend
    /// ~500k gas" under the *new* prices; under the old prices SNARK
    /// verification was several-fold worse).
    pub fn byzantium() -> Self {
        Self {
            calldata_nonzero: 68,
            ec_add: 500,
            ec_mul: 40_000,
            pairing_base: 100_000,
            pairing_per_pair: 80_000,
            sload: 200,
            ..Self::istanbul()
        }
    }

    /// Intrinsic transaction cost: base + calldata.
    pub fn intrinsic(&self, calldata: &CalldataStats) -> Gas {
        self.tx_base
            + self.calldata_zero * calldata.zero as Gas
            + self.calldata_nonzero * calldata.nonzero as Gas
    }

    /// Keccak-256 cost for hashing `len` bytes.
    pub fn keccak(&self, len: usize) -> Gas {
        self.keccak_base + self.keccak_word * (len.div_ceil(32)) as Gas
    }

    /// LOG cost with `topics` topics and `data_len` data bytes.
    pub fn log(&self, topics: usize, data_len: usize) -> Gas {
        self.log_base + self.log_topic * topics as Gas + self.log_data_byte * data_len as Gas
    }

    /// Pairing-check precompile cost for `pairs` point pairs.
    pub fn pairing(&self, pairs: usize) -> Gas {
        self.pairing_base + self.pairing_per_pair * pairs as Gas
    }

    /// Contract-creation cost for deploying `code_len` bytes of runtime
    /// code (plus the constructor's intrinsic costs charged separately).
    pub fn create(&self, code_len: usize) -> Gas {
        self.create_base + self.code_deposit_byte * code_len as Gas
    }
}

impl Default for GasSchedule {
    fn default() -> Self {
        Self::istanbul()
    }
}

/// A labelled gas accumulator for one transaction.
#[derive(Clone, Debug, Default)]
pub struct GasMeter {
    used: Gas,
    breakdown: Vec<(&'static str, Gas)>,
}

impl GasMeter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `amount` gas under a label. The accumulator is checked:
    /// on the million-HIT path a silent wrap would corrupt every block
    /// total downstream, so exhaustion of the `u64` gas space is a loud
    /// panic, never a wrap.
    pub fn charge(&mut self, label: &'static str, amount: Gas) {
        self.used = self
            .used
            .checked_add(amount)
            .expect("transaction gas accumulator overflowed u64");
        self.breakdown.push((label, amount));
    }

    /// Total gas consumed.
    pub fn used(&self) -> Gas {
        self.used
    }

    /// The labelled breakdown, in charge order.
    pub fn breakdown(&self) -> &[(&'static str, Gas)] {
        &self.breakdown
    }

    /// Sums charges whose label matches `label`.
    pub fn total_for(&self, label: &str) -> Gas {
        self.breakdown
            .iter()
            .filter(|(l, _)| *l == label)
            .map(|(_, g)| g)
            .sum()
    }
}

/// Converts gas to USD under the paper's exchange rate: 1.5 gwei per gas
/// and 115 USD per ether (safe-low gas price and market price on
/// 2020-03-17, §VI).
pub fn gas_to_usd(gas: Gas) -> f64 {
    const GWEI_PER_GAS: f64 = 1.5;
    const USD_PER_ETHER: f64 = 115.0;
    gas as f64 * GWEI_PER_GAS * 1e-9 * USD_PER_ETHER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calldata_stats() {
        let s = CalldataStats::from_bytes(&[0, 1, 0, 2, 3]);
        assert_eq!(s.zero, 2);
        assert_eq!(s.nonzero, 3);
        assert_eq!(s.len(), 5);
        let t = s.plus(&CalldataStats {
            zero: 1,
            nonzero: 1,
        });
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn intrinsic_cost_istanbul() {
        let g = GasSchedule::istanbul();
        // 21000 + 2*4 + 3*16 = 21056.
        assert_eq!(
            g.intrinsic(&CalldataStats {
                zero: 2,
                nonzero: 3
            }),
            21_056
        );
        assert_eq!(g.intrinsic(&CalldataStats::default()), 21_000);
    }

    #[test]
    fn keccak_rounds_up_words() {
        let g = GasSchedule::istanbul();
        assert_eq!(g.keccak(0), 30);
        assert_eq!(g.keccak(1), 36);
        assert_eq!(g.keccak(32), 36);
        assert_eq!(g.keccak(33), 42);
    }

    #[test]
    fn eip_1108_precompile_prices() {
        let g = GasSchedule::istanbul();
        assert_eq!(g.ec_add, 150);
        assert_eq!(g.ec_mul, 6_000);
        // The paper's §I data point: 12 pairings ≈ 500k gas under
        // EIP-1108: 45000 + 12*34000 = 453 000.
        assert_eq!(g.pairing(12), 453_000);
    }

    #[test]
    fn byzantium_is_pricier() {
        let old = GasSchedule::byzantium();
        let new = GasSchedule::istanbul();
        assert!(old.ec_mul > new.ec_mul);
        assert!(old.pairing(12) > new.pairing(12));
        assert!(old.calldata_nonzero > new.calldata_nonzero);
    }

    #[test]
    fn meter_accumulates_with_labels() {
        let mut m = GasMeter::new();
        m.charge("sstore", 20_000);
        m.charge("keccak", 36);
        m.charge("sstore", 5_000);
        assert_eq!(m.used(), 25_036);
        assert_eq!(m.total_for("sstore"), 25_000);
        assert_eq!(m.total_for("keccak"), 36);
        assert_eq!(m.total_for("nothing"), 0);
        assert_eq!(m.breakdown().len(), 3);
    }

    #[test]
    fn usd_conversion_matches_paper_rate() {
        // 12 164k gas → ~$2.09 (Table III overall best case).
        let usd = gas_to_usd(12_164_000);
        assert!((usd - 2.098).abs() < 0.01, "usd = {usd}");
        // 180k gas → ~$0.03 (PoQoEA rejection row).
        let usd = gas_to_usd(180_000);
        assert!((usd - 0.031).abs() < 0.005, "usd = {usd}");
    }

    #[test]
    fn log_cost() {
        let g = GasSchedule::istanbul();
        assert_eq!(g.log(0, 0), 375);
        assert_eq!(g.log(2, 100), 375 + 750 + 800);
    }
}
