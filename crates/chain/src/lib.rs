//! # dragoon-chain
//!
//! A simulated permissionless blockchain substrate with the fidelity the
//! Dragoon evaluation needs:
//!
//! * **Synchronous rounds** — the paper's clock periods; contract phase
//!   deadlines fire on round boundaries.
//! * **Adversarial scheduling** ([`mempool`]) — the rushing adversary who
//!   reorders and delays (≤ one clock period) undelivered messages.
//! * **Gas metering** ([`gas`]) — the Istanbul-fork Ethereum gas schedule
//!   (EIP-1108 BN-254 precompile prices, EIP-2028 calldata prices), so
//!   the contract's on-chain handling fees (Table III) are reproduced
//!   from first principles rather than asserted.
//! * **Transaction atomicity** ([`chain`]) — reverted transactions burn
//!   gas but leave contract + ledger state untouched.
//! * **Optimistic parallel execution** ([`parallel`]) — transactions
//!   declare access sets (instances + ledger accounts, reads and writes
//!   apart), a conflict-graph grouper schedules disjoint groups onto
//!   scoped threads (creations included, via speculative id
//!   reservation), and journal-based touch records drive selective
//!   conflict retry with a serial backstop; committed state is
//!   bit-identical to serial execution at any thread count.
//!
//! Substitution note (DESIGN.md §Substitutions): this crate replaces the
//! Ethereum ropsten testnet used by the paper. The contract executes
//! natively in-process, but every operation a deployed EVM contract would
//! pay for (storage writes, precompile calls, event logs, calldata) is
//! charged through [`gas::GasMeter`].

pub mod chain;
pub mod gas;
pub mod mempool;
pub mod parallel;
pub mod replica;
pub mod store;

pub use chain::{
    Block, BlockObservation, Chain, ChainMessage, ExecEnv, Receipt, StateMachine, TxStatus,
};
pub use dragoon_ledger::{Journaled, LedgerCapture, StateJournal, TouchRecord, TouchSet};
pub use gas::{gas_to_usd, CalldataStats, Gas, GasMeter, GasSchedule};
pub use mempool::{
    AdversarialPolicy, DelayVictimPolicy, FifoPolicy, FrontRunPolicy, PendingTx, ReorderPolicy,
    ReversePolicy, Scheduled,
};
pub use parallel::{resolve_threads, AccessSet, IdReserver, ParallelStateMachine, ParallelStats};
pub use replica::{BlockUndo, CaptureStateMachine};
pub use store::{BlockStore, Persist, PersistDelta, PersistStats, Reader, StoreError};
