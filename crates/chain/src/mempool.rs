//! The mempool and the adversarial message scheduler.
//!
//! The paper's blockchain model (§IV) gives the adversary two powers over
//! communication: (i) delaying any message sent to the blockchain up to
//! the next clock period, and (ii) reordering the so-far-undelivered
//! messages — the classic *rushing adversary*. Both are modelled by a
//! [`ReorderPolicy`], which each round partitions the pending
//! transactions into "deliver now (in this order)" and "delay to the next
//! round".
//!
//! The copy-and-paste free-riding attack the commit–reveal structure
//! defends against is exactly an adversarial policy: observe an honest
//! submission in the mempool, copy it, and schedule the copy first.

use dragoon_ledger::Address;

/// A transaction waiting in the mempool.
#[derive(Clone, Debug)]
pub struct PendingTx<M> {
    /// The submitting party.
    pub sender: Address,
    /// The message payload.
    pub msg: M,
    /// Submission sequence number (arrival order).
    pub seq: u64,
}

/// The outcome of one round of adversarial scheduling.
#[derive(Clone, Debug)]
pub struct Scheduled<M> {
    /// Transactions delivered this round, in delivery order.
    pub deliver: Vec<PendingTx<M>>,
    /// Transactions delayed into the next round (at most one clock period
    /// of delay, per the synchrony assumption).
    pub delay: Vec<PendingTx<M>>,
}

/// A message-delivery scheduler — the adversary's interface to the
/// network.
pub trait ReorderPolicy<M> {
    /// Partitions and orders this round's pending transactions.
    fn schedule(&mut self, round: u64, pending: Vec<PendingTx<M>>) -> Scheduled<M>;
}

/// Honest FIFO delivery: everything delivered in arrival order.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoPolicy;

impl<M> ReorderPolicy<M> for FifoPolicy {
    fn schedule(&mut self, _round: u64, pending: Vec<PendingTx<M>>) -> Scheduled<M> {
        Scheduled {
            deliver: pending,
            delay: Vec::new(),
        }
    }
}

/// Reverses arrival order each round — a simple rushing adversary that
/// always front-runs the honest parties.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReversePolicy;

impl<M> ReorderPolicy<M> for ReversePolicy {
    fn schedule(&mut self, _round: u64, mut pending: Vec<PendingTx<M>>) -> Scheduled<M> {
        pending.reverse();
        Scheduled {
            deliver: pending,
            delay: Vec::new(),
        }
    }
}

/// Delays every transaction from a designated victim by one round
/// (the maximum the synchrony assumption allows), delivering everyone
/// else first — models targeted message-delay attacks.
#[derive(Clone, Debug)]
pub struct DelayVictimPolicy {
    /// The victim whose messages are maximally delayed.
    pub victim: Address,
    delayed_once: Vec<u64>,
}

impl DelayVictimPolicy {
    /// Targets `victim`.
    pub fn new(victim: Address) -> Self {
        Self {
            victim,
            delayed_once: Vec::new(),
        }
    }
}

impl<M> ReorderPolicy<M> for DelayVictimPolicy {
    fn schedule(&mut self, _round: u64, pending: Vec<PendingTx<M>>) -> Scheduled<M> {
        let mut deliver = Vec::new();
        let mut delay = Vec::new();
        for tx in pending {
            // Synchrony: a message can be delayed at most one clock
            // period, so anything already delayed once must go through.
            if tx.sender == self.victim && !self.delayed_once.contains(&tx.seq) {
                self.delayed_once.push(tx.seq);
                delay.push(tx);
            } else {
                deliver.push(tx);
            }
        }
        Scheduled { deliver, delay }
    }
}

/// A rushing front-runner: delivers a designated attacker's transactions
/// first each round, ahead of everyone else's (otherwise preserving
/// arrival order) — the miner-extractable-ordering adversary racing
/// honest workers for the last commitment slot of a filling task.
#[derive(Clone, Debug)]
pub struct FrontRunPolicy {
    /// The address whose transactions jump the queue.
    pub attacker: Address,
}

impl FrontRunPolicy {
    /// Front-runs on behalf of `attacker`.
    pub fn new(attacker: Address) -> Self {
        Self { attacker }
    }
}

impl<M> ReorderPolicy<M> for FrontRunPolicy {
    fn schedule(&mut self, _round: u64, pending: Vec<PendingTx<M>>) -> Scheduled<M> {
        let (mut first, rest): (Vec<_>, Vec<_>) = pending
            .into_iter()
            .partition(|tx| tx.sender == self.attacker);
        first.extend(rest);
        Scheduled {
            deliver: first,
            delay: Vec::new(),
        }
    }
}

/// A fully programmable adversary: the closure receives the round number
/// and the pending set and returns the schedule. Used by the
/// real-vs-ideal security tests to express arbitrary rushing strategies.
pub struct AdversarialPolicy<M> {
    #[allow(clippy::type_complexity)]
    strategy: Box<dyn FnMut(u64, Vec<PendingTx<M>>) -> Scheduled<M>>,
}

impl<M> AdversarialPolicy<M> {
    /// Wraps a scheduling strategy.
    pub fn new(strategy: impl FnMut(u64, Vec<PendingTx<M>>) -> Scheduled<M> + 'static) -> Self {
        Self {
            strategy: Box::new(strategy),
        }
    }
}

impl<M> ReorderPolicy<M> for AdversarialPolicy<M> {
    fn schedule(&mut self, round: u64, pending: Vec<PendingTx<M>>) -> Scheduled<M> {
        (self.strategy)(round, pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(sender: u8, seq: u64) -> PendingTx<&'static str> {
        PendingTx {
            sender: Address::from_byte(sender),
            msg: "m",
            seq,
        }
    }

    #[test]
    fn fifo_preserves_order() {
        let mut p = FifoPolicy;
        let s = p.schedule(0, vec![tx(1, 0), tx(2, 1), tx(3, 2)]);
        let order: Vec<u64> = s.deliver.iter().map(|t| t.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(s.delay.is_empty());
    }

    #[test]
    fn reverse_front_runs() {
        let mut p = ReversePolicy;
        let s = p.schedule(0, vec![tx(1, 0), tx(2, 1)]);
        let order: Vec<u64> = s.deliver.iter().map(|t| t.seq).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn delay_victim_at_most_one_round() {
        let victim = Address::from_byte(7);
        let mut p = DelayVictimPolicy::new(victim);
        let s1 = p.schedule(0, vec![tx(7, 0), tx(1, 1)]);
        assert_eq!(s1.deliver.len(), 1);
        assert_eq!(s1.delay.len(), 1);
        assert_eq!(s1.delay[0].sender, victim);
        // Re-submitted next round: synchrony forces delivery.
        let s2 = p.schedule(1, s1.delay);
        assert_eq!(s2.deliver.len(), 1);
        assert!(s2.delay.is_empty());
    }

    #[test]
    fn programmable_adversary() {
        let mut p = AdversarialPolicy::new(|_round, mut pending: Vec<PendingTx<&str>>| {
            // Deliver only even sequence numbers, delay the rest.
            let delay = pending
                .iter()
                .position(|t| t.seq % 2 == 1)
                .map(|i| pending.split_off(i))
                .unwrap_or_default();
            Scheduled {
                deliver: pending,
                delay,
            }
        });
        let s = p.schedule(0, vec![tx(1, 0), tx(2, 1), tx(3, 2)]);
        assert_eq!(s.deliver.len(), 1);
        assert_eq!(s.delay.len(), 2);
    }
}
