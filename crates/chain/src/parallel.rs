//! Optimistic parallel block execution over declared access sets, with
//! journal-based conflict detection and selective retry.
//!
//! Settlement verification already fans out across threads at the block
//! boundary; this module removes the last big sequential section in the
//! hot path — transaction *execution* within a block. The scheme is
//! optimistic concurrency control specialized to the registry shape:
//!
//! 1. **Declare.** Each scheduled transaction declares an [`AccessSet`]
//!    ([`ParallelStateMachine::access_set`]): the hosted instances it
//!    reads and writes plus the ledger accounts it reads and writes.
//!    Creation messages are not barriers: the state machine *reserves*
//!    the next instance id from a monotonic counter snapshot
//!    ([`IdReserver`]), so a spawn declares an ordinary instance write on
//!    its reserved key and messages routed to that key later in the same
//!    batch group with it. Only messages that cannot be attributed at all
//!    (routes to ids that neither exist nor are reserved) stay serial
//!    barriers.
//! 2. **Group.** A conflict-graph grouper partitions the batch: any
//!    resource — instance or account — declared written by one
//!    transaction and touched by another joins their groups (union-find).
//!    Declared read-read sharing stays parallel, and so does declared
//!    **debit-debit** sharing: a `Create`'s escrow freeze declares a
//!    commutative debit on its funded sender, so same-sender spawns
//!    split into separate groups whose deltas sum at merge (validated by
//!    the overdraft check in step 3). Each group gets owned
//!    shard snapshots of its instances (or fresh shards for reserved
//!    ids), a [`Ledger::sparse_overlay`] shadow covering its declared
//!    accounts plus its transactions' senders, and executes its
//!    transactions in schedule order on a scoped worker thread with every
//!    transaction bracketed by its own journal transaction, exactly like
//!    serial execution.
//! 3. **Validate.** Shadow ledgers record the observed touch sets, reads
//!    and writes apart ([`dragoon_ledger::TouchRecord`]). A group that
//!    escaped its declared preset (it read a phantom zero for an account
//!    whose base entry exists) forces the correctness backstop: the
//!    whole batch is discarded and re-executed serially in mempool
//!    order. A **reverted creation** no longer discards the batch:
//!    serial execution rewinds the id counter on that revert, so the
//!    executor re-reserves ids along the serial assignment (reverted
//!    creations consume none) and re-executes only the groups holding
//!    reservations — merged into one mempool-order group — while
//!    reservation-free groups keep their optimistic results. Groups
//!    whose observed records conflict
//!    (a write on one side, any touch on the other; debit-debit overlaps
//!    commute and do not count) are **selectively retried**: the
//!    conflicting groups merge into one group that re-executes their
//!    transactions in mempool order against fresh snapshots —
//!    non-conflicting groups keep their optimistic results — and
//!    validation repeats until the batch is conflict-free. Debited
//!    accounts additionally pass an **overdraft check** (the sum of
//!    every group's successful freeze deltas must fit the canonical base
//!    entry); an over-drawing burst merges its debitors for the same
//!    mempool-order retry.
//!    A mid-batch block-gas overflow (receipts simulated in schedule
//!    order) commits the schedule-order prefix of whole groups that fit
//!    and re-executes only the cut suffix serially, which re-derives the
//!    exact gas-capped carry-over — byte-identical to the serial cut.
//! 4. **Merge.** Surviving groups are pairwise disjoint on every written
//!    resource, so shard installs and written balance entries commute;
//!    receipts, contract events and ledger events merge in schedule
//!    order. The committed state is therefore **bit-identical to serial
//!    execution regardless of thread count** — the property
//!    `tests/parallel_equivalence.rs` pins.
//!
//! Thread counts resolve through [`resolve_threads`]: an explicit
//! setting wins, then the `DRAGOON_THREADS` environment variable, then
//! the host's available parallelism.

use crate::chain::{Block, Chain, ChainMessage, ExecEnv, Receipt, StateMachine, TxStatus};
use crate::gas::{Gas, GasMeter, GasSchedule};
use crate::mempool::{PendingTx, ReorderPolicy, Scheduled};
use dragoon_ledger::{Address, Journaled, Ledger, TouchRecord};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What a message declares it may touch, before execution. Replaces the
/// old single-key `MsgAccess` partition: instead of one instance id or a
/// global barrier, a message names the instances and ledger accounts it
/// reads and writes, and the scheduler builds conflict groups from the
/// declared sets. Declarations must *over-approximate reads* that feed
/// guards (every declared account is copied into the group's shadow
/// ledger) but may under-approximate outcome-dependent writes: observed
/// escapes within the preset are caught dynamically and retried, escapes
/// outside it fall back to serial execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessSet {
    global: bool,
    /// The instance id this message speculatively creates (reserved from
    /// the monotonic counter via [`IdReserver`]); also listed in
    /// [`AccessSet::instance_writes`].
    pub reserves: Option<u64>,
    /// Hosted instances read but not written.
    pub instance_reads: Vec<u64>,
    /// Hosted instances written (routing targets).
    pub instance_writes: Vec<u64>,
    /// Ledger accounts read (guards, potential outcome-dependent
    /// payees).
    pub account_reads: Vec<Address>,
    /// Ledger accounts written.
    pub account_writes: Vec<Address>,
    /// Ledger accounts *debited* by commutative escrow freezes (a
    /// `Create`'s funded sender). Debit-debit sharing between groups
    /// stays parallel — the deltas sum at merge — subject to the
    /// executor's post-hoc overdraft check; a debit against a declared
    /// read or write still serializes.
    pub account_debits: Vec<Address>,
}

impl AccessSet {
    /// A message that cannot be attributed: executes serially, in order,
    /// between parallel batches.
    pub fn global() -> Self {
        Self {
            global: true,
            ..Self::default()
        }
    }

    /// A message writing the single hosted instance `key`.
    pub fn instance(key: u64) -> Self {
        Self {
            instance_writes: vec![key],
            ..Self::default()
        }
    }

    /// A creation message that speculatively claims the reserved instance
    /// id `key`.
    pub fn create(key: u64) -> Self {
        Self {
            reserves: Some(key),
            instance_writes: vec![key],
            ..Self::default()
        }
    }

    /// Adds declared account reads.
    pub fn reads_accounts(mut self, accounts: impl IntoIterator<Item = Address>) -> Self {
        self.account_reads.extend(accounts);
        self
    }

    /// Adds declared account writes.
    pub fn writes_accounts(mut self, accounts: impl IntoIterator<Item = Address>) -> Self {
        self.account_writes.extend(accounts);
        self
    }

    /// Adds declared commutative account debits (escrow freezes).
    pub fn debits_accounts(mut self, accounts: impl IntoIterator<Item = Address>) -> Self {
        self.account_debits.extend(accounts);
        self
    }

    /// Whether this message is a serial barrier.
    pub fn is_global(&self) -> bool {
        self.global
    }

    /// The instance whose shard executes this message (creation target or
    /// first declared write). `None` only for malformed declarations,
    /// which the scheduler treats as global.
    fn primary_key(&self) -> Option<u64> {
        self.reserves
            .or_else(|| self.instance_writes.first().copied())
    }
}

/// Hands out speculative instance ids during batch assembly. Seeded from
/// [`ParallelStateMachine::reservation_base`] (the monotonic id counter)
/// at the start of every batch, it assigns each creation message the id
/// serial execution would assign it — provided every creation before it
/// succeeds, which the executor verifies post-hoc (a reverted creation
/// rewinds the counter serially, so the executor re-reserves with the
/// reverted creations skipped and selectively retries the groups holding
/// reservations).
#[derive(Clone, Debug)]
pub struct IdReserver {
    base: u64,
    next: u64,
    /// Pre-computed ids handed out ahead of the sequential counter — the
    /// creation-repair path replays the id assignment serial execution
    /// would produce once reverted creations stop consuming ids.
    assigned: VecDeque<u64>,
}

impl IdReserver {
    /// A reserver starting at the counter snapshot `base`.
    pub fn new(base: u64) -> Self {
        Self {
            base,
            next: base,
            assigned: VecDeque::new(),
        }
    }

    /// A reserver that hands out `assigned` (in order) before falling
    /// back to the sequential counter — used by the creation-repair
    /// retry to replay serial id assignment.
    fn with_assignments(base: u64, assigned: VecDeque<u64>) -> Self {
        Self {
            base,
            next: base,
            assigned,
        }
    }

    /// Claims the next speculative id. Checked: at million-HIT scale the
    /// id counter is the one value every instance address derives from,
    /// so exhausting the `u64` id space must panic rather than wrap into
    /// already-assigned ids.
    pub fn reserve(&mut self) -> u64 {
        if let Some(id) = self.assigned.pop_front() {
            self.next = self
                .next
                .max(id.checked_add(1).expect("instance id space exhausted"));
            return id;
        }
        let id = self.next;
        self.next = id.checked_add(1).expect("instance id space exhausted");
        id
    }

    /// Whether `id` was reserved by an earlier message of this batch.
    pub fn is_reserved(&self, id: u64) -> bool {
        id >= self.base && id < self.next
    }
}

/// A [`StateMachine`] whose state shards by hosted instance, enabling
/// optimistic parallel execution. Implementations must reproduce the
/// serial `on_message` semantics *exactly* on a shard — same gas
/// charges in the same order, same events, same error strings — because
/// the differential guarantee is bit-identical receipts.
pub trait ParallelStateMachine: StateMachine {
    /// One extracted instance: an owned, thread-movable copy of the
    /// state a group of transactions may mutate.
    type Shard: Send;

    /// Snapshot of the monotonic instance-id counter, taken at the start
    /// of each batch so creation messages reserve deterministic ids.
    fn reservation_base(&self) -> u64;

    /// Declares the access set of a message against current state.
    /// `contract` is the hosting contract's own address (instance escrow
    /// addresses derive from it); `reserver` hands out speculative ids
    /// for creations and knows which ids earlier messages of the same
    /// batch reserved. Messages addressing unknown, unreserved instances
    /// must return [`AccessSet::global`] so their revert executes in
    /// serial order.
    fn access_set(
        &self,
        contract: Address,
        sender: Address,
        msg: &Self::Msg,
        reserver: &mut IdReserver,
    ) -> AccessSet;

    /// Clones the instance behind `key` into a shard (`None` if the key
    /// vanished — the executor then falls back to serial execution).
    fn shard_snapshot(&self, key: u64) -> Option<Self::Shard>;

    /// An empty shard standing for the speculatively reserved id `key`;
    /// the group's creation message populates it.
    fn shard_reserve(&self, key: u64, contract: Address) -> Self::Shard;

    /// Installs an executed shard back, replacing (or, for a reserved id
    /// whose creation succeeded, registering) the instance state.
    fn shard_install(&mut self, key: u64, shard: Self::Shard);

    /// Handles one instance-addressed message against the shard,
    /// mirroring the serial routing path. The executor brackets the call
    /// with [`ParallelStateMachine::shard_begin_tx`] and one of
    /// commit/rollback, exactly as the chain brackets `on_message`.
    fn shard_on_message(
        shard: &mut Self::Shard,
        env: &mut ExecEnv<'_, Self::Event>,
        sender: Address,
        msg: Self::Msg,
    ) -> Result<(), Self::Error>;

    /// Opens the shard's journal transaction.
    fn shard_begin_tx(shard: &mut Self::Shard);
    /// Commits the shard's journal transaction.
    fn shard_commit_tx(shard: &mut Self::Shard);
    /// Rolls the shard's journal transaction back.
    fn shard_rollback_tx(shard: &mut Self::Shard);
}

/// Counters describing how the parallel executor ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Transactions whose optimistic parallel results committed
    /// (including selectively retried ones).
    pub parallel_txs: usize,
    /// Transactions executed serially (global barriers, single-group
    /// batches, and fallback re-executions).
    pub serial_txs: usize,
    /// Parallel batches whose results committed.
    pub batches: usize,
    /// Conflict groups formed across committed batches.
    pub groups: usize,
    /// Serial-barrier transactions (messages no access set could be
    /// declared for — unknown-instance routes).
    pub barriers: usize,
    /// Selective retries: conflicting group sets merged and re-executed
    /// in mempool order while the rest of the batch kept its optimistic
    /// results.
    pub selective_retries: usize,
    /// Reverted speculative creations repaired in place: the executor
    /// re-reserved ids along the serial assignment (reverted creations
    /// consume none) and re-executed only the groups holding
    /// reservations, while reservation-free groups kept their results.
    pub create_retries: usize,
    /// Batches discarded wholesale — a group escaped its declared preset
    /// or a creation repair failed to stabilize — and re-executed
    /// serially.
    pub conflict_fallbacks: usize,
    /// Batches discarded because the block gas limit cut the batch
    /// before any whole group fit — re-executed serially to reproduce
    /// exact carry-over semantics.
    pub gas_fallbacks: usize,
    /// Mid-batch block-gas cuts where the prefix of groups fitting the
    /// block committed optimistically and only the cut suffix
    /// re-executed serially.
    pub gas_prefix_commits: usize,
}

impl ParallelStats {
    /// The scheduler's counters as one registry [`MetricSet`]
    /// (`scheduler_*` names). The `scheduler_json` report line is a
    /// thin view over this set.
    pub fn metric_set(&self) -> dragoon_trace::MetricSet {
        dragoon_trace::MetricSet::new("scheduler")
            .counter(
                "parallel_txs",
                "scheduler_parallel_txs_total",
                self.parallel_txs as u64,
            )
            .counter(
                "serial_txs",
                "scheduler_serial_txs_total",
                self.serial_txs as u64,
            )
            .counter("batches", "scheduler_batches_total", self.batches as u64)
            .counter("groups", "scheduler_groups_total", self.groups as u64)
            .counter("barriers", "scheduler_barriers_total", self.barriers as u64)
            .counter(
                "selective_retries",
                "scheduler_selective_retries_total",
                self.selective_retries as u64,
            )
            .counter(
                "create_retries",
                "scheduler_create_retries_total",
                self.create_retries as u64,
            )
            .counter(
                "conflict_fallbacks",
                "scheduler_conflict_fallbacks_total",
                self.conflict_fallbacks as u64,
            )
            .counter(
                "gas_fallbacks",
                "scheduler_gas_fallbacks_total",
                self.gas_fallbacks as u64,
            )
            .counter(
                "gas_prefix_commits",
                "scheduler_gas_prefix_commits_total",
                self.gas_prefix_commits as u64,
            )
    }
}

/// Resolves a thread count: `explicit` if non-zero, else the
/// `DRAGOON_THREADS` environment variable, else available parallelism.
pub fn resolve_threads(explicit: usize) -> usize {
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("DRAGOON_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One scheduled transaction of a batch, with its declared access.
struct BatchTx<M> {
    /// Position within the round's schedule (the merge order).
    pos: usize,
    /// The instance whose shard executes it.
    key: u64,
    access: AccessSet,
    tx: PendingTx<M>,
}

impl<M> BatchTx<M> {
    /// Whether this transaction speculatively creates its instance.
    fn creates(&self) -> bool {
        self.access.reserves.is_some()
    }
}

/// The outcome of one optimistically executed transaction, held until
/// the batch validates.
struct TxOutcome<S: StateMachine> {
    /// Position within the round's schedule (the merge order).
    pos: usize,
    receipt: Receipt,
    /// Contract events the transaction emitted (empty on revert).
    events: Vec<S::Event>,
    /// The half-open range of the group shadow's ledger-event log this
    /// transaction appended.
    ledger_events: (usize, usize),
}

/// One conflict group's workspace: the shards of every instance it
/// declares, the shadow ledger, the transactions (schedule position +
/// payload) and, after execution, the outcomes and the observed touch
/// record.
struct GroupRun<S: ParallelStateMachine> {
    /// Instance keys whose shards install back on commit.
    write_keys: BTreeSet<u64>,
    shards: BTreeMap<u64, S::Shard>,
    ledger: Ledger,
    preset: BTreeSet<Address>,
    txs: Vec<BatchTx<S::Msg>>,
    outcomes: Vec<TxOutcome<S>>,
    touched: TouchRecord<Address>,
}

/// How many times a batch may re-derive its speculative id assignment
/// after reverted creations before giving up on the repair and falling
/// back to serial execution (re-execution can in principle change which
/// creations revert, re-shifting the assignment).
const MAX_CREATE_REPAIRS: usize = 3;

/// Executes one group's transactions in schedule order against its
/// shards and shadow ledger — the body each worker thread runs. Mirrors
/// `Chain::execute_tx_open` exactly (intrinsic gas, journal bracket,
/// event capture, revert handling).
fn run_group<S: ParallelStateMachine>(
    group: &mut GroupRun<S>,
    round: u64,
    schedule: &GasSchedule,
    contract_addr: Address,
) {
    for btx in &group.txs {
        let shard = group
            .shards
            .get_mut(&btx.key)
            .expect("group holds every declared shard");
        let mut meter = GasMeter::new();
        meter.charge("intrinsic", schedule.intrinsic(&btx.tx.msg.calldata()));
        let label = btx.tx.msg.label();
        let mut events = Vec::new();
        S::shard_begin_tx(shard);
        group.ledger.begin_tx();
        let ev_start = group.ledger.events().len();
        let result = {
            let mut env = ExecEnv::new(
                &mut group.ledger,
                &mut meter,
                schedule,
                round,
                contract_addr,
                &mut events,
            );
            S::shard_on_message(shard, &mut env, btx.tx.sender, btx.tx.msg.clone())
        };
        let (status, events) = match result {
            Ok(()) => {
                S::shard_commit_tx(shard);
                group.ledger.commit_tx();
                (TxStatus::Ok, events)
            }
            Err(e) => {
                // Roll back all touched state; gas is still consumed.
                S::shard_rollback_tx(shard);
                group.ledger.rollback_tx();
                (TxStatus::Reverted(e.to_string()), Vec::new())
            }
        };
        let ev_end = group.ledger.events().len();
        group.outcomes.push(TxOutcome {
            pos: btx.pos,
            receipt: Receipt {
                seq: btx.tx.seq,
                sender: btx.tx.sender,
                label,
                round,
                gas_used: meter.used(),
                status,
                gas_breakdown: meter.breakdown().to_vec(),
            },
            events,
            ledger_events: (ev_start, ev_end),
        });
    }
    group.touched = group.ledger.take_touched();
}

/// A plain union-find over `0..n`.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// A resource in the conflict graph: a hosted instance or a ledger
/// account.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Resource {
    Instance(u64),
    Account(Address),
}

impl<S> Chain<S>
where
    S: ParallelStateMachine,
    S::Shard: Send,
    S::Msg: Send,
    S::Event: Send,
{
    /// Advances one round with optimistic parallel execution over
    /// declared access sets. Committed state — receipts, events, ledger,
    /// contract, mempool carry-over — is bit-identical to
    /// [`Chain::advance_round`] for every thread count; with one
    /// executor thread (or under the clone-checkpoint baseline, which
    /// has no shard journaling) it *is* the serial path.
    pub fn advance_round_parallel(&mut self, policy: &mut dyn ReorderPolicy<S::Msg>) -> &Block {
        if self.exec_threads <= 1 || self.clone_checkpoint.is_some() {
            return self.advance_round(policy);
        }
        self.round += 1;
        self.last_block_txs.clear();
        self.clock_tick();

        let pending = std::mem::take(&mut self.mempool);
        let Scheduled { deliver, delay } = policy.schedule(self.round, pending);
        self.mempool = delay;

        let mut receipts = Vec::new();
        let mut block_gas: Gas = 0;
        let mut carried: Vec<PendingTx<S::Msg>> = Vec::new();
        let mut queue: VecDeque<PendingTx<S::Msg>> = deliver.into();
        let mut pos = 0;
        'round: while !queue.is_empty() {
            // Accumulate the maximal run of attributable transactions
            // into one batch. Creation messages reserve ids against the
            // counter snapshot, so spawns batch like any instance write.
            let mut reserver = IdReserver::new(self.contract.reservation_base());
            let mut batch: Vec<BatchTx<S::Msg>> = Vec::new();
            while let Some(tx) = queue.front() {
                let access =
                    self.contract
                        .access_set(self.contract_addr, tx.sender, &tx.msg, &mut reserver);
                let key = match (access.is_global(), access.primary_key()) {
                    (false, Some(key)) => key,
                    _ => break,
                };
                batch.push(BatchTx {
                    pos,
                    key,
                    access,
                    tx: queue.pop_front().expect("front exists"),
                });
                pos += 1;
            }
            if !batch.is_empty() {
                if !self.execute_batch(batch, &mut block_gas, &mut receipts, &mut carried) {
                    break 'round;
                }
                continue;
            }
            // The front transaction is a serial barrier: it executes
            // alone, in order, against full contract state.
            let tx = queue.pop_front().expect("checked non-empty");
            pos += 1;
            self.parallel_stats.serial_txs += 1;
            self.parallel_stats.barriers += 1;
            if !self.execute_tx_into_block(tx, &mut block_gas, &mut receipts, &mut carried) {
                break 'round;
            }
        }
        // A full block carries everything not yet executed, in order.
        carried.extend(queue);
        self.seal_block(receipts, carried)
    }

    /// Executes one batch of attributed transactions, in parallel when
    /// the grouper finds several disjoint groups. Returns `false` when
    /// the block gas limit stopped the batch (remaining transactions
    /// were pushed to `carried` by the serial fallback).
    fn execute_batch(
        &mut self,
        batch: Vec<BatchTx<S::Msg>>,
        block_gas: &mut Gas,
        receipts: &mut Vec<Receipt>,
        carried: &mut Vec<PendingTx<S::Msg>>,
    ) -> bool {
        let groups = match self.assemble_groups(batch) {
            Ok(groups) => groups,
            Err(batch) => {
                return self.execute_batch_serial(batch, block_gas, receipts, carried);
            }
        };

        let round = self.round;
        let schedule = &self.schedule;
        let contract_addr = self.contract_addr;

        // Fan the groups out over scoped worker threads: largest groups
        // first, round-robin over the buckets (group sizes are skewed —
        // one busy instance can dominate a block). Distribution cannot
        // affect results; groups are independent until validation.
        let threads = self.exec_threads.min(groups.len());
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(groups[i].txs.len()));
        let mut slots: Vec<Option<GroupRun<S>>> = groups.into_iter().map(Some).collect();
        let mut buckets: Vec<Vec<GroupRun<S>>> = (0..threads).map(|_| Vec::new()).collect();
        for (j, &i) in order.iter().enumerate() {
            buckets[j % threads].push(slots[i].take().expect("each group moves once"));
        }
        let mut groups: Vec<GroupRun<S>> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|mut bucket| {
                    scope.spawn(move || {
                        for group in &mut bucket {
                            run_group::<S>(group, round, schedule, contract_addr);
                        }
                        bucket
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("executor thread panicked"))
                .collect()
        });
        groups.sort_by_key(|g| g.txs.first().map(|btx| btx.pos).unwrap_or(usize::MAX));

        // Validate-and-retry loop. Each iteration either proves the batch
        // conflict-free (and breaks), repairs a reverted speculative
        // creation's id assignment, merges conflicting groups and
        // re-executes them (strictly shrinking the group count), or
        // bails to the serial backstop.
        let reservation_base = self.contract.reservation_base();
        let mut expected_reverted: BTreeSet<usize> = BTreeSet::new();
        let mut create_repairs = 0usize;
        loop {
            // Backstop: a group touched an account outside its declared
            // preset that has a base entry: its shadow read a phantom
            // zero, so its results are unsound and the whole batch
            // re-executes serially.
            let escaped = groups.iter().any(|g| {
                g.touched.all().any(|addr| {
                    !g.preset.contains(&addr) && self.ledger.balance_entry(&addr).is_some()
                })
            });
            if escaped {
                self.parallel_stats.conflict_fallbacks += 1;
                let batch = collect_batch(groups);
                return self.execute_batch_serial(batch, block_gas, receipts, carried);
            }

            // Reverted speculative creations: serial execution rewinds
            // the id counter on a creation revert, so every later
            // reservation in the batch is shifted off its optimistic id.
            // Instead of discarding the whole batch, re-reserve ids
            // along the serial assignment (reverted creations consume
            // none) and selectively re-execute the groups holding
            // reservations — reservation-free groups are untouched by id
            // assignment and keep their optimistic results. The repair
            // must stabilize: if re-execution changes which creations
            // revert (each repair re-derives the assignment), it runs
            // again, bounded by [`MAX_CREATE_REPAIRS`].
            let reverted_creates: BTreeSet<usize> = groups
                .iter()
                .flat_map(|g| {
                    g.txs.iter().zip(&g.outcomes).filter_map(|(btx, o)| {
                        (btx.creates() && matches!(o.receipt.status, TxStatus::Reverted(_)))
                            .then_some(btx.pos)
                    })
                })
                .collect();
            if reverted_creates != expected_reverted {
                if create_repairs >= MAX_CREATE_REPAIRS {
                    self.parallel_stats.conflict_fallbacks += 1;
                    let batch = collect_batch(groups);
                    return self.execute_batch_serial(batch, block_gas, receipts, carried);
                }
                create_repairs += 1;
                match self.repair_reverted_creates(groups, &reverted_creates, reservation_base) {
                    Ok(repaired) => {
                        self.parallel_stats.create_retries += 1;
                        expected_reverted = reverted_creates;
                        groups = repaired;
                        continue;
                    }
                    Err(batch) => {
                        self.parallel_stats.conflict_fallbacks += 1;
                        return self.execute_batch_serial(batch, block_gas, receipts, carried);
                    }
                }
            }

            // Observed conflicts: any write-involved overlap between two
            // groups' touch records makes their optimistic results
            // order-sensitive. Union the transitive closure.
            let mut uf = UnionFind::new(groups.len());
            let mut any = false;
            for i in 0..groups.len() {
                for j in i + 1..groups.len() {
                    if groups[i].touched.conflicts_with(&groups[j].touched) {
                        uf.union(i, j);
                        any = true;
                    }
                }
            }
            // Commutative-debit overdraft check: per debited account, the
            // sum of every group's successful freeze deltas must fit the
            // canonical base entry. If it does, every guard that passed
            // optimistically also passes under any serial interleaving
            // (each debit dᵢ sees base − Σ(prior) ≥ dᵢ whenever Σ ≤ base)
            // and every failed guard still fails (serial balances are
            // only lower). If it does not, some optimistic pass would
            // have failed serially, so the debiting groups merge and
            // re-execute in mempool order — a selective retry that
            // restores exact serial guard semantics inside one group.
            let mut debit_sums: BTreeMap<Address, (u128, Vec<usize>)> = BTreeMap::new();
            for (i, g) in groups.iter().enumerate() {
                for (addr, amt) in g.ledger.debit_totals() {
                    let entry = debit_sums.entry(addr).or_insert((0, Vec::new()));
                    entry.0 += amt;
                    entry.1.push(i);
                }
            }
            for (addr, (sum, members)) in &debit_sums {
                if members.len() >= 2 && *sum > self.ledger.balance_entry(addr).unwrap_or(0) {
                    for w in members.windows(2) {
                        uf.union(w[0], w[1]);
                    }
                    any = true;
                }
            }
            if !any {
                break;
            }

            // Selective retry: merge each conflicting component into one
            // group and re-execute its transactions in mempool order
            // against fresh snapshots of main state (which the component
            // observes exclusively — every group overlapping it is part
            // of it). Non-conflicting groups keep their results.
            let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for i in 0..groups.len() {
                let root = uf.find(i);
                components.entry(root).or_default().push(i);
            }
            let mut merged_roots: BTreeSet<usize> = BTreeSet::new();
            for (root, members) in &components {
                if members.len() >= 2 {
                    merged_roots.insert(*root);
                }
            }
            let mut kept: Vec<GroupRun<S>> = Vec::new();
            let mut retried: Vec<GroupRun<S>> = Vec::new();
            let mut merging: BTreeMap<usize, Vec<GroupRun<S>>> = BTreeMap::new();
            for (i, g) in groups.into_iter().enumerate() {
                let root = uf.find(i);
                if merged_roots.contains(&root) {
                    merging.entry(root).or_default().push(g);
                } else {
                    kept.push(g);
                }
            }
            for (_, members) in merging {
                self.parallel_stats.selective_retries += 1;
                let Ok(mut merged) = self.merge_groups(members) else {
                    unreachable!("merged instances exist: their groups just ran");
                };
                run_group::<S>(&mut merged, round, schedule, contract_addr);
                retried.push(merged);
            }
            kept.extend(retried);
            kept.sort_by_key(|g| g.txs.first().map(|btx| btx.pos).unwrap_or(usize::MAX));
            groups = kept;
        }

        // Gas-cap cut detection: replay the receipts' gas in schedule
        // order against the block under construction. A cut means the
        // serial path would have stopped mid-batch. Instead of
        // discarding everything, commit the schedule-order prefix of
        // *whole groups* that fits below the cut (their optimistic
        // results are serial-identical — the batch just validated
        // conflict-free) and re-execute only the suffix serially, which
        // re-derives the exact cut and carry-over.
        let cut_pos: Option<usize> = self.block_gas_limit.and_then(|limit| {
            let mut outcomes: Vec<&TxOutcome<S>> =
                groups.iter().flat_map(|g| g.outcomes.iter()).collect();
            outcomes.sort_by_key(|o| o.pos);
            let mut gas = *block_gas;
            let mut nonempty = !receipts.is_empty();
            for o in outcomes {
                if gas + o.receipt.gas_used > limit && nonempty {
                    return Some(o.pos);
                }
                gas += o.receipt.gas_used;
                nonempty = true;
            }
            None
        });
        if let Some(cut) = cut_pos {
            // Shrink the cut to a group-closure prefix: a group with
            // transactions on both sides of the boundary cannot commit
            // (its shards reflect *all* its transactions), so the
            // boundary retreats to its first position until every group
            // lies entirely on one side.
            let mut prefix_end = cut;
            loop {
                let mut shrunk = false;
                for g in &groups {
                    let first = g.txs.first().map(|btx| btx.pos).unwrap_or(usize::MAX);
                    let last = g.txs.last().map(|btx| btx.pos).unwrap_or(0);
                    if first < prefix_end && last >= prefix_end {
                        prefix_end = first;
                        shrunk = true;
                    }
                }
                if !shrunk {
                    break;
                }
            }
            let (commit, rest): (Vec<GroupRun<S>>, Vec<GroupRun<S>>) = groups
                .into_iter()
                .partition(|g| g.txs.last().map(|btx| btx.pos).unwrap_or(0) < prefix_end);
            if commit.is_empty() {
                // The straddling group reaches back to the batch start:
                // nothing can commit, so the whole batch falls back.
                self.parallel_stats.gas_fallbacks += 1;
                let batch = collect_batch(rest);
                return self.execute_batch_serial(batch, block_gas, receipts, carried);
            }
            self.parallel_stats.gas_prefix_commits += 1;
            self.commit_groups(commit, block_gas, receipts);
            let batch = collect_batch(rest);
            return self.execute_batch_serial(batch, block_gas, receipts, carried);
        }

        self.commit_groups(groups, block_gas, receipts);
        true
    }

    /// Merges validated groups into chain state. Groups are pairwise
    /// disjoint on every written resource, so shard installs and balance
    /// merges commute; receipts and both event streams merge in schedule
    /// order, making the committed block byte-identical to serial
    /// execution.
    fn commit_groups(
        &mut self,
        mut groups: Vec<GroupRun<S>>,
        block_gas: &mut Gas,
        receipts: &mut Vec<Receipt>,
    ) {
        self.parallel_stats.batches += 1;
        self.parallel_stats.groups += groups.len();
        self.parallel_stats.parallel_txs += groups.iter().map(|g| g.txs.len()).sum::<usize>();
        for g in &groups {
            for addr in &g.touched.writes {
                self.ledger.merge_entry(*addr, g.ledger.balance_entry(addr));
            }
            // Debited accounts merge additively: each group's accumulated
            // freeze delta subtracts from the canonical entry, so
            // several groups debiting one funded sender commute.
            for addr in &g.touched.debits {
                if let Some(delta) = g.ledger.debit_total(addr) {
                    self.ledger.apply_debit(*addr, delta);
                }
            }
        }
        let mut merged: Vec<(usize, usize, usize)> = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            for (oi, o) in g.outcomes.iter().enumerate() {
                merged.push((o.pos, gi, oi));
            }
        }
        merged.sort_unstable();
        for (_, gi, oi) in merged {
            let (a, b) = groups[gi].outcomes[oi].ledger_events;
            let events = std::mem::take(&mut groups[gi].outcomes[oi].events);
            let receipt = groups[gi].outcomes[oi].receipt.clone();
            *block_gas += receipt.gas_used;
            receipts.push(receipt);
            if self.record_block_txs {
                self.last_block_txs.push(groups[gi].txs[oi].tx.clone());
            }
            for e in events {
                self.events.push((self.round, e));
            }
            self.ledger.append_events(&groups[gi].ledger.events()[a..b]);
        }
        for g in &mut groups {
            for key in g.write_keys.clone() {
                let shard = g.shards.remove(&key).expect("write key has a shard");
                self.contract.shard_install(key, shard);
            }
        }
    }

    /// Repairs a batch whose speculative creations partially reverted:
    /// serial execution consumes an id only when a creation succeeds, so
    /// the repair re-reserves along that assignment — surviving
    /// creations consume sequential ids, reverted ones are tentatively
    /// assigned the next id without consuming it (the id serial
    /// execution would assign and roll back) — rebuilds the affected
    /// access sets and re-executes every reservation-holding group's
    /// transactions as one merged group in mempool order against fresh
    /// snapshots.
    /// Reservation-free groups keep their optimistic results. `Err`
    /// hands the whole batch back for serial execution when a rebuilt
    /// message can no longer be attributed (e.g. a route to an id no
    /// surviving creation produces and no shard can stand for).
    #[allow(clippy::type_complexity)]
    fn repair_reverted_creates(
        &self,
        groups: Vec<GroupRun<S>>,
        reverted: &BTreeSet<usize>,
        base: u64,
    ) -> Result<Vec<GroupRun<S>>, Vec<BatchTx<S::Msg>>> {
        let mut kept: Vec<GroupRun<S>> = Vec::new();
        let mut affected: Vec<BatchTx<S::Msg>> = Vec::new();
        for g in groups {
            // Any transaction keyed at or past the reservation base
            // depends on speculative id assignment (creations and routes
            // to reserved ids); its whole group re-executes.
            if g.txs.iter().any(|btx| btx.key >= base) {
                affected.extend(g.txs);
            } else {
                kept.push(g);
            }
        }
        affected.sort_by_key(|btx| btx.pos);
        // The serial id assignment, walked in schedule order: every
        // creation is tentatively assigned the next id — serial rolls
        // the counter back on a revert, so only surviving creations
        // consume theirs. A reverted creation therefore shares its id
        // with the next survivor; that is sound (and required — the id
        // appears in the revert's receipt) because the merged group
        // executes sequentially and the revert's rollback clears the
        // shared shard before the survivor runs.
        let mut next = base;
        let mut assigned: VecDeque<u64> = VecDeque::new();
        for btx in affected.iter().filter(|btx| btx.creates()) {
            assigned.push_back(next);
            if !reverted.contains(&btx.pos) {
                next += 1;
            }
        }
        let mut reserver = IdReserver::with_assignments(base, assigned);
        let mut rebuilt: Vec<BatchTx<S::Msg>> = Vec::with_capacity(affected.len());
        let mut failed = false;
        for btx in &affected {
            let access = self.contract.access_set(
                self.contract_addr,
                btx.tx.sender,
                &btx.tx.msg,
                &mut reserver,
            );
            match (access.is_global(), access.primary_key()) {
                (false, Some(key)) => rebuilt.push(BatchTx {
                    pos: btx.pos,
                    key,
                    access,
                    tx: btx.tx.clone(),
                }),
                _ => {
                    failed = true;
                    break;
                }
            }
        }
        if !failed {
            // Re-execute the affected transactions as ONE group in
            // mempool order — exactly the selective-retry shape. The
            // sequential in-group execution is serial-faithful (balances
            // deplete in order, so e.g. an overdraft burst reverts the
            // same creations serial execution would), which makes the
            // observed reverted set stable and the repair converge
            // instead of oscillating with the overdraft check.
            match self.build_group(rebuilt) {
                Ok(mut merged) => {
                    run_group::<S>(&mut merged, self.round, &self.schedule, self.contract_addr);
                    kept.push(merged);
                    kept.sort_by_key(|g| g.txs.first().map(|btx| btx.pos).unwrap_or(usize::MAX));
                    return Ok(kept);
                }
                Err(_) => failed = true,
            }
        }
        debug_assert!(failed);
        // Flatten everything — the kept groups plus the original
        // affected transactions (the partial rebuilds hold clones and
        // are simply dropped) — back into the schedule-ordered batch for
        // the serial backstop.
        let mut batch: Vec<BatchTx<S::Msg>> = kept
            .into_iter()
            .flat_map(|g| g.txs)
            .chain(affected)
            .collect();
        batch.sort_by_key(|btx| btx.pos);
        Err(batch)
    }

    /// Builds the conflict groups for a batch: union-find over declared
    /// resources (any resource with a declared writer joins every
    /// transaction touching it), then one workspace per group with shard
    /// snapshots, the account preset (declared accounts plus transaction
    /// senders) and a sparse shadow ledger. `Err(batch)` when the batch
    /// should execute serially instead: it forms fewer than two groups
    /// (inherently sequential — no workspace is built) or a declared
    /// instance cannot be sharded (vanished id).
    #[allow(clippy::type_complexity)]
    fn assemble_groups(
        &self,
        batch: Vec<BatchTx<S::Msg>>,
    ) -> Result<Vec<GroupRun<S>>, Vec<BatchTx<S::Msg>>> {
        let mut members = group_by_declared_conflicts(batch);
        if members.len() < 2 {
            // A single group (one hot instance, or one conflict
            // component) is inherently sequential: hand the batch back
            // for serial execution before paying for shard snapshots and
            // ledger overlays it would never use.
            return Err(members.into_iter().flatten().collect());
        }
        let mut groups: Vec<GroupRun<S>> = Vec::with_capacity(members.len());
        let mut failed = false;
        for slot in members.iter_mut() {
            match self.build_group(std::mem::take(slot)) {
                Ok(g) => groups.push(g),
                Err(txs) => {
                    *slot = txs;
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            let mut batch: Vec<BatchTx<S::Msg>> = groups
                .into_iter()
                .flat_map(|g| g.txs)
                .chain(members.into_iter().flatten())
                .collect();
            batch.sort_by_key(|btx| btx.pos);
            return Err(batch);
        }
        Ok(groups)
    }

    /// Builds one group's workspace from its transactions (already in
    /// schedule order). On a vanished declared instance, hands the
    /// transactions back so the caller can fall back serially.
    fn build_group(&self, txs: Vec<BatchTx<S::Msg>>) -> Result<GroupRun<S>, Vec<BatchTx<S::Msg>>> {
        let mut write_keys: BTreeSet<u64> = BTreeSet::new();
        let mut read_keys: BTreeSet<u64> = BTreeSet::new();
        let mut reserved_keys: BTreeSet<u64> = BTreeSet::new();
        let mut preset: BTreeSet<Address> = BTreeSet::new();
        let mut debit_accounts: BTreeSet<Address> = BTreeSet::new();
        for btx in &txs {
            write_keys.extend(btx.access.instance_writes.iter().copied());
            read_keys.extend(btx.access.instance_reads.iter().copied());
            reserved_keys.extend(btx.access.reserves);
            preset.extend(btx.access.account_reads.iter().copied());
            preset.extend(btx.access.account_writes.iter().copied());
            preset.extend(btx.access.account_debits.iter().copied());
            debit_accounts.extend(btx.access.account_debits.iter().copied());
            preset.insert(btx.tx.sender);
        }
        let mut shards: BTreeMap<u64, S::Shard> = BTreeMap::new();
        for &key in write_keys.union(&read_keys) {
            let shard = if reserved_keys.contains(&key) {
                self.contract.shard_reserve(key, self.contract_addr)
            } else {
                match self.contract.shard_snapshot(key) {
                    Some(shard) => shard,
                    None => return Err(txs),
                }
            };
            shards.insert(key, shard);
        }
        let ledger = self
            .ledger
            .sparse_overlay_with_debits(preset.iter().copied(), debit_accounts.iter().copied());
        Ok(GroupRun {
            write_keys,
            shards,
            ledger,
            preset,
            txs,
            outcomes: Vec::new(),
            touched: TouchRecord::default(),
        })
    }

    /// Merges conflicting groups into one retry group: their
    /// transactions in schedule order, fresh shard snapshots and a fresh
    /// shadow ledger (main state is untouched — the discarded optimistic
    /// results lived on private copies).
    #[allow(clippy::type_complexity)]
    fn merge_groups(&self, members: Vec<GroupRun<S>>) -> Result<GroupRun<S>, Vec<BatchTx<S::Msg>>> {
        let mut txs: Vec<BatchTx<S::Msg>> = members.into_iter().flat_map(|g| g.txs).collect();
        txs.sort_by_key(|btx| btx.pos);
        self.build_group(txs)
    }

    /// The serial path for a batch: also used as the conflict / gas-
    /// overflow fallback. Returns `false` when the block filled up.
    fn execute_batch_serial(
        &mut self,
        batch: Vec<BatchTx<S::Msg>>,
        block_gas: &mut Gas,
        receipts: &mut Vec<Receipt>,
        carried: &mut Vec<PendingTx<S::Msg>>,
    ) -> bool {
        let mut batch = batch.into_iter();
        for btx in batch.by_ref() {
            self.parallel_stats.serial_txs += 1;
            if !self.execute_tx_into_block(btx.tx, block_gas, receipts, carried) {
                // The block is full: the overflowing transaction is
                // already in `carried`; the rest of the batch follows
                // it, in order, exactly as the serial path carries the
                // remaining deliveries.
                carried.extend(batch.map(|btx| btx.tx));
                return false;
            }
        }
        true
    }
}

/// Flattens discarded groups back into the schedule-ordered batch for
/// serial re-execution.
fn collect_batch<S: ParallelStateMachine>(groups: Vec<GroupRun<S>>) -> Vec<BatchTx<S::Msg>> {
    let mut batch: Vec<BatchTx<S::Msg>> = groups.into_iter().flat_map(|g| g.txs).collect();
    batch.sort_by_key(|btx| btx.pos);
    batch
}

/// Partitions a batch into its declared conflict components: union-find
/// over declared resources — any resource with a declared writer joins
/// every transaction touching it; read-only and debit-only sharing stay
/// parallel (the latter validated by the post-run overdraft check); a
/// declared read against a declared debit is order-sensitive and
/// serializes. Each component's transactions come back in schedule
/// order.
fn group_by_declared_conflicts<M>(batch: Vec<BatchTx<M>>) -> Vec<Vec<BatchTx<M>>> {
    let mut uf = UnionFind::new(batch.len());
    let mut writers: BTreeMap<Resource, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<Resource, Vec<usize>> = BTreeMap::new();
    let mut debitors: BTreeMap<Resource, Vec<usize>> = BTreeMap::new();
    for (ti, btx) in batch.iter().enumerate() {
        for key in &btx.access.instance_writes {
            writers
                .entry(Resource::Instance(*key))
                .or_default()
                .push(ti);
        }
        for key in &btx.access.instance_reads {
            readers
                .entry(Resource::Instance(*key))
                .or_default()
                .push(ti);
        }
        for addr in &btx.access.account_writes {
            writers
                .entry(Resource::Account(*addr))
                .or_default()
                .push(ti);
        }
        for addr in &btx.access.account_reads {
            readers
                .entry(Resource::Account(*addr))
                .or_default()
                .push(ti);
        }
        for addr in &btx.access.account_debits {
            debitors
                .entry(Resource::Account(*addr))
                .or_default()
                .push(ti);
        }
    }
    for (res, ws) in &writers {
        let first = ws[0];
        for &w in &ws[1..] {
            uf.union(first, w);
        }
        if let Some(rs) = readers.get(res) {
            for &r in rs {
                uf.union(first, r);
            }
        }
        if let Some(ds) = debitors.get(res) {
            for &d in ds {
                uf.union(first, d);
            }
        }
    }
    for (res, ds) in &debitors {
        if writers.contains_key(res) {
            continue; // already fully unioned above
        }
        if let Some(rs) = readers.get(res) {
            // A reader of a debited account pins every debitor to its
            // group (transitively merging the debitors — conservative
            // but sound; pure debit-debit sharing has no readers and
            // stays parallel).
            for &d in ds {
                uf.union(rs[0], d);
            }
            for &r in rs {
                uf.union(rs[0], r);
            }
        }
    }
    let mut index: BTreeMap<usize, usize> = BTreeMap::new();
    let mut members: Vec<Vec<BatchTx<M>>> = Vec::new();
    for (ti, btx) in batch.into_iter().enumerate() {
        let root = uf.find(ti);
        let gi = *index.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        members[gi].push(btx);
    }
    members
}
