//! Optimistic parallel block execution with journal-based conflict
//! detection.
//!
//! Settlement verification already fans out across threads at the block
//! boundary; this module removes the last big sequential section in the
//! hot path — transaction *execution* within a block. The scheme is
//! optimistic concurrency control specialized to the registry shape:
//!
//! 1. **Partition.** Each scheduled transaction declares the state it
//!    may touch ([`ParallelStateMachine::msg_access`]): a single hosted
//!    instance (`Hit { id, .. }` routes) or the global contract state
//!    (`Create`, unknown ids). Contiguous runs of instance-addressed
//!    transactions form a *batch*; global transactions are barriers that
//!    execute serially between batches, so a `Create` and the
//!    transactions around it keep exact serial order.
//! 2. **Execute.** Within a batch, transactions group by instance id.
//!    Each group runs on a scoped worker thread against a cloned shard
//!    of its instance and a [`Ledger::sparse_overlay`] shadow of the
//!    ledger, with every transaction bracketed by its own journal
//!    transaction (`begin`/`commit`/`rollback`), exactly like serial
//!    execution. Shadow ledgers record the **touched-entry set** — every
//!    balance entry read or written ([`dragoon_ledger::TouchSet`]).
//! 3. **Validate.** Two groups conflict when their touch sets intersect
//!    (a read–write or write–write dependency would make the optimistic
//!    result order-sensitive), and a group invalidates itself when it
//!    touched an account outside its declared preset that has a base
//!    entry (its shadow read a phantom zero). Any conflict discards the
//!    whole batch's optimistic results and re-executes the batch
//!    serially in mempool order. A mid-batch block-gas overflow is
//!    detected the same way — receipts are simulated in schedule order —
//!    and also falls back, so gas-capped carry-over semantics are
//!    byte-identical to the serial path.
//! 4. **Merge.** Disjoint groups commute, so their shards and touched
//!    balance entries install in any order; receipts, contract events
//!    and ledger events merge in schedule order. The committed state is
//!    therefore **bit-identical to serial execution regardless of thread
//!    count** — the property `tests/parallel_equivalence.rs` pins.
//!
//! Thread counts resolve through [`resolve_threads`]: an explicit
//! setting wins, then the `DRAGOON_THREADS` environment variable, then
//! the host's available parallelism.

use crate::chain::{Block, Chain, ChainMessage, ExecEnv, Receipt, StateMachine, TxStatus};
use crate::gas::{Gas, GasMeter, GasSchedule};
use crate::mempool::{PendingTx, ReorderPolicy, Scheduled};
use dragoon_ledger::{Address, Journaled, Ledger};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What a message may touch, as declared before execution. The scheduler
/// only parallelizes across distinct [`MsgAccess::Instance`] keys;
/// anything [`MsgAccess::Global`] is a serial barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgAccess {
    /// Touches contract-global state (or cannot be attributed): executes
    /// serially, in order, between parallel batches.
    Global,
    /// Touches only the hosted instance with this key (plus ledger
    /// entries, which the touch sets police dynamically).
    Instance(u64),
}

/// A [`StateMachine`] whose state shards by hosted instance, enabling
/// optimistic parallel execution. Implementations must reproduce the
/// serial `on_message` semantics *exactly* on a shard — same gas
/// charges in the same order, same events, same error strings — because
/// the differential guarantee is bit-identical receipts.
pub trait ParallelStateMachine: StateMachine {
    /// One extracted instance: an owned, thread-movable copy of the
    /// state a group of transactions may mutate.
    type Shard: Send;

    /// Declares the access partition of a message against current state.
    /// Messages addressing unknown instances must return
    /// [`MsgAccess::Global`] so their revert executes in serial order.
    fn msg_access(&self, msg: &Self::Msg) -> MsgAccess;

    /// Clones the instance behind `key` into a shard (`None` if the key
    /// vanished — the executor then falls back to serial execution).
    fn shard_snapshot(&self, key: u64) -> Option<Self::Shard>;

    /// Installs an executed shard back, replacing the instance state.
    fn shard_install(&mut self, key: u64, shard: Self::Shard);

    /// The ledger accounts transactions on this instance may touch
    /// (escrow, requester, enrolled workers, …). The executor adds the
    /// senders of the group's transactions; reads outside the resulting
    /// preset are detected post-hoc and force a serial fallback.
    fn shard_accounts(&self, key: u64) -> Vec<Address>;

    /// Handles one instance-addressed message against the shard,
    /// mirroring the serial routing path. The executor brackets the call
    /// with [`ParallelStateMachine::shard_begin_tx`] and one of
    /// commit/rollback, exactly as the chain brackets `on_message`.
    fn shard_on_message(
        shard: &mut Self::Shard,
        env: &mut ExecEnv<'_, Self::Event>,
        sender: Address,
        msg: Self::Msg,
    ) -> Result<(), Self::Error>;

    /// Opens the shard's journal transaction.
    fn shard_begin_tx(shard: &mut Self::Shard);
    /// Commits the shard's journal transaction.
    fn shard_commit_tx(shard: &mut Self::Shard);
    /// Rolls the shard's journal transaction back.
    fn shard_rollback_tx(shard: &mut Self::Shard);
}

/// Counters describing how the parallel executor ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Transactions whose optimistic parallel results committed.
    pub parallel_txs: usize,
    /// Transactions executed serially (global barriers, single-group
    /// batches, and fallback re-executions).
    pub serial_txs: usize,
    /// Parallel batches whose results committed.
    pub batches: usize,
    /// Batches discarded because two groups' touch sets intersected (or
    /// a group escaped its preset) — re-executed serially.
    pub conflict_fallbacks: usize,
    /// Batches discarded because the block gas limit cut the batch —
    /// re-executed serially to reproduce exact carry-over semantics.
    pub gas_fallbacks: usize,
}

/// Resolves a thread count: `explicit` if non-zero, else the
/// `DRAGOON_THREADS` environment variable, else available parallelism.
pub fn resolve_threads(explicit: usize) -> usize {
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("DRAGOON_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The outcome of one optimistically executed transaction, held until
/// the batch validates.
struct TxOutcome<S: StateMachine> {
    /// Position within the round's schedule (the merge order).
    pos: usize,
    receipt: Receipt,
    /// Contract events the transaction emitted (empty on revert).
    events: Vec<S::Event>,
    /// The half-open range of the group shadow's ledger-event log this
    /// transaction appended.
    ledger_events: (usize, usize),
}

/// One instance group's workspace: the shard, the shadow ledger, the
/// transactions (schedule position + payload) and, after execution, the
/// outcomes and the touched-entry set.
struct GroupRun<S: ParallelStateMachine> {
    key: u64,
    shard: S::Shard,
    ledger: Ledger,
    preset: BTreeSet<Address>,
    txs: Vec<(usize, PendingTx<S::Msg>)>,
    outcomes: Vec<TxOutcome<S>>,
    touched: BTreeSet<Address>,
}

/// Executes one group's transactions in schedule order against its shard
/// and shadow ledger — the body each worker thread runs. Mirrors
/// `Chain::execute_tx_open` exactly (intrinsic gas, journal bracket,
/// event capture, revert handling).
fn run_group<S: ParallelStateMachine>(
    group: &mut GroupRun<S>,
    round: u64,
    schedule: &GasSchedule,
    contract_addr: Address,
) {
    for (pos, tx) in &group.txs {
        let mut meter = GasMeter::new();
        meter.charge("intrinsic", schedule.intrinsic(&tx.msg.calldata()));
        let label = tx.msg.label();
        let mut events = Vec::new();
        S::shard_begin_tx(&mut group.shard);
        group.ledger.begin_tx();
        let ev_start = group.ledger.events().len();
        let result = {
            let mut env = ExecEnv::new(
                &mut group.ledger,
                &mut meter,
                schedule,
                round,
                contract_addr,
                &mut events,
            );
            S::shard_on_message(&mut group.shard, &mut env, tx.sender, tx.msg.clone())
        };
        let (status, events) = match result {
            Ok(()) => {
                S::shard_commit_tx(&mut group.shard);
                group.ledger.commit_tx();
                (TxStatus::Ok, events)
            }
            Err(e) => {
                // Roll back all touched state; gas is still consumed.
                S::shard_rollback_tx(&mut group.shard);
                group.ledger.rollback_tx();
                (TxStatus::Reverted(e.to_string()), Vec::new())
            }
        };
        let ev_end = group.ledger.events().len();
        group.outcomes.push(TxOutcome {
            pos: *pos,
            receipt: Receipt {
                seq: tx.seq,
                sender: tx.sender,
                label,
                round,
                gas_used: meter.used(),
                status,
                gas_breakdown: meter.breakdown().to_vec(),
            },
            events,
            ledger_events: (ev_start, ev_end),
        });
    }
    group.touched = group.ledger.take_touched();
}

impl<S> Chain<S>
where
    S: ParallelStateMachine,
    S::Shard: Send,
    S::Msg: Send,
    S::Event: Send,
{
    /// Advances one round with optimistic parallel execution of
    /// disjoint-instance transactions. Committed state — receipts,
    /// events, ledger, contract, mempool carry-over — is bit-identical
    /// to [`Chain::advance_round`] for every thread count; with one
    /// executor thread (or under the clone-checkpoint baseline, which
    /// has no shard journaling) it *is* the serial path.
    pub fn advance_round_parallel(&mut self, policy: &mut dyn ReorderPolicy<S::Msg>) -> &Block {
        if self.exec_threads <= 1 || self.clone_checkpoint.is_some() {
            return self.advance_round(policy);
        }
        self.round += 1;
        self.clock_tick();

        let pending = std::mem::take(&mut self.mempool);
        let Scheduled { deliver, delay } = policy.schedule(self.round, pending);
        self.mempool = delay;

        let mut receipts = Vec::new();
        let mut block_gas: Gas = 0;
        let mut carried: Vec<PendingTx<S::Msg>> = Vec::new();
        let mut queue: VecDeque<PendingTx<S::Msg>> = deliver.into();
        let mut pos = 0;
        loop {
            let access = match queue.front() {
                None => break,
                Some(tx) => self.contract.msg_access(&tx.msg),
            };
            let full = match access {
                MsgAccess::Global => {
                    // Serial barrier: global transactions execute alone,
                    // in order, so creations and the transactions around
                    // them see exact serial state.
                    let tx = queue.pop_front().expect("front exists");
                    pos += 1;
                    self.parallel_stats.serial_txs += 1;
                    !self.execute_tx_into_block(tx, &mut block_gas, &mut receipts, &mut carried)
                }
                MsgAccess::Instance(_) => {
                    // Maximal run of instance-addressed transactions.
                    let mut batch = Vec::new();
                    while let Some(tx) = queue.front() {
                        let MsgAccess::Instance(key) = self.contract.msg_access(&tx.msg) else {
                            break;
                        };
                        batch.push((pos, key, queue.pop_front().expect("front exists")));
                        pos += 1;
                    }
                    !self.execute_batch(batch, &mut block_gas, &mut receipts, &mut carried)
                }
            };
            if full {
                break;
            }
        }
        // A full block carries everything not yet executed, in order.
        carried.extend(queue);
        self.seal_block(receipts, carried)
    }

    /// Executes one batch of instance-addressed transactions, in
    /// parallel when it spans several instances. Returns `false` when
    /// the block gas limit stopped the batch (remaining transactions
    /// were pushed to `carried` by the serial fallback).
    fn execute_batch(
        &mut self,
        batch: Vec<(usize, u64, PendingTx<S::Msg>)>,
        block_gas: &mut Gas,
        receipts: &mut Vec<Receipt>,
        carried: &mut Vec<PendingTx<S::Msg>>,
    ) -> bool {
        let distinct: BTreeSet<u64> = batch.iter().map(|(_, key, _)| *key).collect();
        if distinct.len() < 2 {
            // A single hot instance is inherently sequential: its
            // transactions execute serially, in mempool order.
            return self.execute_batch_serial(batch, block_gas, receipts, carried);
        }

        // Assemble one workspace per instance group (schedule order is
        // preserved inside each group's transaction list).
        let Some(groups) = self.assemble_groups(&batch) else {
            return self.execute_batch_serial(batch, block_gas, receipts, carried);
        };

        // Fan the groups out over scoped worker threads: largest groups
        // first, round-robin over the buckets (group sizes are skewed —
        // one busy instance can dominate a block). Distribution cannot
        // affect results; groups are independent until validation.
        let threads = self.exec_threads.min(groups.len());
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(groups[i].txs.len()));
        let mut slots: Vec<Option<GroupRun<S>>> = groups.into_iter().map(Some).collect();
        let mut buckets: Vec<Vec<GroupRun<S>>> = (0..threads).map(|_| Vec::new()).collect();
        for (j, &i) in order.iter().enumerate() {
            buckets[j % threads].push(slots[i].take().expect("each group moves once"));
        }
        let round = self.round;
        let schedule = &self.schedule;
        let contract_addr = self.contract_addr;
        let mut groups: Vec<GroupRun<S>> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|mut bucket| {
                    scope.spawn(move || {
                        for group in &mut bucket {
                            run_group::<S>(group, round, schedule, contract_addr);
                        }
                        bucket
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("executor thread panicked"))
                .collect()
        });
        groups.sort_by_key(|g| g.txs.first().map(|(pos, _)| *pos).unwrap_or(usize::MAX));

        // Conflict detection over the journal-layer touch sets: results
        // only commit if every touched ledger entry belongs to exactly
        // one group and stayed inside that group's preset.
        let mut conflict = false;
        let mut owner: BTreeSet<Address> = BTreeSet::new();
        'validate: for g in &groups {
            for addr in &g.touched {
                if !g.preset.contains(addr) && self.ledger.balance_entry(addr).is_some() {
                    conflict = true;
                    break 'validate;
                }
                if !owner.insert(*addr) {
                    conflict = true;
                    break 'validate;
                }
            }
        }

        // Gas-cap cut detection: replay the receipts' gas in schedule
        // order against the block under construction. Any cut means the
        // serial path would have stopped mid-batch, so the optimistic
        // results (computed from batch-start state for every tx) must be
        // discarded wholesale.
        let overflow = self.block_gas_limit.is_some_and(|limit| {
            let mut outcomes: Vec<&TxOutcome<S>> =
                groups.iter().flat_map(|g| g.outcomes.iter()).collect();
            outcomes.sort_by_key(|o| o.pos);
            let mut gas = *block_gas;
            let mut nonempty = !receipts.is_empty();
            outcomes.iter().any(|o| {
                if gas + o.receipt.gas_used > limit && nonempty {
                    true
                } else {
                    gas += o.receipt.gas_used;
                    nonempty = true;
                    false
                }
            })
        });

        if conflict || overflow {
            if conflict {
                self.parallel_stats.conflict_fallbacks += 1;
            } else {
                self.parallel_stats.gas_fallbacks += 1;
            }
            // Discard every optimistic result (shards and shadows were
            // private copies; main state is untouched) and re-execute
            // the whole batch serially, in mempool order.
            drop(groups);
            return self.execute_batch_serial(batch, block_gas, receipts, carried);
        }

        // Merge. Groups are pairwise disjoint, so shard installs and
        // balance merges commute; receipts and both event streams merge
        // in schedule order, making the committed block byte-identical
        // to serial execution.
        self.parallel_stats.batches += 1;
        self.parallel_stats.parallel_txs += batch.len();
        for g in &groups {
            for addr in &g.touched {
                self.ledger.merge_entry(*addr, g.ledger.balance_entry(addr));
            }
        }
        let mut merged: Vec<(usize, usize, usize)> = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            for (oi, o) in g.outcomes.iter().enumerate() {
                merged.push((o.pos, gi, oi));
            }
        }
        merged.sort_unstable();
        for (_, gi, oi) in merged {
            let (a, b) = groups[gi].outcomes[oi].ledger_events;
            let events = std::mem::take(&mut groups[gi].outcomes[oi].events);
            let receipt = groups[gi].outcomes[oi].receipt.clone();
            *block_gas += receipt.gas_used;
            receipts.push(receipt);
            for e in events {
                self.events.push((self.round, e));
            }
            self.ledger.append_events(&groups[gi].ledger.events()[a..b]);
        }
        for g in groups {
            self.contract.shard_install(g.key, g.shard);
        }
        true
    }

    /// Builds the per-instance group workspaces for a batch: shard
    /// snapshots, account presets (declared accounts plus transaction
    /// senders) and sparse shadow ledgers. `None` if any instance cannot
    /// be sharded.
    fn assemble_groups(
        &self,
        batch: &[(usize, u64, PendingTx<S::Msg>)],
    ) -> Option<Vec<GroupRun<S>>> {
        let mut groups: Vec<GroupRun<S>> = Vec::new();
        let mut index: BTreeMap<u64, usize> = BTreeMap::new();
        for (pos, key, tx) in batch {
            let gi = match index.get(key) {
                Some(&gi) => gi,
                None => {
                    let shard = self.contract.shard_snapshot(*key)?;
                    let preset: BTreeSet<Address> =
                        self.contract.shard_accounts(*key).into_iter().collect();
                    index.insert(*key, groups.len());
                    groups.push(GroupRun {
                        key: *key,
                        shard,
                        ledger: Ledger::new(),
                        preset,
                        txs: Vec::new(),
                        outcomes: Vec::new(),
                        touched: BTreeSet::new(),
                    });
                    groups.len() - 1
                }
            };
            groups[gi].preset.insert(tx.sender);
            groups[gi].txs.push((*pos, tx.clone()));
        }
        for g in &mut groups {
            g.ledger = self.ledger.sparse_overlay(g.preset.iter().copied());
        }
        Some(groups)
    }

    /// The serial path for a batch: global barrier semantics, also used
    /// as the conflict / gas-overflow fallback.
    fn execute_batch_serial(
        &mut self,
        batch: Vec<(usize, u64, PendingTx<S::Msg>)>,
        block_gas: &mut Gas,
        receipts: &mut Vec<Receipt>,
        carried: &mut Vec<PendingTx<S::Msg>>,
    ) -> bool {
        let mut batch = batch.into_iter();
        for (_, _, tx) in batch.by_ref() {
            self.parallel_stats.serial_txs += 1;
            if !self.execute_tx_into_block(tx, block_gas, receipts, carried) {
                // The block is full: the overflowing transaction is
                // already in `carried`; the rest of the batch follows
                // it, in order, exactly as the serial path carries the
                // remaining deliveries.
                carried.extend(batch.map(|(_, _, tx)| tx));
                return false;
            }
        }
        true
    }
}
