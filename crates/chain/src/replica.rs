//! Replica-side block application with **captured commits** — the state
//! layer `dragoon-net` builds reorgs on.
//!
//! A network replica does not schedule its own mempool: it receives a
//! produced block (the transaction list, in receipt order) and replays
//! it against local state. Because a replica may later learn that the
//! block sat on a losing fork, every commit is *captured*: the undo log
//! that [`crate::chain::Chain`]'s journal bracket normally discards at
//! commit time is kept, stacked per block as a [`BlockUndo`], so the
//! block can be unwound bit-exactly — deadline settlements, batched
//! verdicts and escrow movements included — when fork choice switches
//! branches.
//!
//! The split mirrors the production/validation separation: the sequencer
//! keeps the optimistic parallel executor
//! ([`crate::parallel`]); replicas replay serially (validation is
//! re-execution, and a replayed block is already scheduled), with the
//! journal captures providing O(touched-state) rollback instead of
//! whole-chain snapshots.

use crate::chain::{Block, Chain, ExecEnv, Receipt, StateMachine, TxStatus};
use crate::gas::GasMeter;
use crate::mempool::PendingTx;
use dragoon_ledger::{Journaled, LedgerCapture};

/// A [`StateMachine`] whose journal commits can be captured and later
/// unwound — the contract-side contract for replica reorgs.
///
/// Laws (given a bracket `begin_tx` … mutations … `commit_tx_captured`):
/// `revert_capture(capture)` must restore the observable state exactly
/// as `rollback_tx` would have at the commit point, and captures must be
/// reverted in reverse commit order.
pub trait CaptureStateMachine: StateMachine {
    /// The captured undo log of one committed transaction.
    type Capture;

    /// Commits the open journal transaction, returning its undo log.
    fn commit_tx_captured(&mut self) -> Self::Capture;

    /// Unwinds a previously captured commit (newest first).
    fn revert_capture(&mut self, capture: Self::Capture);
}

/// Everything needed to unwind one externally applied block: the undo
/// captures of its clock tick and every successful transaction, in
/// application (FIFO) order.
pub struct BlockUndo<S: CaptureStateMachine> {
    round: u64,
    events_len: usize,
    segments: Vec<(LedgerCapture, S::Capture)>,
}

impl<S: CaptureStateMachine> BlockUndo<S> {
    /// The round (block height) this undo belongs to.
    pub fn round(&self) -> u64 {
        self.round
    }
}

impl<S: CaptureStateMachine> Chain<S> {
    /// Applies an externally produced block: advances the round, runs
    /// the clock tick and every given transaction serially — all under
    /// captured journal brackets — and seals the block directly (no
    /// mempool scheduling, no gas-limit cut: the producer already
    /// enforced its limit, so replay reproduces the receipts exactly).
    ///
    /// Returns the [`BlockUndo`] that [`Chain::revert_last_block`]
    /// consumes to unwind the block on a reorg.
    pub fn apply_block_captured(&mut self, txs: Vec<PendingTx<S::Msg>>) -> BlockUndo<S> {
        debug_assert!(
            self.clone_checkpoint.is_none(),
            "captured application requires journal atomicity"
        );
        self.round += 1;
        let events_len = self.events.len();
        let mut segments = Vec::with_capacity(txs.len() + 1);
        // The clock tick runs under its own captured bracket: phase
        // deadlines and batched settlement verdicts firing at this block
        // boundary are part of the block and must unwind with it.
        self.contract.begin_tx();
        self.ledger.begin_tx();
        self.clock_tick();
        segments.push((
            self.ledger.commit_tx_captured(),
            self.contract.commit_tx_captured(),
        ));
        let mut receipts = Vec::with_capacity(txs.len());
        for tx in txs {
            let (receipt, segment) = self.execute_tx_captured(tx);
            receipts.push(receipt);
            segments.extend(segment);
        }
        self.blocks.push(Block {
            round: self.round,
            receipts,
        });
        BlockUndo {
            round: self.round,
            events_len,
            segments,
        }
    }

    /// Unwinds the most recent block using its captured undo state:
    /// segments revert in reverse application order, emitted events are
    /// truncated, the round steps back and the block is popped (and
    /// returned, so fork-choice bookkeeping can inspect it). Deeper
    /// reorgs call this repeatedly, newest block first.
    pub fn revert_last_block(&mut self, undo: BlockUndo<S>) -> Block {
        let block = self.blocks.pop().expect("a block to revert");
        assert_eq!(
            block.round, undo.round,
            "block undo must match the chain head"
        );
        for (ledger_capture, contract_capture) in undo.segments.into_iter().rev() {
            self.contract.revert_capture(contract_capture);
            self.ledger.revert_capture(ledger_capture);
        }
        self.events.truncate(undo.events_len);
        self.round -= 1;
        block
    }

    /// Executes one transaction under a captured journal bracket.
    /// Mirrors the serial `execute_tx_open` path — same intrinsic
    /// charge, same receipt shape — but a success commits *captured*
    /// and a revert (which restores state immediately) captures
    /// nothing.
    fn execute_tx_captured(
        &mut self,
        tx: PendingTx<S::Msg>,
    ) -> (Receipt, Option<(LedgerCapture, S::Capture)>) {
        use crate::chain::ChainMessage;
        self.contract.begin_tx();
        self.ledger.begin_tx();
        let mut meter = GasMeter::new();
        meter.charge("intrinsic", self.schedule.intrinsic(&tx.msg.calldata()));
        let label = tx.msg.label();
        let mut events = Vec::new();

        let result = {
            let mut env = ExecEnv::new(
                &mut self.ledger,
                &mut meter,
                &self.schedule,
                self.round,
                self.contract_addr,
                &mut events,
            );
            self.contract.on_message(&mut env, tx.sender, tx.msg)
        };

        let (status, segment) = match result {
            Ok(()) => {
                for e in events {
                    self.events.push((self.round, e));
                }
                let segment = (
                    self.ledger.commit_tx_captured(),
                    self.contract.commit_tx_captured(),
                );
                (TxStatus::Ok, Some(segment))
            }
            Err(e) => {
                // Roll back all touched state; gas is still consumed.
                self.contract.rollback_tx();
                self.ledger.rollback_tx();
                (TxStatus::Reverted(e.to_string()), None)
            }
        };

        (
            Receipt {
                seq: tx.seq,
                sender: tx.sender,
                label,
                round: self.round,
                gas_used: meter.used(),
                status,
                gas_breakdown: meter.breakdown().to_vec(),
            },
            segment,
        )
    }
}
