//! Durable chain state: an append-only on-disk block store with
//! periodic snapshots (full or incremental), an optional background
//! writer thread, and bit-identical crash recovery.
//!
//! The simulator historically lived and died inside one process: every
//! block, receipt and contract instance existed only in memory, which
//! caps a market at whatever one process lifetime can settle. This
//! module backs a [`Chain`] with three artifacts in a store directory:
//!
//! * **`blocks.log`** — one framed record per produced block, holding
//!   the block's *executed transactions* (sender, seq, message), in
//!   receipt order. Transactions, not receipts: replaying them through
//!   the serial executor regenerates receipts, events, ledger and
//!   contract state bit-identically (the same property the
//!   `dragoon-net` convergence differential proves for replicas fed by
//!   the sequencer's block feed).
//! * **`snapshot-<round>.bin`** — a periodic full encoding of the chain
//!   image (round, sequence counter, contract, ledger, blocks, events)
//!   so recovery replays only the block tail after the newest valid
//!   snapshot instead of the whole history.
//! * **`delta-<round>.bin`** — with [`BlockStore::with_incremental`],
//!   most cadence points write an *incremental* snapshot instead: only
//!   the state written since the previous artifact (dirty registry
//!   instances with tombstones, dirty ledger entries, the block/event
//!   suffixes), chained on the artifact's round via the
//!   [`PersistDelta`] trait. Every [`REBASE_EVERY`]-th snapshot is a
//!   full rebase, bounding the chain recovery must compose. Encode cost
//!   is O(touched state), not O(all instances).
//!
//! # Pipelining
//!
//! [`BlockStore::with_background_writer`] moves every disk operation to
//! a dedicated writer thread behind a bounded (double-buffered)
//! channel: the round loop hands off the encoded frame or snapshot and
//! continues into the next round while the writer appends, checksums
//! and publishes. Command order is FIFO, so the on-disk artifact
//! sequence is identical to the synchronous path; [`BlockStore::drain`]
//! is the barrier that waits for the queue to empty (call it before
//! reading the store's files, e.g. prior to an in-process
//! [`Chain::recover_from`]). Dropping the store drains implicitly.
//!
//! # Durability guarantee
//!
//! Log appends are buffered and flushed to the OS every
//! [`BlockStore::with_flush_every`] records (default: every record), so
//! an application crash can tear at most the unflushed tail of
//! `blocks.log`; the torn frame is detected and discarded on recovery.
//! Snapshot publishes are stronger: the bytes are written to a temp
//! file, `sync_all`-ed to the device, then atomically renamed — a
//! machine crash leaves either the previous artifact set or the new
//! one, never a half-written snapshot under its final name. With
//! [`BlockStore::with_compaction`], `blocks.log` is truncated after
//! each successful snapshot publish (every record it held is ≤ the
//! snapshot round), so a long-lived market's log stays bounded by one
//! snapshot interval; the tradeoff is that recovery then depends on the
//! snapshot/delta chain back to the newest full snapshot — corrupt
//! middle links can no longer fall back to replaying the whole log.
//!
//! Recovery ([`Chain::recover_from`]) restores the newest valid full
//! snapshot, composes any newer deltas in round order (stopping at the
//! first broken link), then replays the block-log tail; a torn final
//! record — a crash mid-append — is **detected and discarded**, never
//! half-applied: the recovered chain lands exactly on the last fully
//! persisted block. Corrupt full snapshots fall back to the next older
//! one, down to genesis.
//!
//! Serialization is the hand-rolled [`Persist`] codec (the vendored
//! serde compat is derive-only): deterministic byte layout, so two
//! identical chain states — live and recovered, or produced at
//! different `DRAGOON_THREADS` — encode to identical bytes. That byte
//! string is the crash-recovery differential's witness. (Delta *bytes*
//! may differ across thread counts — the serial and parallel executors
//! over-approximate the dirty set differently — but the recovered
//! image they compose to is identical.)

use crate::chain::{Block, Chain, Receipt, StateMachine, TxStatus};
use crate::gas::Gas;
use crate::mempool::PendingTx;
use dragoon_ledger::{Address, Ledger, LedgerEvent};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// Stored bytes failed structural validation (bad tag, short
    /// payload, checksum mismatch in a position recovery cannot skip).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(e) => write!(f, "corrupt store: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt(what.into())
}

// ---------------------------------------------------------------------
// The Persist codec
// ---------------------------------------------------------------------

/// A byte cursor for decoding [`Persist`] values.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`, starting at the first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "short read: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes a fixed-size byte array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }
}

/// Deterministic binary serialization for durable chain state.
///
/// The contract: `put` followed by `get` round-trips the value, and two
/// equal values produce identical bytes (collections are emitted in a
/// canonical order). Defined here — the lowest crate that sees chain,
/// ledger and (via downstream impls) contract state — so every layer
/// implements it for its own types without orphan-rule contortions.
pub trait Persist: Sized {
    /// Appends this value's canonical encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one value from the cursor.
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError>;
}

macro_rules! persist_int {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
                Ok(<$t>::from_le_bytes(r.array()?))
            }
        }
    )*};
}

persist_int!(u8, u32, u64, u128);

impl Persist for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match u8::get(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("bad bool byte {b}"))),
        }
    }
}

impl Persist for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        usize::try_from(u64::get(r)?).map_err(|_| corrupt("usize overflow"))
    }
}

macro_rules! persist_array {
    ($($n:literal),*) => {$(
        impl Persist for [u8; $n] {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(self);
            }
            fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
                r.array()
            }
        }
    )*};
}

persist_array!(20, 32, 64, 128);

impl Persist for String {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let len = usize::get(r)?;
        String::from_utf8(r.take(len)?.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match u8::get(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            b => Err(corrupt(format!("bad option tag {b}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let len = usize::get(r)?;
        // Guard against absurd lengths from corrupt bytes before
        // reserving memory: each element needs at least one byte.
        if len > r.remaining() {
            return Err(corrupt(format!("vec length {len} exceeds payload")));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::get(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl Persist for Address {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Address(r.array()?))
    }
}

impl Persist for LedgerEvent {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            LedgerEvent::Minted { account, amount } => {
                out.push(0);
                account.put(out);
                amount.put(out);
            }
            LedgerEvent::Frozen {
                contract,
                party,
                amount,
            } => {
                out.push(1);
                contract.put(out);
                party.put(out);
                amount.put(out);
            }
            LedgerEvent::NoFund { party, amount } => {
                out.push(2);
                party.put(out);
                amount.put(out);
            }
            LedgerEvent::Paid {
                contract,
                party,
                amount,
            } => {
                out.push(3);
                contract.put(out);
                party.put(out);
                amount.put(out);
            }
            LedgerEvent::Transferred { from, to, amount } => {
                out.push(4);
                from.put(out);
                to.put(out);
                amount.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => LedgerEvent::Minted {
                account: Address::get(r)?,
                amount: u128::get(r)?,
            },
            1 => LedgerEvent::Frozen {
                contract: Address::get(r)?,
                party: Address::get(r)?,
                amount: u128::get(r)?,
            },
            2 => LedgerEvent::NoFund {
                party: Address::get(r)?,
                amount: u128::get(r)?,
            },
            3 => LedgerEvent::Paid {
                contract: Address::get(r)?,
                party: Address::get(r)?,
                amount: u128::get(r)?,
            },
            4 => LedgerEvent::Transferred {
                from: Address::get(r)?,
                to: Address::get(r)?,
                amount: u128::get(r)?,
            },
            t => return Err(corrupt(format!("bad ledger event tag {t}"))),
        })
    }
}

impl Persist for Ledger {
    /// Balances serialize address-sorted (the internal map is hashed, so
    /// canonical order is what makes equal ledgers byte-equal).
    fn put(&self, out: &mut Vec<u8>) {
        self.accounts_sorted().put(out);
        self.events().to_vec().put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let balances: Vec<(Address, u128)> = Vec::get(r)?;
        let events: Vec<LedgerEvent> = Vec::get(r)?;
        Ok(Ledger::from_parts(balances, events))
    }
}

/// Re-interns a decoded label into the `&'static str` receipts carry.
/// Every label the system charges under is in the table; an unknown one
/// (a future label decoded by an older binary's table) is leaked once —
/// labels are a tiny closed set, so this never accumulates.
fn intern_label(label: String) -> &'static str {
    const KNOWN: &[&str] = &[
        "publish",
        "commit",
        "reveal",
        "golden",
        "outrange",
        "evaluate",
        "finalize",
        "cancel",
        "intrinsic",
        "log",
        "sstore",
        "sload",
        "create",
        "freeze",
        "pay",
        "keccak",
        "ec_add",
        "ec_mul",
        "overhead",
    ];
    for k in KNOWN {
        if *k == label {
            return k;
        }
    }
    Box::leak(label.into_boxed_str())
}

impl Persist for TxStatus {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            TxStatus::Ok => out.push(0),
            TxStatus::Reverted(msg) => {
                out.push(1);
                msg.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match u8::get(r)? {
            0 => Ok(TxStatus::Ok),
            1 => Ok(TxStatus::Reverted(String::get(r)?)),
            t => Err(corrupt(format!("bad tx status tag {t}"))),
        }
    }
}

impl Persist for Receipt {
    fn put(&self, out: &mut Vec<u8>) {
        self.seq.put(out);
        self.sender.put(out);
        self.label.to_string().put(out);
        self.round.put(out);
        self.gas_used.put(out);
        self.status.put(out);
        self.gas_breakdown.len().put(out);
        for (label, gas) in &self.gas_breakdown {
            label.to_string().put(out);
            gas.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let seq = u64::get(r)?;
        let sender = Address::get(r)?;
        let label = intern_label(String::get(r)?);
        let round = u64::get(r)?;
        let gas_used = Gas::get(r)?;
        let status = TxStatus::get(r)?;
        let n = usize::get(r)?;
        let mut gas_breakdown = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let label = intern_label(String::get(r)?);
            gas_breakdown.push((label, Gas::get(r)?));
        }
        Ok(Receipt {
            seq,
            sender,
            label,
            round,
            gas_used,
            status,
            gas_breakdown,
        })
    }
}

impl Persist for Block {
    fn put(&self, out: &mut Vec<u8>) {
        self.round.put(out);
        self.receipts.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Block {
            round: u64::get(r)?,
            receipts: Vec::get(r)?,
        })
    }
}

impl<M: Persist> Persist for PendingTx<M> {
    fn put(&self, out: &mut Vec<u8>) {
        self.sender.put(out);
        self.seq.put(out);
        self.msg.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(PendingTx {
            sender: Address::get(r)?,
            seq: u64::get(r)?,
            msg: M::get(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Incremental encoding
// ---------------------------------------------------------------------

/// Incremental serialization on top of [`Persist`]: a type that tracks
/// which parts of itself were written since the last [`mark_clean`]
/// (`PersistDelta::mark_clean`) can encode just that working set, and
/// apply such a delta over its previous state to reproduce the current
/// one. The defaults degrade every method to the full encoding, so a
/// plain `Persist` type opts in with an empty impl.
///
/// The contract: after `mark_clean`, a later `put_delta` followed by
/// `apply_delta` on the marked state must land on a state whose full
/// [`Persist::put`] encoding is identical to the live one. Delta
/// *bytes* need not be deterministic across executor thread counts
/// (dirty sets may be over-approximated differently); the composed
/// state must be.
pub trait PersistDelta: Persist {
    /// Appends the canonical encoding of everything written since the
    /// last [`PersistDelta::mark_clean`].
    fn put_delta(&self, out: &mut Vec<u8>) {
        self.put(out);
    }

    /// Applies one delta (as produced by [`PersistDelta::put_delta`])
    /// over the current state.
    fn apply_delta(&mut self, r: &mut Reader<'_>) -> Result<(), StoreError> {
        *self = Self::get(r)?;
        Ok(())
    }

    /// Resets the dirty baseline: the next [`PersistDelta::put_delta`]
    /// covers only writes after this call.
    fn mark_clean(&mut self) {}

    /// Size of the current working set (dirty entries a delta would
    /// encode) — telemetry for the snapshot-cost-scales-with-dirty
    /// acceptance check.
    fn dirty_units(&self) -> usize {
        0
    }
}

impl PersistDelta for Ledger {
    fn put_delta(&self, out: &mut Vec<u8>) {
        self.delta_entries().put(out);
        self.delta_events().to_vec().put(out);
    }

    fn apply_delta(&mut self, r: &mut Reader<'_>) -> Result<(), StoreError> {
        let entries: Vec<(Address, Option<u128>)> = Vec::get(r)?;
        for (account, entry) in entries {
            self.merge_entry(account, entry);
        }
        let events: Vec<LedgerEvent> = Vec::get(r)?;
        self.append_events(&events);
        Ok(())
    }

    fn mark_clean(&mut self) {
        self.mark_delta_clean();
    }

    fn dirty_units(&self) -> usize {
        self.dirty_len()
    }
}

/// Counters describing what the persistence layer wrote — the PERSIST
/// stats line of a market run. Log/snapshot byte counts are computed on
/// the enqueueing side, so they are identical whether the background
/// writer is on or off; delta byte counts may differ across executor
/// thread counts (see [`PersistDelta`]), so keep this out of
/// cross-thread equivalence assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Block records appended to `blocks.log`.
    pub blocks_appended: u64,
    /// Frame bytes appended to the log (header + payload).
    pub log_bytes_written: u64,
    /// Log bytes dropped by compaction truncations.
    pub log_bytes_truncated: u64,
    /// Compaction truncations performed.
    pub compactions: u64,
    /// Full snapshots published.
    pub full_snapshots: u64,
    /// Incremental (delta) snapshots published.
    pub delta_snapshots: u64,
    /// Snapshot bytes published (checksum + payload, full and delta).
    pub snapshot_bytes_written: u64,
    /// Dirty units (registry instances + ledger entries) encoded across
    /// all delta snapshots.
    pub dirty_units_encoded: u64,
    /// Settlement batches whose overlapped verification was joined and
    /// matched the drained pending set (precomputed verdicts used).
    pub overlap_hits: u64,
    /// Overlapped verifications that missed (layout changed between
    /// handoff and join; verdicts recomputed inline).
    pub overlap_misses: u64,
}

impl PersistStats {
    /// The persistence counters as one registry [`MetricSet`]
    /// (`persist_*` names).
    pub fn metric_set(&self) -> dragoon_trace::MetricSet {
        dragoon_trace::MetricSet::new("persist")
            .counter(
                "blocks_appended",
                "persist_blocks_appended_total",
                self.blocks_appended,
            )
            .counter(
                "log_bytes_written",
                "persist_log_bytes_written_total",
                self.log_bytes_written,
            )
            .counter(
                "log_bytes_truncated",
                "persist_log_bytes_truncated_total",
                self.log_bytes_truncated,
            )
            .counter("compactions", "persist_compactions_total", self.compactions)
            .counter(
                "full_snapshots",
                "persist_full_snapshots_total",
                self.full_snapshots,
            )
            .counter(
                "delta_snapshots",
                "persist_delta_snapshots_total",
                self.delta_snapshots,
            )
            .counter(
                "snapshot_bytes_written",
                "persist_snapshot_bytes_written_total",
                self.snapshot_bytes_written,
            )
            .counter(
                "dirty_units_encoded",
                "persist_dirty_units_encoded_total",
                self.dirty_units_encoded,
            )
            .counter(
                "overlap_hits",
                "persist_overlap_hits_total",
                self.overlap_hits,
            )
            .counter(
                "overlap_misses",
                "persist_overlap_misses_total",
                self.overlap_misses,
            )
    }

    /// One compact JSON object, for the `PERSIST:` stats line — a thin
    /// view over [`PersistStats::metric_set`].
    pub fn to_json(&self) -> String {
        self.metric_set().to_json_object()
    }
}

// ---------------------------------------------------------------------
// On-disk layout
// ---------------------------------------------------------------------

/// FNV-1a, the frame checksum. Not cryptographic — it guards against
/// torn writes and bit rot, not adversaries (the store directory is the
/// node's own trusted disk).
fn checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

const LOG_FILE: &str = "blocks.log";
const SNAPSHOT_PREFIX: &str = "snapshot-";
const DELTA_PREFIX: &str = "delta-";
const SNAPSHOT_SUFFIX: &str = ".bin";

/// Every this many snapshots, an incremental store writes a full rebase
/// instead of a delta, bounding the chain recovery must compose.
const REBASE_EVERY: u64 = 16;

fn snapshot_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{round:020}{SNAPSHOT_SUFFIX}"))
}

fn delta_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("{DELTA_PREFIX}{round:020}{SNAPSHOT_SUFFIX}"))
}

/// The disk half of the store: the buffered log handle plus the flush
/// cadence. Owned by the caller's thread (synchronous mode) or moved
/// into the background writer thread (pipelined mode) — either way,
/// every byte goes through the same code, so the two modes produce
/// identical files.
struct LogWriter {
    dir: PathBuf,
    log: BufWriter<File>,
    /// Flush the log buffer to the OS every this many appends (`0` =
    /// only at snapshots and drains — the widest torn-tail window).
    flush_every: u64,
    appends_since_flush: u64,
}

impl LogWriter {
    fn append_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        self.log.write_all(frame)?;
        self.appends_since_flush += 1;
        if self.flush_every > 0 && self.appends_since_flush >= self.flush_every {
            self.log.flush()?;
            self.appends_since_flush = 0;
        }
        Ok(())
    }

    /// Publishes one snapshot artifact atomically and durably: temp
    /// file, `sync_all`, rename. With `compact`, truncates `blocks.log`
    /// afterwards (every record it holds is covered by the artifact),
    /// and `prune_below` deletes artifacts older than a full rebase.
    fn publish(
        &mut self,
        tmp: &Path,
        dest: &Path,
        bytes: &[u8],
        compact: bool,
        prune_below: Option<u64>,
    ) -> Result<(), StoreError> {
        let mut f = File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(tmp, dest)?;
        if compact {
            self.log.flush()?;
            self.appends_since_flush = 0;
            self.log.get_mut().set_len(0)?;
        }
        if let Some(round) = prune_below {
            self.prune_artifacts(round)?;
        }
        Ok(())
    }

    /// Deletes snapshot/delta artifacts for rounds below `round` — safe
    /// once a full snapshot at `round` is durable, since recovery never
    /// reaches past the newest valid full snapshot.
    fn prune_artifacts(&self, round: u64) -> Result<(), StoreError> {
        for (r, path) in artifact_files(&self.dir)? {
            if r < round {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    fn flush_all(&mut self) -> Result<(), StoreError> {
        self.log.flush()?;
        self.appends_since_flush = 0;
        Ok(())
    }
}

/// Every snapshot/delta artifact in `dir` as `(round, path)` pairs.
fn artifact_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let round = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .or_else(|| name.strip_prefix(DELTA_PREFIX))
            .and_then(|n| n.strip_suffix(SNAPSHOT_SUFFIX))
            .and_then(|n| n.parse::<u64>().ok());
        if let Some(round) = round {
            out.push((round, path));
        }
    }
    Ok(out)
}

/// One unit of work handed to the background writer. Each write
/// carries the round it belongs to so the writer thread's wall-clock
/// spans line up with the producing round in a Chrome trace.
enum WriterCmd {
    /// Append a pre-framed log record.
    Frame { round: u64, bytes: Vec<u8> },
    /// Publish a snapshot artifact (full or delta).
    Publish {
        round: u64,
        tmp: PathBuf,
        dest: PathBuf,
        bytes: Vec<u8>,
        compact: bool,
        prune_below: Option<u64>,
    },
    /// Flush everything and acknowledge — the drain barrier.
    Drain(SyncSender<()>),
}

fn writer_loop(mut log: LogWriter, rx: Receiver<WriterCmd>) -> Result<(), StoreError> {
    for cmd in rx {
        match cmd {
            WriterCmd::Frame { round, bytes } => {
                let mut sp = dragoon_trace::span(dragoon_trace::SpanKind::Persist, round);
                sp.arg("bytes", bytes.len() as u64);
                log.append_frame(&bytes)?;
            }
            WriterCmd::Publish {
                round,
                tmp,
                dest,
                bytes,
                compact,
                prune_below,
            } => {
                let mut sp = dragoon_trace::span(dragoon_trace::SpanKind::Snapshot, round);
                sp.arg("bytes", bytes.len() as u64);
                log.publish(&tmp, &dest, &bytes, compact, prune_below)?;
            }
            WriterCmd::Drain(ack) => {
                log.flush_all()?;
                let _ = ack.send(());
            }
        }
    }
    // Sender dropped: final flush before the thread exits.
    log.flush_all()
}

/// Where writes go: inline on the caller's thread, or over a bounded
/// channel to the dedicated writer thread.
enum Writer {
    Inline(LogWriter),
    Background {
        tx: SyncSender<WriterCmd>,
        handle: Option<JoinHandle<Result<(), StoreError>>>,
    },
}

/// The writing half of the persistence layer: the snapshot cadence and
/// incremental/compaction policy, stats counters, and the log writer
/// (inline or behind the background channel).
pub struct BlockStore {
    dir: PathBuf,
    /// Write a snapshot every this many persisted blocks (`0` = never
    /// snapshot; recovery replays the whole log).
    snapshot_every: u64,
    blocks_since_snapshot: u64,
    /// Incremental snapshots: cadence points write deltas chained on the
    /// previous artifact, with a full rebase every [`REBASE_EVERY`]-th.
    incremental: bool,
    /// Truncate `blocks.log` after each successful snapshot publish.
    compact_log: bool,
    flush_every: u64,
    /// Round of the newest published artifact — the base the next delta
    /// chains on. `None` until the first full snapshot.
    prev_artifact: Option<u64>,
    deltas_since_full: u64,
    /// Chain event-log length at the last snapshot (the chain-side
    /// suffix mark for delta images).
    events_mark: usize,
    /// Frame bytes appended since the last compaction truncate.
    log_bytes_pending: u64,
    stats: PersistStats,
    writer: Writer,
}

impl fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockStore")
            .field("dir", &self.dir)
            .field("snapshot_every", &self.snapshot_every)
            .field("incremental", &self.incremental)
            .field("compact_log", &self.compact_log)
            .field(
                "background",
                &matches!(self.writer, Writer::Background { .. }),
            )
            .finish()
    }
}

impl BlockStore {
    /// Creates (or wipes) a store directory for a fresh run: a new empty
    /// `blocks.log`, any previous run's snapshots and deltas removed.
    /// Defaults: synchronous writes, flush on every append, full
    /// snapshots, no compaction — exactly the pre-pipeline behaviour.
    pub fn create(dir: impl AsRef<Path>, snapshot_every: u64) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if name.starts_with(SNAPSHOT_PREFIX)
                    || name.starts_with(DELTA_PREFIX)
                    || name == LOG_FILE
                {
                    fs::remove_file(&path)?;
                }
            }
        }
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(LOG_FILE))?;
        Ok(Self {
            dir: dir.clone(),
            snapshot_every,
            blocks_since_snapshot: 0,
            incremental: false,
            compact_log: false,
            flush_every: 1,
            prev_artifact: None,
            deltas_since_full: 0,
            events_mark: 0,
            log_bytes_pending: 0,
            stats: PersistStats::default(),
            writer: Writer::Inline(LogWriter {
                dir,
                log: BufWriter::new(log),
                flush_every: 1,
                appends_since_flush: 0,
            }),
        })
    }

    /// Flush the log buffer to the OS every `n` appends (`0` = only at
    /// snapshots and drains). The default of 1 keeps the torn-tail
    /// window at a single record; larger values trade that window for
    /// fewer syscalls. See the module docs for the guarantee.
    pub fn with_flush_every(mut self, n: u64) -> Self {
        self.flush_every = n;
        if let Writer::Inline(w) = &mut self.writer {
            w.flush_every = n;
        }
        self
    }

    /// Enables incremental (delta) snapshots at cadence points, with a
    /// full rebase every [`REBASE_EVERY`]-th snapshot.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Enables log compaction: `blocks.log` is truncated after each
    /// successful snapshot publish, bounding it by one snapshot
    /// interval. See the module docs for the recovery tradeoff.
    pub fn with_compaction(mut self, on: bool) -> Self {
        self.compact_log = on;
        self
    }

    /// Moves all disk writes to a dedicated background thread behind a
    /// bounded double-buffered channel. FIFO handoff keeps the on-disk
    /// artifact sequence identical to the synchronous path;
    /// [`BlockStore::drain`] is the completion barrier.
    pub fn with_background_writer(mut self, on: bool) -> Self {
        if !on {
            return self;
        }
        let placeholder = Writer::Background {
            tx: std::sync::mpsc::sync_channel(0).0,
            handle: None,
        };
        if let Writer::Inline(mut w) = std::mem::replace(&mut self.writer, placeholder) {
            w.flush_every = self.flush_every;
            let (tx, rx) = std::sync::mpsc::sync_channel(2);
            let handle = std::thread::Builder::new()
                .name("dragoon-block-writer".into())
                .spawn(move || writer_loop(w, rx))
                .expect("spawn block-writer thread");
            self.writer = Writer::Background {
                tx,
                handle: Some(handle),
            };
        }
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters describing what was written so far. With the background
    /// writer, counts reflect enqueued work (the byte math happens on
    /// the enqueueing side); call [`BlockStore::drain`] first if the
    /// numbers must describe durable state.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }

    /// Bumps the overlapped-verification counters (they live here so the
    /// PERSIST stats line covers the whole pipeline).
    pub fn record_overlap(&mut self, hits: u64, misses: u64) {
        self.stats.overlap_hits += hits;
        self.stats.overlap_misses += misses;
    }

    /// Hands one unit of work to the writer (inline: runs it now).
    fn dispatch(&mut self, cmd: WriterCmd) -> Result<(), StoreError> {
        match &mut self.writer {
            Writer::Inline(w) => match cmd {
                WriterCmd::Frame { bytes, .. } => w.append_frame(&bytes),
                WriterCmd::Publish {
                    tmp,
                    dest,
                    bytes,
                    compact,
                    prune_below,
                    ..
                } => w.publish(&tmp, &dest, &bytes, compact, prune_below),
                WriterCmd::Drain(ack) => {
                    w.flush_all()?;
                    let _ = ack.send(());
                    Ok(())
                }
            },
            Writer::Background { tx, handle } => {
                if tx.send(cmd).is_err() {
                    // The writer died on an earlier command: join the
                    // thread to surface its error.
                    return Err(match handle.take().map(JoinHandle::join) {
                        Some(Ok(Err(e))) => e,
                        Some(Err(_)) => StoreError::Io("block writer panicked".into()),
                        _ => StoreError::Io("block writer exited".into()),
                    });
                }
                Ok(())
            }
        }
    }

    /// The drain barrier: blocks until every handed-off append and
    /// snapshot publish has hit the filesystem and the log buffer is
    /// flushed. For the synchronous writer this is just the flush. Call
    /// before reading the store's files — e.g. prior to an in-process
    /// [`Chain::recover_from`] — and at run end.
    pub fn drain(&mut self) -> Result<(), StoreError> {
        let (ack_tx, ack_rx) = std::sync::mpsc::sync_channel(1);
        self.dispatch(WriterCmd::Drain(ack_tx))?;
        if let Writer::Background { handle, .. } = &mut self.writer {
            if ack_rx.recv().is_err() {
                return Err(match handle.take().map(JoinHandle::join) {
                    Some(Ok(Err(e))) => e,
                    Some(Err(_)) => StoreError::Io("block writer panicked".into()),
                    _ => StoreError::Io("block writer exited".into()),
                });
            }
        }
        Ok(())
    }

    /// Appends one framed record (`len ‖ checksum ‖ payload`).
    fn append(&mut self, round: u64, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .map_err(|_| StoreError::Io("block record exceeds u32 length".into()))?
                .to_le_bytes(),
        );
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.stats.blocks_appended += 1;
        self.stats.log_bytes_written += frame.len() as u64;
        self.log_bytes_pending += frame.len() as u64;
        self.dispatch(WriterCmd::Frame {
            round,
            bytes: frame,
        })
    }

    /// Whether the cadence calls for a snapshot after this block.
    fn snapshot_due(&mut self) -> bool {
        if self.snapshot_every == 0 {
            return false;
        }
        self.blocks_since_snapshot += 1;
        if self.blocks_since_snapshot >= self.snapshot_every {
            self.blocks_since_snapshot = 0;
            true
        } else {
            false
        }
    }

    /// The round the next snapshot should delta against, or `None` when
    /// a full snapshot is due (incremental off, no base yet, or rebase).
    fn delta_base(&self) -> Option<u64> {
        if !self.incremental || self.deltas_since_full + 1 >= REBASE_EVERY {
            return None;
        }
        self.prev_artifact
    }

    /// The chain event-log length at the last snapshot.
    fn chain_events_mark(&self) -> usize {
        self.events_mark
    }

    fn set_chain_events_mark(&mut self, mark: usize) {
        self.events_mark = mark;
    }

    /// Publishes one snapshot artifact (checksummed, atomic, durable)
    /// and runs the compaction/prune policy.
    fn publish_artifact(
        &mut self,
        round: u64,
        payload: &[u8],
        full: bool,
    ) -> Result<(), StoreError> {
        let dest = if full {
            snapshot_path(&self.dir, round)
        } else {
            delta_path(&self.dir, round)
        };
        let tmp = dest.with_extension("tmp");
        let mut bytes = Vec::with_capacity(4 + payload.len());
        bytes.extend_from_slice(&checksum(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        self.stats.snapshot_bytes_written += bytes.len() as u64;
        if full {
            self.stats.full_snapshots += 1;
            self.deltas_since_full = 0;
        } else {
            self.stats.delta_snapshots += 1;
            self.deltas_since_full += 1;
        }
        if self.compact_log {
            self.stats.compactions += 1;
            self.stats.log_bytes_truncated += self.log_bytes_pending;
            self.log_bytes_pending = 0;
        }
        // Old artifacts are pruned only once a *full* rebase is durable
        // (a delta still needs its base chain), and only under the
        // compaction policy — without it the store keeps full history.
        let prune_below = (full && self.compact_log).then_some(round);
        self.prev_artifact = Some(round);
        self.dispatch(WriterCmd::Publish {
            round,
            tmp,
            dest,
            bytes,
            compact: self.compact_log,
            prune_below,
        })
    }
}

impl Drop for BlockStore {
    /// Best-effort implicit drain: flush the synchronous writer, or
    /// close the channel and join the background thread so every
    /// handed-off write lands before the store disappears.
    fn drop(&mut self) {
        match &mut self.writer {
            Writer::Inline(w) => {
                let _ = w.flush_all();
            }
            Writer::Background { tx, handle } => {
                // Replace the sender with a dead one so the writer's
                // receive loop ends, then join it.
                *tx = std::sync::mpsc::sync_channel(0).0;
                if let Some(h) = handle.take() {
                    let _ = h.join();
                }
            }
        }
    }
}

/// The newest full snapshot in `dir` whose checksum validates, as
/// `(round, state image bytes)`. Corrupt snapshots fall back to the
/// next older one.
fn latest_snapshot(dir: &Path) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
    let mut rounds: Vec<u64> = Vec::new();
    if !dir.exists() {
        return Ok(None);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(round) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|n| n.strip_suffix(SNAPSHOT_SUFFIX))
            .and_then(|n| n.parse::<u64>().ok())
        {
            rounds.push(round);
        }
    }
    rounds.sort_unstable();
    for round in rounds.into_iter().rev() {
        if let Some(payload) = read_checksummed(&snapshot_path(dir, round))? {
            return Ok(Some((round, payload)));
        }
        // Corrupt snapshot: fall through to the next older one.
    }
    Ok(None)
}

/// Reads one checksummed artifact file; `None` if the checksum does not
/// validate (the file is torn or bit-rotted).
fn read_checksummed(path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 4 {
        return Ok(None);
    }
    let stored = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let payload = &bytes[4..];
    if checksum(payload) == stored {
        Ok(Some(payload.to_vec()))
    } else {
        Ok(None)
    }
}

/// Every checksum-valid delta artifact in `dir`, ascending by round.
/// Invalid files are skipped — composition stops at the first missing
/// link anyway.
fn read_deltas(dir: &Path) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
    let mut rounds: Vec<u64> = Vec::new();
    if !dir.exists() {
        return Ok(Vec::new());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(round) = name
            .strip_prefix(DELTA_PREFIX)
            .and_then(|n| n.strip_suffix(SNAPSHOT_SUFFIX))
            .and_then(|n| n.parse::<u64>().ok())
        {
            rounds.push(round);
        }
    }
    rounds.sort_unstable();
    let mut out = Vec::with_capacity(rounds.len());
    for round in rounds {
        if let Some(payload) = read_checksummed(&delta_path(dir, round))? {
            out.push((round, payload));
        }
    }
    Ok(out)
}

/// One decoded block record from `blocks.log`.
struct BlockRecord<M> {
    round: u64,
    next_seq: u64,
    txs: Vec<PendingTx<M>>,
}

/// Reads every intact block record. A torn or corrupt tail — short
/// frame header, truncated payload, checksum mismatch — ends the scan:
/// everything before it is returned, the tail is discarded.
fn read_log<M: Persist>(dir: &Path) -> Result<Vec<BlockRecord<M>>, StoreError> {
    let path = dir.join(LOG_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut buf = Vec::new();
    File::open(&path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let stored = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        let body_start = pos + 8;
        if buf.len() - body_start < len {
            break; // torn final frame: discard
        }
        let payload = &buf[body_start..body_start + len];
        if checksum(payload) != stored {
            break; // corrupt tail: discard from here
        }
        let mut r = Reader::new(payload);
        let round = u64::get(&mut r)?;
        let next_seq = u64::get(&mut r)?;
        let txs: Vec<PendingTx<M>> = Vec::get(&mut r)?;
        if !r.is_empty() {
            return Err(corrupt(format!(
                "block record for round {round} has trailing bytes"
            )));
        }
        records.push(BlockRecord {
            round,
            next_seq,
            txs,
        });
        pos = body_start + len;
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// Chain persistence + recovery
// ---------------------------------------------------------------------

impl<S> Chain<S>
where
    S: StateMachine + PersistDelta,
    S::Msg: Persist,
    S::Event: Persist,
{
    /// The canonical byte image of this chain's committed state: round,
    /// sequence counter, contract, ledger, blocks and events. Two chains
    /// with equal committed state produce identical images — the
    /// crash-recovery differential compares exactly these bytes. The
    /// mempool is deliberately excluded: pending transactions are
    /// volatile by definition (a real node loses its mempool in a crash
    /// and recovers it from the network).
    pub fn state_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.round.put(&mut out);
        self.next_seq.put(&mut out);
        self.contract.put(&mut out);
        self.ledger.put(&mut out);
        self.blocks.put(&mut out);
        self.events.put(&mut out);
        out
    }

    /// Overwrites this chain's committed state from a snapshot image
    /// produced by [`Chain::state_image`]. Configuration (gas schedule,
    /// contract address, thread budget, block gas limit) is *not* in the
    /// image — the caller provides it by constructing `self` exactly as
    /// the live run's genesis did.
    fn restore_image(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut r = Reader::new(bytes);
        self.round = u64::get(&mut r)?;
        self.next_seq = u64::get(&mut r)?;
        self.contract = S::get(&mut r)?;
        self.ledger = Ledger::get(&mut r)?;
        self.blocks = Vec::get(&mut r)?;
        self.events = Vec::get(&mut r)?;
        if !r.is_empty() {
            return Err(corrupt("snapshot image has trailing bytes"));
        }
        Ok(())
    }

    /// The incremental counterpart of [`Chain::state_image`]: only what
    /// was written since the previous artifact (dirty contract and
    /// ledger working sets, the block and event suffixes), chained on
    /// `base_round`. Applying it over the state the base artifact
    /// decodes to reproduces the full image bit-identically.
    fn delta_image(&self, base_round: u64, events_mark: usize) -> Vec<u8> {
        debug_assert_eq!(
            self.blocks.len() as u64,
            self.round,
            "one block per round is the invariant the block suffix relies on"
        );
        let mut out = Vec::new();
        self.round.put(&mut out);
        self.next_seq.put(&mut out);
        base_round.put(&mut out);
        self.contract.put_delta(&mut out);
        self.ledger.put_delta(&mut out);
        self.blocks[usize::try_from(base_round)
            .unwrap_or(usize::MAX)
            .min(self.blocks.len())..]
            .to_vec()
            .put(&mut out);
        self.events[events_mark.min(self.events.len())..]
            .to_vec()
            .put(&mut out);
        out
    }

    /// Applies one delta image over the current state. Validates the
    /// chain link (`expect_base`) before mutating anything, so a broken
    /// link leaves the composed state untouched. Returns the round the
    /// delta lands on.
    fn apply_delta_image(&mut self, bytes: &[u8], expect_base: u64) -> Result<u64, StoreError> {
        let mut r = Reader::new(bytes);
        let round = u64::get(&mut r)?;
        let next_seq = u64::get(&mut r)?;
        let base = u64::get(&mut r)?;
        if base != expect_base {
            return Err(corrupt(format!(
                "delta for round {round} chains on {base}, composed state is at {expect_base}"
            )));
        }
        self.contract.apply_delta(&mut r)?;
        self.ledger.apply_delta(&mut r)?;
        let blocks: Vec<Block> = Vec::get(&mut r)?;
        self.blocks.extend(blocks);
        let events: Vec<(u64, S::Event)> = Vec::get(&mut r)?;
        self.events.extend(events);
        if !r.is_empty() {
            return Err(corrupt("delta image has trailing bytes"));
        }
        self.round = round;
        self.next_seq = next_seq;
        Ok(round)
    }

    /// Persists the most recently produced block: appends its executed
    /// transactions to `blocks.log` and, at the configured cadence,
    /// publishes a snapshot — full, or (with
    /// [`BlockStore::with_incremental`]) a delta against the previous
    /// artifact. Call once after every `advance_round*`; requires
    /// [`Chain::set_record_block_txs`] to be on so the block's landed
    /// transactions are available.
    pub fn persist_block(&mut self, store: &mut BlockStore) -> Result<(), StoreError> {
        debug_assert!(
            self.record_block_txs,
            "persistence needs record_block_txs enabled before the round runs"
        );
        let mut sp = dragoon_trace::span(dragoon_trace::SpanKind::Persist, self.round);
        let mut payload = Vec::new();
        self.round.put(&mut payload);
        self.next_seq.put(&mut payload);
        self.last_block_txs.put(&mut payload);
        sp.arg("txs", self.last_block_txs.len() as u64);
        store.append(self.round, &payload)?;
        // The deterministic persist event records only the height: the
        // append cadence is identical for the synchronous and the
        // pipelined store, so the stream stays mode-independent.
        dragoon_trace::event(
            dragoon_trace::SpanKind::Persist,
            self.round,
            &[("height", self.round)],
        );
        drop(sp);
        if store.snapshot_due() {
            let mut sp = dragoon_trace::span(dragoon_trace::SpanKind::Snapshot, self.round);
            match store.delta_base() {
                Some(base) => {
                    store.stats.dirty_units_encoded +=
                        (self.contract.dirty_units() + self.ledger.dirty_units()) as u64;
                    let image = self.delta_image(base, store.chain_events_mark());
                    sp.arg("bytes", image.len() as u64);
                    store.publish_artifact(self.round, &image, false)?;
                }
                None => {
                    let image = self.state_image();
                    sp.arg("bytes", image.len() as u64);
                    store.publish_artifact(self.round, &image, true)?;
                }
            }
            // Full-vs-delta is a store-mode detail, so the snapshot
            // event carries the height only (see the persist event).
            dragoon_trace::event(
                dragoon_trace::SpanKind::Snapshot,
                self.round,
                &[("height", self.round)],
            );
            // Reset the dirty baseline: the next delta covers only what
            // this snapshot did not.
            self.contract.mark_clean();
            self.ledger.mark_clean();
            store.set_chain_events_mark(self.events.len());
        }
        Ok(())
    }

    /// Recovers a chain from a store directory: loads the newest valid
    /// full snapshot (if any), composes any newer delta artifacts in
    /// round order, then replays the block-log tail through the serial
    /// executor. `genesis` must be constructed exactly as the live
    /// run's chain was before its first block (same deploy, same
    /// genesis mints, same configuration) — the same contract every
    /// `dragoon-net` replica starts from.
    ///
    /// The recovered chain is bit-identical (per [`Chain::state_image`])
    /// to the live chain at its last fully persisted block: replay runs
    /// the exact landed transaction sequence through the same journaled
    /// execution path, which the equivalence suites pin to the parallel
    /// production path at every thread count. A torn final record is
    /// discarded, not half-applied; a corrupt or missing delta ends the
    /// composition at the last intact link (the log tail covers the
    /// rest when compaction is off — see the module docs for the
    /// compaction tradeoff).
    pub fn recover_from(dir: impl AsRef<Path>, genesis: Self) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let mut chain = genesis;
        debug_assert!(
            chain.clone_checkpoint.is_none(),
            "recovery replays through the journal path"
        );
        let mut composed = 0u64;
        if let Some((round, image)) = latest_snapshot(dir)? {
            chain.restore_image(&image)?;
            composed = round;
        }
        for (round, bytes) in read_deltas(dir)? {
            if round <= composed {
                continue; // covered by the full snapshot or an earlier delta
            }
            match chain.apply_delta_image(&bytes, composed) {
                Ok(landed) => composed = landed,
                // Broken chain link (e.g. the delta's base was itself
                // corrupt and skipped): stop composing, fall back to
                // log replay from here.
                Err(StoreError::Corrupt(_)) => break,
                Err(e) => return Err(e),
            }
        }
        for record in read_log::<S::Msg>(dir)? {
            if record.round <= chain.round {
                continue; // covered by the snapshot/delta chain
            }
            if record.round != chain.round + 1 {
                return Err(corrupt(format!(
                    "block log gap: have round {}, next record is {}",
                    chain.round, record.round
                )));
            }
            chain.replay_block(record.txs);
            chain.next_seq = record.next_seq;
        }
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut out = Vec::new();
        42u64.put(&mut out);
        7usize.put(&mut out);
        true.put(&mut out);
        Some(9u32).put(&mut out);
        Option::<u32>::None.put(&mut out);
        vec![1u8, 2, 3].put(&mut out);
        "hello".to_string().put(&mut out);
        Address::from_byte(3).put(&mut out);
        let mut r = Reader::new(&out);
        assert_eq!(u64::get(&mut r).unwrap(), 42);
        assert_eq!(usize::get(&mut r).unwrap(), 7);
        assert!(bool::get(&mut r).unwrap());
        assert_eq!(Option::<u32>::get(&mut r).unwrap(), Some(9));
        assert_eq!(Option::<u32>::get(&mut r).unwrap(), None);
        assert_eq!(Vec::<u8>::get(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(String::get(&mut r).unwrap(), "hello");
        assert_eq!(Address::get(&mut r).unwrap(), Address::from_byte(3));
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_and_bad_tags_are_errors_not_panics() {
        let mut r = Reader::new(&[1, 2]);
        assert!(u64::get(&mut r).is_err());
        let mut r = Reader::new(&[9]);
        assert!(bool::get(&mut r).is_err());
        let mut r = Reader::new(&[7]);
        assert!(Option::<u64>::get(&mut r).is_err());
        // A corrupt vec length larger than the payload must not allocate.
        let mut bytes = Vec::new();
        u64::MAX.put(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert!(Vec::<u8>::get(&mut r).is_err());
    }

    #[test]
    fn receipt_round_trip_interns_labels() {
        let receipt = Receipt {
            seq: 7,
            sender: Address::from_byte(1),
            label: "commit",
            round: 3,
            gas_used: 21_240,
            status: TxStatus::Reverted("boom".into()),
            gas_breakdown: vec![("intrinsic", 21_240), ("sload", 800)],
        };
        let mut out = Vec::new();
        receipt.put(&mut out);
        let decoded = Receipt::get(&mut Reader::new(&out)).unwrap();
        assert_eq!(decoded, receipt);
        // Known labels come back from the intern table (same static for
        // repeated decodes — no per-decode leak).
        let again = Receipt::get(&mut Reader::new(&out)).unwrap();
        assert!(std::ptr::eq(decoded.label.as_ptr(), again.label.as_ptr()));
    }

    #[test]
    fn ledger_image_is_canonical_and_round_trips() {
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        // Insert in different orders; HashMap iteration would differ.
        for i in 0..50u8 {
            a.mint(Address::from_byte(i), u128::from(i) + 1);
        }
        for i in (0..50u8).rev() {
            b.mint(Address::from_byte(i), u128::from(i) + 1);
        }
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.put(&mut ba);
        b.put(&mut bb);
        // Events differ in order (they reflect mint order) but balances
        // serialize sorted: check balance section by decoding instead.
        let da = Ledger::get(&mut Reader::new(&ba)).unwrap();
        assert_eq!(da, a);
        let db = Ledger::get(&mut Reader::new(&bb)).unwrap();
        assert_eq!(db, b);
        assert_eq!(
            da.accounts_sorted(),
            db.accounts_sorted(),
            "canonical balance order"
        );
    }

    #[test]
    fn checksum_differs_on_flip() {
        let payload = b"round 7 payload";
        let c = checksum(payload);
        let mut flipped = payload.to_vec();
        flipped[3] ^= 0x40;
        assert_ne!(c, checksum(&flipped));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = std::env::temp_dir().join(format!("dragoon-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir, 0).unwrap();
        // Two good frames...
        for round in 1u64..=2 {
            let mut payload = Vec::new();
            round.put(&mut payload);
            0u64.put(&mut payload);
            Vec::<PendingTx<u64Msg>>::new().put(&mut payload);
            store.append(round, &payload).unwrap();
        }
        // ...then a torn third: append, then truncate mid-payload.
        let mut payload = Vec::new();
        3u64.put(&mut payload);
        0u64.put(&mut payload);
        Vec::<PendingTx<u64Msg>>::new().put(&mut payload);
        store.append(3, &payload).unwrap();
        let log_path = dir.join(LOG_FILE);
        let full = fs::read(&log_path).unwrap();
        let torn = &full[..full.len() - 5];
        fs::write(&log_path, torn).unwrap();
        let records = read_log::<u64Msg>(&dir).unwrap();
        assert_eq!(records.len(), 2, "torn frame discarded");
        assert_eq!(records.last().unwrap().round, 2);
        // Corrupting a byte inside the second frame's payload discards
        // it (and everything after): only the first frame survives.
        // Frames are 8 header + 24 payload bytes here, so frame 2's
        // payload starts at byte 40.
        let mut corrupted = fs::read(&log_path).unwrap();
        corrupted[42] ^= 0xff;
        fs::write(&log_path, &corrupted).unwrap();
        assert_eq!(read_log::<u64Msg>(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A trivial Persist message for framing tests.
    #[allow(non_camel_case_types)]
    #[derive(Clone, Debug, PartialEq)]
    struct u64Msg(u64);

    impl Persist for u64Msg {
        fn put(&self, out: &mut Vec<u8>) {
            self.0.put(out);
        }
        fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
            Ok(u64Msg(u64::get(r)?))
        }
    }
}
