//! Durable chain state: an append-only on-disk block store with
//! periodic full-state snapshots, and bit-identical crash recovery.
//!
//! The simulator historically lived and died inside one process: every
//! block, receipt and contract instance existed only in memory, which
//! caps a market at whatever one process lifetime can settle. This
//! module backs a [`Chain`] with two artifacts in a store directory:
//!
//! * **`blocks.log`** — one framed record per produced block, holding
//!   the block's *executed transactions* (sender, seq, message), in
//!   receipt order. Transactions, not receipts: replaying them through
//!   the serial executor regenerates receipts, events, ledger and
//!   contract state bit-identically (the same property the
//!   `dragoon-net` convergence differential proves for replicas fed by
//!   the sequencer's block feed).
//! * **`snapshot-<round>.bin`** — a periodic full encoding of the chain
//!   image (round, sequence counter, contract, ledger, blocks, events)
//!   so recovery replays only the block tail after the newest valid
//!   snapshot instead of the whole history.
//!
//! Every frame and snapshot carries a checksum. Recovery
//! ([`Chain::recover_from`]) walks the newest snapshot plus the log
//! tail; a torn final record — a crash mid-append — is **detected and
//! discarded**, never half-applied: the recovered chain lands exactly
//! on the last fully persisted block. Corrupt snapshots fall back to
//! the next older one, down to genesis.
//!
//! Serialization is the hand-rolled [`Persist`] codec (the vendored
//! serde compat is derive-only): deterministic byte layout, so two
//! identical chain states — live and recovered, or produced at
//! different `DRAGOON_THREADS` — encode to identical bytes. That byte
//! string is the crash-recovery differential's witness.

use crate::chain::{Block, Chain, Receipt, StateMachine, TxStatus};
use crate::gas::Gas;
use crate::mempool::PendingTx;
use dragoon_ledger::{Address, Ledger, LedgerEvent};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// Stored bytes failed structural validation (bad tag, short
    /// payload, checksum mismatch in a position recovery cannot skip).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(e) => write!(f, "corrupt store: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt(what.into())
}

// ---------------------------------------------------------------------
// The Persist codec
// ---------------------------------------------------------------------

/// A byte cursor for decoding [`Persist`] values.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`, starting at the first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "short read: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes a fixed-size byte array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }
}

/// Deterministic binary serialization for durable chain state.
///
/// The contract: `put` followed by `get` round-trips the value, and two
/// equal values produce identical bytes (collections are emitted in a
/// canonical order). Defined here — the lowest crate that sees chain,
/// ledger and (via downstream impls) contract state — so every layer
/// implements it for its own types without orphan-rule contortions.
pub trait Persist: Sized {
    /// Appends this value's canonical encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one value from the cursor.
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError>;
}

macro_rules! persist_int {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
                Ok(<$t>::from_le_bytes(r.array()?))
            }
        }
    )*};
}

persist_int!(u8, u32, u64, u128);

impl Persist for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match u8::get(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("bad bool byte {b}"))),
        }
    }
}

impl Persist for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        usize::try_from(u64::get(r)?).map_err(|_| corrupt("usize overflow"))
    }
}

macro_rules! persist_array {
    ($($n:literal),*) => {$(
        impl Persist for [u8; $n] {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(self);
            }
            fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
                r.array()
            }
        }
    )*};
}

persist_array!(20, 32, 64, 128);

impl Persist for String {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let len = usize::get(r)?;
        String::from_utf8(r.take(len)?.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match u8::get(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            b => Err(corrupt(format!("bad option tag {b}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        self.len().put(out);
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let len = usize::get(r)?;
        // Guard against absurd lengths from corrupt bytes before
        // reserving memory: each element needs at least one byte.
        if len > r.remaining() {
            return Err(corrupt(format!("vec length {len} exceeds payload")));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::get(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl Persist for Address {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Address(r.array()?))
    }
}

impl Persist for LedgerEvent {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            LedgerEvent::Minted { account, amount } => {
                out.push(0);
                account.put(out);
                amount.put(out);
            }
            LedgerEvent::Frozen {
                contract,
                party,
                amount,
            } => {
                out.push(1);
                contract.put(out);
                party.put(out);
                amount.put(out);
            }
            LedgerEvent::NoFund { party, amount } => {
                out.push(2);
                party.put(out);
                amount.put(out);
            }
            LedgerEvent::Paid {
                contract,
                party,
                amount,
            } => {
                out.push(3);
                contract.put(out);
                party.put(out);
                amount.put(out);
            }
            LedgerEvent::Transferred { from, to, amount } => {
                out.push(4);
                from.put(out);
                to.put(out);
                amount.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => LedgerEvent::Minted {
                account: Address::get(r)?,
                amount: u128::get(r)?,
            },
            1 => LedgerEvent::Frozen {
                contract: Address::get(r)?,
                party: Address::get(r)?,
                amount: u128::get(r)?,
            },
            2 => LedgerEvent::NoFund {
                party: Address::get(r)?,
                amount: u128::get(r)?,
            },
            3 => LedgerEvent::Paid {
                contract: Address::get(r)?,
                party: Address::get(r)?,
                amount: u128::get(r)?,
            },
            4 => LedgerEvent::Transferred {
                from: Address::get(r)?,
                to: Address::get(r)?,
                amount: u128::get(r)?,
            },
            t => return Err(corrupt(format!("bad ledger event tag {t}"))),
        })
    }
}

impl Persist for Ledger {
    /// Balances serialize address-sorted (the internal map is hashed, so
    /// canonical order is what makes equal ledgers byte-equal).
    fn put(&self, out: &mut Vec<u8>) {
        self.accounts_sorted().put(out);
        self.events().to_vec().put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let balances: Vec<(Address, u128)> = Vec::get(r)?;
        let events: Vec<LedgerEvent> = Vec::get(r)?;
        Ok(Ledger::from_parts(balances, events))
    }
}

/// Re-interns a decoded label into the `&'static str` receipts carry.
/// Every label the system charges under is in the table; an unknown one
/// (a future label decoded by an older binary's table) is leaked once —
/// labels are a tiny closed set, so this never accumulates.
fn intern_label(label: String) -> &'static str {
    const KNOWN: &[&str] = &[
        "publish",
        "commit",
        "reveal",
        "golden",
        "outrange",
        "evaluate",
        "finalize",
        "cancel",
        "intrinsic",
        "log",
        "sstore",
        "sload",
        "create",
        "freeze",
        "pay",
        "keccak",
        "ec_add",
        "ec_mul",
        "overhead",
    ];
    for k in KNOWN {
        if *k == label {
            return k;
        }
    }
    Box::leak(label.into_boxed_str())
}

impl Persist for TxStatus {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            TxStatus::Ok => out.push(0),
            TxStatus::Reverted(msg) => {
                out.push(1);
                msg.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match u8::get(r)? {
            0 => Ok(TxStatus::Ok),
            1 => Ok(TxStatus::Reverted(String::get(r)?)),
            t => Err(corrupt(format!("bad tx status tag {t}"))),
        }
    }
}

impl Persist for Receipt {
    fn put(&self, out: &mut Vec<u8>) {
        self.seq.put(out);
        self.sender.put(out);
        self.label.to_string().put(out);
        self.round.put(out);
        self.gas_used.put(out);
        self.status.put(out);
        self.gas_breakdown.len().put(out);
        for (label, gas) in &self.gas_breakdown {
            label.to_string().put(out);
            gas.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let seq = u64::get(r)?;
        let sender = Address::get(r)?;
        let label = intern_label(String::get(r)?);
        let round = u64::get(r)?;
        let gas_used = Gas::get(r)?;
        let status = TxStatus::get(r)?;
        let n = usize::get(r)?;
        let mut gas_breakdown = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let label = intern_label(String::get(r)?);
            gas_breakdown.push((label, Gas::get(r)?));
        }
        Ok(Receipt {
            seq,
            sender,
            label,
            round,
            gas_used,
            status,
            gas_breakdown,
        })
    }
}

impl Persist for Block {
    fn put(&self, out: &mut Vec<u8>) {
        self.round.put(out);
        self.receipts.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Block {
            round: u64::get(r)?,
            receipts: Vec::get(r)?,
        })
    }
}

impl<M: Persist> Persist for PendingTx<M> {
    fn put(&self, out: &mut Vec<u8>) {
        self.sender.put(out);
        self.seq.put(out);
        self.msg.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(PendingTx {
            sender: Address::get(r)?,
            seq: u64::get(r)?,
            msg: M::get(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// On-disk layout
// ---------------------------------------------------------------------

/// FNV-1a, the frame checksum. Not cryptographic — it guards against
/// torn writes and bit rot, not adversaries (the store directory is the
/// node's own trusted disk).
fn checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

const LOG_FILE: &str = "blocks.log";
const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".bin";

fn snapshot_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("{SNAPSHOT_PREFIX}{round:020}{SNAPSHOT_SUFFIX}"))
}

/// The writing half of the persistence layer: an open append handle on
/// `blocks.log` plus the snapshot cadence counter.
pub struct BlockStore {
    dir: PathBuf,
    log: File,
    /// Write a full snapshot every this many persisted blocks
    /// (`0` = never snapshot; recovery replays the whole log).
    snapshot_every: u64,
    blocks_since_snapshot: u64,
}

impl fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockStore")
            .field("dir", &self.dir)
            .field("snapshot_every", &self.snapshot_every)
            .finish()
    }
}

impl BlockStore {
    /// Creates (or wipes) a store directory for a fresh run: a new empty
    /// `blocks.log`, any previous run's snapshots removed.
    pub fn create(dir: impl AsRef<Path>, snapshot_every: u64) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if name.starts_with(SNAPSHOT_PREFIX) || name == LOG_FILE {
                    fs::remove_file(&path)?;
                }
            }
        }
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(LOG_FILE))?;
        Ok(Self {
            dir,
            log,
            snapshot_every,
            blocks_since_snapshot: 0,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one framed record (`len ‖ checksum ‖ payload`) and
    /// flushes, so a crash can tear at most the final frame.
    fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .map_err(|_| StoreError::Io("block record exceeds u32 length".into()))?
                .to_le_bytes(),
        );
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.log.write_all(&frame)?;
        self.log.flush()?;
        Ok(())
    }

    /// Whether the cadence calls for a snapshot after this block.
    fn snapshot_due(&mut self) -> bool {
        if self.snapshot_every == 0 {
            return false;
        }
        self.blocks_since_snapshot += 1;
        if self.blocks_since_snapshot >= self.snapshot_every {
            self.blocks_since_snapshot = 0;
            true
        } else {
            false
        }
    }

    /// Writes a checksummed full-state snapshot for `round`, atomically
    /// (write to a temp name, then rename).
    fn write_snapshot(&self, round: u64, payload: &[u8]) -> Result<(), StoreError> {
        let final_path = snapshot_path(&self.dir, round);
        let tmp_path = final_path.with_extension("tmp");
        let mut bytes = Vec::with_capacity(4 + payload.len());
        bytes.extend_from_slice(&checksum(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        fs::write(&tmp_path, &bytes)?;
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }
}

/// The newest snapshot in `dir` whose checksum validates, as raw state
/// image bytes. Corrupt snapshots fall back to the next older one.
fn latest_snapshot(dir: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    let mut rounds: Vec<u64> = Vec::new();
    if !dir.exists() {
        return Ok(None);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(round) = name
            .strip_prefix(SNAPSHOT_PREFIX)
            .and_then(|n| n.strip_suffix(SNAPSHOT_SUFFIX))
            .and_then(|n| n.parse::<u64>().ok())
        {
            rounds.push(round);
        }
    }
    rounds.sort_unstable();
    for round in rounds.into_iter().rev() {
        let bytes = fs::read(snapshot_path(dir, round))?;
        if bytes.len() < 4 {
            continue;
        }
        let stored = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let payload = &bytes[4..];
        if checksum(payload) == stored {
            return Ok(Some(payload.to_vec()));
        }
        // Corrupt snapshot: fall through to the next older one.
    }
    Ok(None)
}

/// One decoded block record from `blocks.log`.
struct BlockRecord<M> {
    round: u64,
    next_seq: u64,
    txs: Vec<PendingTx<M>>,
}

/// Reads every intact block record. A torn or corrupt tail — short
/// frame header, truncated payload, checksum mismatch — ends the scan:
/// everything before it is returned, the tail is discarded.
fn read_log<M: Persist>(dir: &Path) -> Result<Vec<BlockRecord<M>>, StoreError> {
    let path = dir.join(LOG_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut buf = Vec::new();
    File::open(&path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]) as usize;
        let stored = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        let body_start = pos + 8;
        if buf.len() - body_start < len {
            break; // torn final frame: discard
        }
        let payload = &buf[body_start..body_start + len];
        if checksum(payload) != stored {
            break; // corrupt tail: discard from here
        }
        let mut r = Reader::new(payload);
        let round = u64::get(&mut r)?;
        let next_seq = u64::get(&mut r)?;
        let txs: Vec<PendingTx<M>> = Vec::get(&mut r)?;
        if !r.is_empty() {
            return Err(corrupt(format!(
                "block record for round {round} has trailing bytes"
            )));
        }
        records.push(BlockRecord {
            round,
            next_seq,
            txs,
        });
        pos = body_start + len;
    }
    Ok(records)
}

// ---------------------------------------------------------------------
// Chain persistence + recovery
// ---------------------------------------------------------------------

impl<S> Chain<S>
where
    S: StateMachine + Persist,
    S::Msg: Persist,
    S::Event: Persist,
{
    /// The canonical byte image of this chain's committed state: round,
    /// sequence counter, contract, ledger, blocks and events. Two chains
    /// with equal committed state produce identical images — the
    /// crash-recovery differential compares exactly these bytes. The
    /// mempool is deliberately excluded: pending transactions are
    /// volatile by definition (a real node loses its mempool in a crash
    /// and recovers it from the network).
    pub fn state_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.round.put(&mut out);
        self.next_seq.put(&mut out);
        self.contract.put(&mut out);
        self.ledger.put(&mut out);
        self.blocks.put(&mut out);
        self.events.put(&mut out);
        out
    }

    /// Overwrites this chain's committed state from a snapshot image
    /// produced by [`Chain::state_image`]. Configuration (gas schedule,
    /// contract address, thread budget, block gas limit) is *not* in the
    /// image — the caller provides it by constructing `self` exactly as
    /// the live run's genesis did.
    fn restore_image(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut r = Reader::new(bytes);
        self.round = u64::get(&mut r)?;
        self.next_seq = u64::get(&mut r)?;
        self.contract = S::get(&mut r)?;
        self.ledger = Ledger::get(&mut r)?;
        self.blocks = Vec::get(&mut r)?;
        self.events = Vec::get(&mut r)?;
        if !r.is_empty() {
            return Err(corrupt("snapshot image has trailing bytes"));
        }
        Ok(())
    }

    /// Persists the most recently produced block: appends its executed
    /// transactions to `blocks.log` and, at the configured cadence,
    /// writes a full-state snapshot. Call once after every
    /// `advance_round*`; requires [`Chain::set_record_block_txs`] to be
    /// on so the block's landed transactions are available.
    pub fn persist_block(&mut self, store: &mut BlockStore) -> Result<(), StoreError> {
        debug_assert!(
            self.record_block_txs,
            "persistence needs record_block_txs enabled before the round runs"
        );
        let mut payload = Vec::new();
        self.round.put(&mut payload);
        self.next_seq.put(&mut payload);
        self.last_block_txs.put(&mut payload);
        store.append(&payload)?;
        if store.snapshot_due() {
            store.write_snapshot(self.round, &self.state_image())?;
        }
        Ok(())
    }

    /// Recovers a chain from a store directory: loads the newest valid
    /// snapshot (if any), then replays the block-log tail through the
    /// serial executor. `genesis` must be constructed exactly as the
    /// live run's chain was before its first block (same deploy, same
    /// genesis mints, same configuration) — the same contract every
    /// `dragoon-net` replica starts from.
    ///
    /// The recovered chain is bit-identical (per [`Chain::state_image`])
    /// to the live chain at its last fully persisted block: replay runs
    /// the exact landed transaction sequence through the same journaled
    /// execution path, which the equivalence suites pin to the parallel
    /// production path at every thread count. A torn final record is
    /// discarded, not half-applied.
    pub fn recover_from(dir: impl AsRef<Path>, genesis: Self) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let mut chain = genesis;
        debug_assert!(
            chain.clone_checkpoint.is_none(),
            "recovery replays through the journal path"
        );
        if let Some(image) = latest_snapshot(dir)? {
            chain.restore_image(&image)?;
        }
        for record in read_log::<S::Msg>(dir)? {
            if record.round <= chain.round {
                continue; // covered by the snapshot
            }
            if record.round != chain.round + 1 {
                return Err(corrupt(format!(
                    "block log gap: have round {}, next record is {}",
                    chain.round, record.round
                )));
            }
            chain.replay_block(record.txs);
            chain.next_seq = record.next_seq;
        }
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut out = Vec::new();
        42u64.put(&mut out);
        7usize.put(&mut out);
        true.put(&mut out);
        Some(9u32).put(&mut out);
        Option::<u32>::None.put(&mut out);
        vec![1u8, 2, 3].put(&mut out);
        "hello".to_string().put(&mut out);
        Address::from_byte(3).put(&mut out);
        let mut r = Reader::new(&out);
        assert_eq!(u64::get(&mut r).unwrap(), 42);
        assert_eq!(usize::get(&mut r).unwrap(), 7);
        assert!(bool::get(&mut r).unwrap());
        assert_eq!(Option::<u32>::get(&mut r).unwrap(), Some(9));
        assert_eq!(Option::<u32>::get(&mut r).unwrap(), None);
        assert_eq!(Vec::<u8>::get(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(String::get(&mut r).unwrap(), "hello");
        assert_eq!(Address::get(&mut r).unwrap(), Address::from_byte(3));
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_and_bad_tags_are_errors_not_panics() {
        let mut r = Reader::new(&[1, 2]);
        assert!(u64::get(&mut r).is_err());
        let mut r = Reader::new(&[9]);
        assert!(bool::get(&mut r).is_err());
        let mut r = Reader::new(&[7]);
        assert!(Option::<u64>::get(&mut r).is_err());
        // A corrupt vec length larger than the payload must not allocate.
        let mut bytes = Vec::new();
        u64::MAX.put(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert!(Vec::<u8>::get(&mut r).is_err());
    }

    #[test]
    fn receipt_round_trip_interns_labels() {
        let receipt = Receipt {
            seq: 7,
            sender: Address::from_byte(1),
            label: "commit",
            round: 3,
            gas_used: 21_240,
            status: TxStatus::Reverted("boom".into()),
            gas_breakdown: vec![("intrinsic", 21_240), ("sload", 800)],
        };
        let mut out = Vec::new();
        receipt.put(&mut out);
        let decoded = Receipt::get(&mut Reader::new(&out)).unwrap();
        assert_eq!(decoded, receipt);
        // Known labels come back from the intern table (same static for
        // repeated decodes — no per-decode leak).
        let again = Receipt::get(&mut Reader::new(&out)).unwrap();
        assert!(std::ptr::eq(decoded.label.as_ptr(), again.label.as_ptr()));
    }

    #[test]
    fn ledger_image_is_canonical_and_round_trips() {
        let mut a = Ledger::new();
        let mut b = Ledger::new();
        // Insert in different orders; HashMap iteration would differ.
        for i in 0..50u8 {
            a.mint(Address::from_byte(i), u128::from(i) + 1);
        }
        for i in (0..50u8).rev() {
            b.mint(Address::from_byte(i), u128::from(i) + 1);
        }
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.put(&mut ba);
        b.put(&mut bb);
        // Events differ in order (they reflect mint order) but balances
        // serialize sorted: check balance section by decoding instead.
        let da = Ledger::get(&mut Reader::new(&ba)).unwrap();
        assert_eq!(da, a);
        let db = Ledger::get(&mut Reader::new(&bb)).unwrap();
        assert_eq!(db, b);
        assert_eq!(
            da.accounts_sorted(),
            db.accounts_sorted(),
            "canonical balance order"
        );
    }

    #[test]
    fn checksum_differs_on_flip() {
        let payload = b"round 7 payload";
        let c = checksum(payload);
        let mut flipped = payload.to_vec();
        flipped[3] ^= 0x40;
        assert_ne!(c, checksum(&flipped));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = std::env::temp_dir().join(format!("dragoon-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = BlockStore::create(&dir, 0).unwrap();
        // Two good frames...
        for round in 1u64..=2 {
            let mut payload = Vec::new();
            round.put(&mut payload);
            0u64.put(&mut payload);
            Vec::<PendingTx<u64Msg>>::new().put(&mut payload);
            store.append(&payload).unwrap();
        }
        // ...then a torn third: append, then truncate mid-payload.
        let mut payload = Vec::new();
        3u64.put(&mut payload);
        0u64.put(&mut payload);
        Vec::<PendingTx<u64Msg>>::new().put(&mut payload);
        store.append(&payload).unwrap();
        let log_path = dir.join(LOG_FILE);
        let full = fs::read(&log_path).unwrap();
        let torn = &full[..full.len() - 5];
        fs::write(&log_path, torn).unwrap();
        let records = read_log::<u64Msg>(&dir).unwrap();
        assert_eq!(records.len(), 2, "torn frame discarded");
        assert_eq!(records.last().unwrap().round, 2);
        // Corrupting a byte inside the second frame's payload discards
        // it (and everything after): only the first frame survives.
        // Frames are 8 header + 24 payload bytes here, so frame 2's
        // payload starts at byte 40.
        let mut corrupted = fs::read(&log_path).unwrap();
        corrupted[42] ^= 0xff;
        fs::write(&log_path, &corrupted).unwrap();
        assert_eq!(read_log::<u64Msg>(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A trivial Persist message for framing tests.
    #[allow(non_camel_case_types)]
    #[derive(Clone, Debug, PartialEq)]
    struct u64Msg(u64);

    impl Persist for u64Msg {
        fn put(&self, out: &mut Vec<u8>) {
            self.0.put(out);
        }
        fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
            Ok(u64Msg(u64::get(r)?))
        }
    }
}
