//! Minimal in-tree `criterion` stand-in (see `crates/compat/README.md`):
//! enough surface for `criterion_group!`/`criterion_main!` benches to
//! compile and produce simple wall-clock numbers. No statistics, HTML
//! reports or CLI filtering — each `bench_function` is timed with a
//! fixed warm-up and a fixed measurement batch.

use std::time::{Duration, Instant};

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group (prefixes ids; `sample_size` is
    /// accepted and ignored).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters
        };
        println!(
            "{id:<40} {:>12} /iter ({} iters)",
            fmt_ns(per_iter),
            b.iters
        );
        self
    }
}

/// A named group of benchmarks (ids are prefixed with the group name).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simple harness self-sizes.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self._criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing handle.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times repeated runs of `f`: a short warm-up pass sizes the
    /// measurement batch so the total stays around a few milliseconds
    /// for fast operations without starving slow ones.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = t1.elapsed();
        self.iters = iters;
    }
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Mirrors criterion's flat `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
