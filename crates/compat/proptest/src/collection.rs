//! Collection strategies.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Sizes a [`vec`] strategy: an exact length or a length range.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn draw_len(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn draw_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn draw_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn draw_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// A strategy producing vectors whose elements come from `element` and
/// whose length comes from `size`.
pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.draw_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
