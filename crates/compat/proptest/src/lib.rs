//! Minimal in-tree `proptest` stand-in (see `crates/compat/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range / [`any`] / [`Just`] / tuple strategies,
//! [`Strategy::prop_flat_map`] / [`Strategy::prop_map`],
//! [`collection::vec`] and [`sample::subsequence`]. Unlike upstream
//! there is no shrinking and no failure persistence — cases are sampled
//! from a deterministic per-test seed (an FNV hash of the test name), so
//! failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::Rng;

pub mod collection;
pub mod sample;

/// What `proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps each drawn value into a *strategy* and draws from it — the
    /// dependent-generation combinator.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Maps each drawn value through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.base.sample(rng))
    }
}

/// The constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0..64usize);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Deterministic per-test seed: FNV-1a over the test's identifying name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The proptest entry macro: expands each `#[test] fn name(pat in
/// strategy, ...) { body }` into a plain test looping over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    // Mirror upstream: the body runs in a closure
                    // returning Result, so `return Ok(())` works as an
                    // early case exit.
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    __outcome.expect("property returned Err");
                }
            }
        )*
    };
}

/// Assertion macros: without shrinking these are plain panics, which is
/// what reproducible seeded failure needs.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
