//! Sampling strategies over fixed collections.

use crate::collection::IntoSizeRange;
use crate::Strategy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A strategy drawing an order-preserving random subsequence of `values`
/// whose length is drawn from `size` (clamped to the available length).
pub fn subsequence<T: Clone, Z: IntoSizeRange>(values: Vec<T>, size: Z) -> Subsequence<T, Z> {
    Subsequence { values, size }
}

/// See [`subsequence`].
pub struct Subsequence<T, Z> {
    values: Vec<T>,
    size: Z,
}

impl<T: Clone, Z: IntoSizeRange> Strategy for Subsequence<T, Z> {
    type Value = Vec<T>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.draw_len(rng).min(self.values.len());
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.shuffle(rng);
        let mut picked: Vec<usize> = idx.into_iter().take(len).collect();
        picked.sort_unstable();
        picked.into_iter().map(|i| self.values[i].clone()).collect()
    }
}
