//! Minimal in-tree implementation of the `rand` 0.8 API subset this
//! workspace uses (the build environment has no registry access; see
//! `crates/compat/README.md`).
//!
//! The core generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically strong enough for
//! simulation and test purposes. It is *not* a CSPRNG and it is *not*
//! stream-compatible with upstream `rand`; everything in this repository
//! seeds explicitly and only relies on in-repo determinism.

pub mod rngs;
pub mod seq;

/// The object-safe core RNG interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the `Standard` distribution of upstream rand, flattened).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::sample(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for core::ops::Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        self.start + u128::sample(rng) % span
    }
}

impl SampleRange<u128> for core::ops::RangeInclusive<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        if lo == 0 && hi == u128::MAX {
            return u128::sample(rng);
        }
        lo + u128::sample(rng) % (hi - lo + 1)
    }
}

/// The user-facing extension trait (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from an integer range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }

    /// Fills a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;
    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
