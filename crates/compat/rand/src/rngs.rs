//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Seeded from a `u64` via SplitMix64 (the construction recommended by
/// the xoshiro authors), or from 32 raw seed bytes.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // The all-zero state is the one fixed point of xoshiro.
            s = [
                0x1,
                0x9e3779b97f4a7c15,
                0x2545f4914f6cdd1d,
                0xdeadbeefcafef00d,
            ];
        }
        Self { s }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::from_state(s)
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self::from_state([
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ])
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}
