//! Minimal in-tree `serde` stand-in (see `crates/compat/README.md`).
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as
//! declaration-site markers (the derives are no-ops) plus a handful of
//! *manual* byte-oriented impls in `dragoon-crypto`. This crate provides
//! just enough of the serde data model — `Serialize` / `Deserialize`,
//! a bytes-only `Serializer` / `Deserializer` pair and `de::Error` — for
//! those manual impls to compile unchanged against the real serde later.

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side machinery.
pub mod de {
    use std::fmt::Display;

    /// The error contract deserializers expose (`Error::custom`).
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A type that can serialize itself through a [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can deserialize itself through a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The (bytes-only) serializer contract.
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Error type.
    type Error;

    /// Serializes a byte string.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// The (bytes-only) deserializer contract.
pub trait Deserializer<'de>: Sized {
    /// Error type, constructible from custom messages.
    type Error: de::Error;

    /// Produces an owned byte buffer.
    fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_byte_buf()
    }
}
