//! No-op `Serialize`/`Deserialize` derive macros (see
//! `crates/compat/README.md`): the workspace uses the derives only as
//! declaration-site markers, so they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
