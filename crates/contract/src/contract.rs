//! The HIT contract functionality `C_hit` (Fig 4) as a gas-metered state
//! machine.
//!
//! Phases:
//!
//! 1. **Publish** — the requester announces `(N, B, K, range, Θ, h,
//!    comm_gs)` and freezes `B` on the ledger.
//! 2. **Commit** — workers submit `Commit(c_j, key_j)`; duplicate
//!    commitments and duplicate workers are rejected (the copy-and-paste
//!    defence); when `K` distinct commitments arrive the contract moves
//!    to the reveal phase.
//! 3. **Reveal** — committed workers open their commitments with the
//!    actual ciphertext vectors; non-openers are recorded as `⊥`.
//! 4. **Evaluate** — the requester opens the gold standards and may
//!    reject individual submissions with PoQoEA (`evaluate`) or
//!    out-of-range proofs (`outrange`); at the evaluation deadline every
//!    revealed, un-rejected worker is paid `B/K` by default and leftover
//!    escrow returns to the requester. *Requester silence can only pay
//!    workers* — the fairness backstop.
//!
//! Gas model: every storage write, hash, precompile call (EC mul/add for
//! proof verification) and event log a deployed EVM contract would pay
//! for is charged to the transaction's meter, per the schedule in
//! `dragoon-chain`. The contract stores only 256-bit digests of the
//! ciphertexts (one per question — the paper's on-chain optimization) and
//! "emits" the ciphertexts themselves as event-log data.

use crate::msg::{HitMessage, PublishParams};
use dragoon_chain::{ExecEnv, Journaled, StateJournal, StateMachine};
use dragoon_core::poqoea::{self, QualityProof};
use dragoon_core::task::{EncryptedAnswer, GoldenStandards};
use dragoon_crypto::commitment::Commitment;
use dragoon_crypto::keccak::keccak256;
use dragoon_crypto::vpke::{self, DecryptionProof, DecryptionStatement, PlaintextClaim};
use dragoon_crypto::{Fr, G1Projective};
use dragoon_ledger::Address;
use std::collections::BTreeMap;
use std::fmt;

/// Runtime bytecode size of the task contract, used for deployment gas.
/// Calibrated against the paper's "publish task ≈ 1 293k gas" row: a
/// Solidity contract implementing Fig 4 with BN-254 precompile calls
/// compiles to roughly 5 kB of runtime code.
pub const HIT_CONTRACT_CODE_LEN: usize = 5_200;

/// The phase of the contract state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Awaiting the requester's publish message.
    Setup,
    /// Phase 2-a: collecting commitments.
    Commit,
    /// Phase 2-b: collecting reveals (closes at `reveal_deadline`).
    Reveal,
    /// Phase 3: evaluation (closes at `evaluate_deadline`).
    Evaluate,
    /// Settled; no further transitions.
    Closed,
}

/// Why a worker was not paid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// An answer item was proven out of range.
    OutOfRange {
        /// The offending question index.
        index: usize,
    },
    /// PoQoEA proved quality below the threshold.
    LowQuality {
        /// The proven quality upper bound.
        chi: u64,
    },
    /// The worker committed but never revealed.
    NoReveal,
}

/// Per-worker settlement outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Settlement {
    /// Paid `B/K`.
    Paid,
    /// Rejected without payment.
    Rejected(RejectReason),
}

/// One worker's finalized settlement, in the order settlements landed —
/// the per-worker outcome feed cross-HIT layers (reputation books,
/// payout analytics) consume without replaying the event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SettlementReceipt {
    /// The settled worker.
    pub worker: Address,
    /// The outcome.
    pub outcome: Settlement,
    /// Coins paid to the worker (`B/K` when paid, zero when rejected).
    pub amount: u128,
}

/// Events emitted by the contract (the transparent log all entities see).
#[derive(Clone, Debug, PartialEq)]
pub enum HitEvent {
    /// `(published, R, N, B, K, range, Θ, h, comm_gs)`.
    Published {
        /// The requester.
        requester: Address,
        /// Number of questions.
        n: usize,
        /// Budget.
        budget: u128,
        /// Worker quota.
        k: usize,
    },
    /// A commitment was accepted.
    CommitAccepted {
        /// The committing worker.
        worker: Address,
        /// How many commitments have been accepted so far.
        count: usize,
    },
    /// `(committed, comms)`: the K-th commitment arrived; reveal opens.
    CommitClosed,
    /// A worker opened its commitment; the ciphertexts are event-log
    /// data (on-chain state holds only their digests).
    Revealed {
        /// The revealing worker.
        worker: Address,
    },
    /// `(revealed, answers)`: the reveal window closed.
    RevealClosed {
        /// Workers that revealed.
        revealed: usize,
        /// Workers recorded as `⊥`.
        defaulted: usize,
    },
    /// `(golden, G, Gs)` was opened and matched `comm_gs` — the public
    /// auditability of gold standards.
    GoldenOpened,
    /// `(outranged, W_j, a_{i,j})`: an out-of-range item was proven.
    OutRanged {
        /// The rejected worker.
        worker: Address,
        /// The offending question index.
        index: usize,
    },
    /// `(evaluated, W_j, …)`: a PoQoEA rejection was verified.
    Evaluated {
        /// The rejected worker.
        worker: Address,
        /// The proven quality upper bound.
        chi: u64,
    },
    /// A worker was paid `B/K`.
    Paid {
        /// The paid worker.
        worker: Address,
        /// The amount.
        amount: u128,
    },
    /// Leftover escrow returned to the requester.
    Refunded {
        /// The requester.
        requester: Address,
        /// The amount returned.
        amount: u128,
    },
    /// The unfilled task was cancelled and the budget refunded.
    Cancelled {
        /// The refunded budget.
        refunded: u128,
    },
    /// The task settled.
    Closed,
}

/// Errors that revert a transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum HitError {
    /// The message is not valid in the current phase.
    WrongPhase {
        /// The phase the contract is in.
        current: Phase,
    },
    /// Only the requester may send this message.
    NotRequester,
    /// The worker already committed.
    DuplicateWorker,
    /// This exact commitment was already submitted (copy-and-paste
    /// defence).
    DuplicateCommitment,
    /// The commitment quota `K` is already met.
    TaskFull,
    /// The sender never committed.
    UnknownWorker,
    /// The reveal does not open the stored commitment.
    BadOpening,
    /// The worker already revealed.
    AlreadyRevealed,
    /// The ciphertext vector length differs from `N`.
    WrongCiphertextCount {
        /// Expected `N`.
        expected: usize,
        /// Got.
        got: usize,
    },
    /// The golden opening does not match `comm_gs` or is malformed.
    BadGolden(String),
    /// Gold standards must be opened before evaluate/outrange.
    GoldenNotOpened,
    /// The worker is already settled (paid or rejected).
    AlreadySettled,
    /// The referenced worker never revealed.
    NothingToEvaluate,
    /// The claimed quality is not below the threshold — nothing to
    /// reject.
    ChiNotBelowTheta {
        /// The claimed χ.
        chi: u64,
        /// The threshold Θ.
        theta: u64,
    },
    /// The PoQoEA proof failed; per Fig 4 the worker is paid instead
    /// (handled internally), but a malformed message still reverts.
    InvalidQualityProof(String),
    /// The out-of-range claim failed verification.
    InvalidOutRange(String),
    /// Freezing the budget failed (insufficient funds).
    NoFund,
    /// The publish parameters are malformed.
    BadParams(String),
    /// Settlement attempted before the evaluation deadline.
    TooEarly {
        /// The deadline round.
        deadline: u64,
    },
    /// Cancellation attempted while the task is not cancellable.
    NotCancellable,
}

impl fmt::Display for HitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitError::WrongPhase { current } => write!(f, "wrong phase ({current:?})"),
            HitError::NotRequester => write!(f, "sender is not the requester"),
            HitError::DuplicateWorker => write!(f, "worker already committed"),
            HitError::DuplicateCommitment => write!(f, "duplicate commitment"),
            HitError::TaskFull => write!(f, "commitment quota already met"),
            HitError::UnknownWorker => write!(f, "sender never committed"),
            HitError::BadOpening => write!(f, "commitment opening failed"),
            HitError::AlreadyRevealed => write!(f, "worker already revealed"),
            HitError::WrongCiphertextCount { expected, got } => {
                write!(f, "expected {expected} ciphertexts, got {got}")
            }
            HitError::BadGolden(s) => write!(f, "bad golden opening: {s}"),
            HitError::GoldenNotOpened => write!(f, "gold standards not opened"),
            HitError::AlreadySettled => write!(f, "worker already settled"),
            HitError::NothingToEvaluate => write!(f, "worker never revealed"),
            HitError::ChiNotBelowTheta { chi, theta } => {
                write!(f, "chi {chi} is not below theta {theta}")
            }
            HitError::InvalidQualityProof(s) => write!(f, "invalid PoQoEA proof: {s}"),
            HitError::InvalidOutRange(s) => write!(f, "invalid outrange proof: {s}"),
            HitError::NoFund => write!(f, "insufficient funds to freeze budget"),
            HitError::BadParams(s) => write!(f, "bad publish parameters: {s}"),
            HitError::TooEarly { deadline } => {
                write!(f, "settlement before deadline round {deadline}")
            }
            HitError::NotCancellable => write!(f, "task is not cancellable"),
        }
    }
}

/// Phase timing: how many rounds (clock periods) each window stays open
/// after it begins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseWindows {
    /// Rounds the commit phase may stay open before the task becomes
    /// cancellable (`None` = wait for `K` commitments indefinitely, as
    /// in Fig 4).
    pub commit_timeout: Option<u64>,
    /// Rounds the reveal phase stays open once `K` commitments arrive.
    pub reveal: u64,
    /// Rounds the evaluate phase stays open after reveal closes.
    pub evaluate: u64,
}

impl Default for PhaseWindows {
    fn default() -> Self {
        // Each window spans the phase's own clock period *plus* the one
        // period of adversarial delay the synchrony assumption allows
        // (§IV: messages can be delayed "up to the next clock") — so an
        // honest message submitted in time is always delivered before
        // the window closes, even when maximally delayed.
        Self {
            commit_timeout: None,
            reveal: 2,
            evaluate: 2,
        }
    }
}

/// A worker's on-chain record.
#[derive(Clone, Debug, PartialEq)]
struct WorkerRecord {
    commitment: Commitment,
    /// `Some(cts)` once revealed; `None` is the paper's `⊥`.
    revealed: Option<EncryptedAnswer>,
    /// Digests of each ciphertext item (what actual storage holds).
    item_digests: Vec<[u8; 32]>,
    settlement: Option<Settlement>,
    /// A deferred rejection is queued for this worker (batched mode).
    pending: bool,
}

/// Why a queued rejection will fire if its proofs verify.
#[derive(Clone, Debug, PartialEq)]
enum PendingKind {
    /// An `outrange` challenge at this question index.
    OutRange { index: usize },
    /// A PoQoEA rejection with this claimed quality.
    LowQuality { chi: u64 },
}

/// A structurally valid rejection whose VPKE proofs await the end-of-block
/// batch verification.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct PendingVerdict {
    worker: Address,
    kind: PendingKind,
    pub(crate) items: Vec<(DecryptionStatement, DecryptionProof)>,
}

/// Counters for the batched settlement path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of batch dispatches (one per block with pending verdicts).
    pub batches: u64,
    /// Total VPKE items verified through batches.
    pub items: u64,
    /// Largest single batch.
    pub largest: u64,
}

impl BatchStats {
    /// Component-wise accumulation (for registry-wide aggregation).
    pub fn absorb(&mut self, other: &BatchStats) {
        self.batches += other.batches;
        self.items += other.items;
        self.largest = self.largest.max(other.largest);
    }

    /// Records one dispatched batch of `items` proofs.
    pub fn record(&mut self, items: u64) {
        self.batches += 1;
        self.items += items;
        self.largest = self.largest.max(items);
    }
}

/// The HIT contract `C_hit`.
#[derive(Clone, Debug, PartialEq)]
pub struct HitContract {
    phase: Phase,
    windows: PhaseWindows,
    requester: Option<Address>,
    params: Option<PublishParams>,
    workers: BTreeMap<Address, WorkerRecord>,
    /// Commit order (the contract pays in this order at settlement).
    commit_order: Vec<Address>,
    /// All commitments seen, for the duplicate check.
    seen_commitments: Vec<Commitment>,
    golden: Option<GoldenStandards>,
    commit_deadline: Option<u64>,
    reveal_deadline: Option<u64>,
    evaluate_deadline: Option<u64>,
    settled: bool,
    /// Batched-settlement mode: rejection proofs are queued per block and
    /// dispatched through `vpke::batch_verify_each` instead of verified
    /// inline (see [`HitContract::with_deferred_verification`]).
    defer_verification: bool,
    pending_verdicts: Vec<PendingVerdict>,
    batch_stats: BatchStats,
    /// Per-worker settlement receipts, in the order settlements landed.
    receipts: Vec<SettlementReceipt>,
    /// Per-transaction undo journal: one lazy whole-instance snapshot,
    /// taken at the first mutating touch of an open transaction. Guard
    /// failures (wrong phase, duplicate commit, `TaskFull` races, …)
    /// revert without ever paying for it, and an instance that is not
    /// addressed by a transaction pays nothing at all.
    journal: StateJournal<Box<HitContract>>,
}

impl Journaled for HitContract {
    fn begin_tx(&mut self) {
        self.journal.begin();
    }

    fn commit_tx(&mut self) {
        self.journal.commit();
    }

    fn rollback_tx(&mut self) {
        if let Some(snapshot) = self.journal.drain_rollback().into_iter().next() {
            *self = *snapshot;
        }
        self.journal.reset();
    }
}

impl Default for HitContract {
    fn default() -> Self {
        Self::new(PhaseWindows::default())
    }
}

impl HitContract {
    /// Creates an unpublished contract with the given phase windows.
    pub fn new(windows: PhaseWindows) -> Self {
        Self {
            phase: Phase::Setup,
            windows,
            requester: None,
            params: None,
            workers: BTreeMap::new(),
            commit_order: Vec::new(),
            seen_commitments: Vec::new(),
            golden: None,
            commit_deadline: None,
            reveal_deadline: None,
            evaluate_deadline: None,
            settled: false,
            defer_verification: false,
            pending_verdicts: Vec::new(),
            batch_stats: BatchStats::default(),
            receipts: Vec::new(),
            journal: StateJournal::new(),
        }
    }

    /// Commits the open transaction but keeps the undo snapshot (if any)
    /// so the commit can be unwound later — the reorg path of
    /// `dragoon-net`. `None` means the transaction never touched this
    /// instance.
    pub(crate) fn commit_tx_captured(&mut self) -> Option<Box<HitContract>> {
        let snapshot = self.journal.drain_commit().into_iter().next();
        self.journal.reset();
        snapshot
    }

    /// Unwinds a previously captured commit by restoring the snapshot
    /// taken at that transaction's first touch.
    pub(crate) fn revert_capture(&mut self, capture: Option<Box<HitContract>>) {
        if let Some(snapshot) = capture {
            *self = *snapshot;
        }
    }

    /// Journals a whole-instance snapshot before the first mutation of
    /// an open transaction (no-op outside a transaction or after the
    /// first touch). Every mutating handler calls this after its guard
    /// checks and before its first write.
    fn touch(&mut self) {
        if self.journal.recording() && self.journal.is_empty() {
            let mut snapshot = Box::new(self.clone());
            snapshot.journal.reset();
            self.journal.record(snapshot);
        }
    }

    /// Switches the contract to **batched settlement**: `evaluate` /
    /// `outrange` transactions run every structural check inline but
    /// queue their VPKE proofs; at the next clock tick (block boundary)
    /// all queued proofs are dispatched through one
    /// [`vpke::batch_verify_each`] call and the verdicts applied. The
    /// accept/reject outcome per worker is identical to inline
    /// verification — only *when* within the phase window the verdict
    /// lands (same block vs. next block boundary) and the verification
    /// cost profile change.
    pub fn with_deferred_verification(mut self) -> Self {
        self.defer_verification = true;
        self
    }

    /// Counters for the batched settlement path (zero in inline mode).
    pub fn batch_stats(&self) -> BatchStats {
        self.batch_stats
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The published parameters, if any.
    pub fn params(&self) -> Option<&PublishParams> {
        self.params.as_ref()
    }

    /// The requester, once published.
    pub fn requester(&self) -> Option<Address> {
        self.requester
    }

    /// The opened gold standards, if the requester has revealed them.
    pub fn golden(&self) -> Option<&GoldenStandards> {
        self.golden.as_ref()
    }

    /// A worker's settlement outcome, if settled.
    pub fn settlement(&self, worker: &Address) -> Option<&Settlement> {
        self.workers.get(worker)?.settlement.as_ref()
    }

    /// The revealed ciphertexts of a worker (as read from event logs).
    pub fn revealed(&self, worker: &Address) -> Option<&EncryptedAnswer> {
        self.workers.get(worker)?.revealed.as_ref()
    }

    /// Workers in commit order.
    pub fn committed_workers(&self) -> &[Address] {
        &self.commit_order
    }

    /// The commit deadline round, when a commit timeout is configured.
    pub fn commit_deadline(&self) -> Option<u64> {
        self.commit_deadline
    }

    /// The reveal deadline round, once the commit phase has closed.
    pub fn reveal_deadline(&self) -> Option<u64> {
        self.reveal_deadline
    }

    /// The evaluation deadline round, once the reveal phase has closed.
    pub fn evaluate_deadline(&self) -> Option<u64> {
        self.evaluate_deadline
    }

    /// Whether the task has fully settled.
    pub fn is_settled(&self) -> bool {
        self.settled
    }

    /// Per-worker settlement receipts in the order settlements landed —
    /// the outcome data reputation layers accumulate across HITs.
    pub fn settlement_receipts(&self) -> &[SettlementReceipt] {
        &self.receipts
    }

    /// Appends one settlement receipt (each settlement site records
    /// exactly one, alongside setting the worker record's outcome).
    fn push_receipt(&mut self, worker: Address, outcome: Settlement, amount: u128) {
        self.receipts.push(SettlementReceipt {
            worker,
            outcome,
            amount,
        });
    }

    fn params_ref(&self) -> &PublishParams {
        self.params.as_ref().expect("published")
    }

    // ------------------------------------------------------------------
    // Message handlers
    // ------------------------------------------------------------------

    fn handle_publish(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        sender: Address,
        p: PublishParams,
    ) -> Result<(), HitError> {
        if self.phase != Phase::Setup {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        if p.n == 0 || p.k == 0 {
            return Err(HitError::BadParams("N and K must be positive".into()));
        }
        if p.budget == 0 {
            return Err(HitError::BadParams("budget must be positive".into()));
        }
        if p.theta > 0 && p.budget / (p.k as u128) == 0 {
            return Err(HitError::BadParams("budget below K".into()));
        }
        // Deploying the task contract is part of publishing (factory
        // pattern): creation + code deposit.
        env.gas
            .charge("create", env.schedule.create(HIT_CONTRACT_CODE_LEN));
        // Freeze the budget via L.
        env.ledger
            .freeze(env.contract, sender, p.budget)
            .map_err(|_| HitError::NoFund)?;
        env.gas.charge("freeze", env.schedule.call_value);
        // Store the parameters: N, B, K, range, Θ, h (2 slots), comm_gs,
        // digest, requester ≈ 10 fresh slots.
        env.gas.charge("sstore", 10 * env.schedule.sstore_set);
        let ev = HitEvent::Published {
            requester: sender,
            n: p.n,
            budget: p.budget,
            k: p.k,
        };
        env.emit(ev, 160);
        self.touch();
        self.requester = Some(sender);
        self.params = Some(p);
        self.phase = Phase::Commit;
        self.commit_deadline = self.windows.commit_timeout.map(|w| env.round + w);
        Ok(())
    }

    fn handle_commit(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        sender: Address,
        commitment: Commitment,
    ) -> Result<(), HitError> {
        if self.phase != Phase::Commit {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        let k = self.params_ref().k;
        if self.commit_order.len() >= k {
            return Err(HitError::TaskFull);
        }
        // Duplicate checks: one SLOAD each against the worker map and the
        // commitment set.
        env.gas.charge("sload", 2 * env.schedule.sload);
        if self.workers.contains_key(&sender) {
            return Err(HitError::DuplicateWorker);
        }
        if self.seen_commitments.contains(&commitment) {
            return Err(HitError::DuplicateCommitment);
        }
        // Store the commitment.
        env.gas.charge("sstore", env.schedule.sstore_set);
        self.touch();
        self.seen_commitments.push(commitment);
        self.workers.insert(
            sender,
            WorkerRecord {
                commitment,
                revealed: None,
                item_digests: Vec::new(),
                settlement: None,
                pending: false,
            },
        );
        self.commit_order.push(sender);
        let count = self.commit_order.len();
        env.emit(
            HitEvent::CommitAccepted {
                worker: sender,
                count,
            },
            64,
        );
        if count == k {
            self.phase = Phase::Reveal;
            self.reveal_deadline = Some(env.round + self.windows.reveal);
            env.emit(HitEvent::CommitClosed, 32);
        }
        Ok(())
    }

    fn handle_reveal(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        sender: Address,
        ciphertexts: EncryptedAnswer,
        key: dragoon_crypto::commitment::CommitmentKey,
    ) -> Result<(), HitError> {
        if self.phase != Phase::Reveal {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        let n = self.params_ref().n;
        let record = self.workers.get(&sender).ok_or(HitError::UnknownWorker)?;
        if record.revealed.is_some() {
            return Err(HitError::AlreadyRevealed);
        }
        if ciphertexts.len() != n {
            return Err(HitError::WrongCiphertextCount {
                expected: n,
                got: ciphertexts.len(),
            });
        }
        // Verify the opening: hash the full encoding.
        let encoded = ciphertexts.encode();
        env.gas
            .charge("keccak", env.schedule.keccak(encoded.len() + 32));
        if !record.commitment.open(&encoded, &key) {
            return Err(HitError::BadOpening);
        }
        // Store one digest per ciphertext item (the on-chain
        // representation; the outrange path later verifies single items
        // against these digests), plus per-item hashing and loop/ABI
        // overhead.
        let mut digests = Vec::with_capacity(n);
        for ct in &ciphertexts.0 {
            let d = keccak256(&ct.to_bytes());
            digests.push(d);
        }
        env.gas.charge("sstore", n as u64 * env.schedule.sstore_set);
        env.gas
            .charge("keccak", n as u64 * env.schedule.keccak(128));
        env.gas.charge("overhead", n as u64 * env.schedule.sload);
        // Emit the ciphertexts as event-log data.
        env.emit(HitEvent::Revealed { worker: sender }, encoded.len());
        self.touch();
        let record = self.workers.get_mut(&sender).expect("checked above");
        record.revealed = Some(ciphertexts);
        record.item_digests = digests;
        Ok(())
    }

    fn handle_golden(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        sender: Address,
        golden: GoldenStandards,
        key: dragoon_crypto::commitment::CommitmentKey,
    ) -> Result<(), HitError> {
        if self.phase != Phase::Evaluate {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        if Some(sender) != self.requester {
            return Err(HitError::NotRequester);
        }
        if self.golden.is_some() {
            return Err(HitError::BadGolden("already opened".into()));
        }
        let p = self.params_ref();
        golden
            .validate(p.n, &p.range)
            .map_err(HitError::BadGolden)?;
        let encoded = golden.encode();
        env.gas
            .charge("keccak", env.schedule.keccak(encoded.len() + 32));
        if !p.comm_gs.open(&encoded, &key) {
            return Err(HitError::BadGolden("commitment mismatch".into()));
        }
        // Store (G, Gs) packed: 2 gold entries per slot.
        let slots = golden.len().div_ceil(2) as u64;
        env.gas.charge("sstore", slots * env.schedule.sstore_set);
        env.emit(HitEvent::GoldenOpened, encoded.len());
        self.touch();
        self.golden = Some(golden);
        Ok(())
    }

    /// Charges the gas of one on-chain VPKE verification: 5 EC mults
    /// (`M^C`, `c1^Z`, `c2^C`, `g^Z`, `h^C`), 3 EC adds, and the
    /// Fiat–Shamir keccak over the ~520-byte transcript.
    fn charge_vpke_verify(env: &mut ExecEnv<'_, HitEvent>) {
        env.gas.charge("ec_mul", 5 * env.schedule.ec_mul);
        env.gas.charge("ec_add", 3 * env.schedule.ec_add);
        env.gas.charge("keccak", env.schedule.keccak(520));
    }

    fn handle_outrange(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        sender: Address,
        worker: Address,
        index: usize,
        claim: PlaintextClaim,
        proof: DecryptionProof,
    ) -> Result<(), HitError> {
        if self.phase != Phase::Evaluate {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        if Some(sender) != self.requester {
            return Err(HitError::NotRequester);
        }
        let record = self.workers.get(&worker).ok_or(HitError::UnknownWorker)?;
        if record.settlement.is_some() || record.pending {
            return Err(HitError::AlreadySettled);
        }
        let Some(cts) = record.revealed.as_ref() else {
            return Err(HitError::NothingToEvaluate);
        };
        let Some(ct) = cts.0.get(index) else {
            return Err(HitError::InvalidOutRange(format!(
                "no ciphertext at index {index}"
            )));
        };
        let p = self.params_ref();
        let range = p.range;
        let reward = p.budget / p.k as u128;
        let ek = p.ek;

        // Fig 4: pay the worker if the claim is in range or the proof is
        // invalid; otherwise record the rejection. Gas in batched mode
        // matches per-proof except the 9 000-gas value-transfer
        // surcharge when an invalid proof backfires into a payment: that
        // outcome is only known at the block boundary and its dispatch
        // is not metered per-transaction (a documented simplification of
        // the deferred path).
        Self::charge_vpke_verify(env);
        let stmt = DecryptionStatement { ek, ct: *ct, claim };
        // The contract additionally checks the claim is genuinely out of
        // range: the claimed point must differ from g^m for every
        // m ∈ range (|range| is a small constant — one EC mul each).
        let claimed_in_range = match claim {
            PlaintextClaim::InRange(m) => range.contains(m),
            PlaintextClaim::OutOfRange(pt) => {
                env.gas.charge("ec_mul", range.len() * env.schedule.ec_mul);
                (range.lo..=range.hi)
                    .any(|m| (G1Projective::generator() * Fr::from_u64(m)).to_affine() == pt)
            }
        };
        env.gas.charge("sstore", env.schedule.sstore_update);
        self.touch();
        let record = self.workers.get_mut(&worker).expect("checked above");
        if self.defer_verification && !claimed_in_range {
            record.pending = true;
            // Pre-charge the verdict event's log gas (both outcomes emit
            // a 64-byte event, so the cost is outcome-independent); the
            // event itself is emitted free at resolution.
            env.gas.charge("log", env.schedule.log(1, 64));
            self.pending_verdicts.push(PendingVerdict {
                worker,
                kind: PendingKind::OutRange { index },
                items: vec![(stmt, proof)],
            });
        } else if claimed_in_range || !vpke::verify(&stmt, &proof) {
            // The challenge backfires — in-range claim or invalid proof:
            // the worker is paid immediately.
            env.ledger
                .pay(env.contract, worker, reward)
                .expect("escrow holds the budget");
            env.gas.charge("pay", env.schedule.call_value);
            record.settlement = Some(Settlement::Paid);
            self.push_receipt(worker, Settlement::Paid, reward);
            env.emit(
                HitEvent::Paid {
                    worker,
                    amount: reward,
                },
                64,
            );
        } else {
            let outcome = Settlement::Rejected(RejectReason::OutOfRange { index });
            record.settlement = Some(outcome.clone());
            self.push_receipt(worker, outcome, 0);
            env.emit(HitEvent::OutRanged { worker, index }, 64);
        }
        Ok(())
    }

    fn handle_evaluate(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        sender: Address,
        worker: Address,
        chi: u64,
        proof: QualityProof,
    ) -> Result<(), HitError> {
        if self.phase != Phase::Evaluate {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        if Some(sender) != self.requester {
            return Err(HitError::NotRequester);
        }
        let Some(golden) = self.golden.clone() else {
            return Err(HitError::GoldenNotOpened);
        };
        let record = self.workers.get(&worker).ok_or(HitError::UnknownWorker)?;
        if record.settlement.is_some() || record.pending {
            return Err(HitError::AlreadySettled);
        }
        let Some(cts) = record.revealed.clone() else {
            return Err(HitError::NothingToEvaluate);
        };
        let p = self.params_ref();
        let theta = p.theta;
        let reward = p.budget / p.k as u128;
        let ek = p.ek;

        // Gas: per mismatch item, one VPKE verification plus the
        // gold-point comparison (one EC mul) and bookkeeping SLOADs.
        // Batched mode charges the same, minus the value-transfer
        // surcharge of a backfired payment (see handle_outrange).
        for _ in &proof.items {
            Self::charge_vpke_verify(env);
            env.gas.charge("ec_mul", env.schedule.ec_mul);
            env.gas.charge("sload", 2 * env.schedule.sload);
        }
        env.gas.charge("sstore", env.schedule.sstore_update);

        // Fig 4: pay if χ ≥ Θ or the proof fails to verify. The
        // structural half of verification always runs inline; the VPKE
        // half runs inline or is queued for the block-boundary batch.
        self.touch();
        let structural = poqoea::split_quality_proof(&ek, &cts, chi, &proof, &golden);
        let pay_now = match &structural {
            _ if chi >= theta => true,
            Err(_) => true,
            Ok(items) if self.defer_verification => {
                let record = self.workers.get_mut(&worker).expect("checked above");
                record.pending = true;
                // Pre-charge the verdict event's log gas (outcome-
                // independent: both outcomes emit a 64-byte event).
                env.gas.charge("log", env.schedule.log(1, 64));
                self.pending_verdicts.push(PendingVerdict {
                    worker,
                    kind: PendingKind::LowQuality { chi },
                    items: items.clone(),
                });
                return Ok(());
            }
            Ok(items) => !items
                .iter()
                .all(|(stmt, dproof)| vpke::verify(stmt, dproof)),
        };
        let record = self.workers.get_mut(&worker).expect("checked above");
        if pay_now {
            env.ledger
                .pay(env.contract, worker, reward)
                .expect("escrow holds the budget");
            env.gas.charge("pay", env.schedule.call_value);
            record.settlement = Some(Settlement::Paid);
            self.push_receipt(worker, Settlement::Paid, reward);
            env.emit(
                HitEvent::Paid {
                    worker,
                    amount: reward,
                },
                64,
            );
        } else {
            let outcome = Settlement::Rejected(RejectReason::LowQuality { chi });
            record.settlement = Some(outcome.clone());
            self.push_receipt(worker, outcome, 0);
            env.emit(HitEvent::Evaluated { worker, chi }, 64);
        }
        Ok(())
    }

    fn handle_finalize(&mut self, env: &mut ExecEnv<'_, HitEvent>) -> Result<(), HitError> {
        if self.phase != Phase::Evaluate {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        let deadline = self.evaluate_deadline.expect("set on phase entry");
        if env.round < deadline {
            return Err(HitError::TooEarly { deadline });
        }
        self.settle(env, true);
        Ok(())
    }

    fn handle_cancel(&mut self, env: &mut ExecEnv<'_, HitEvent>) -> Result<(), HitError> {
        if self.phase != Phase::Commit {
            return Err(HitError::WrongPhase {
                current: self.phase,
            });
        }
        let Some(deadline) = self.commit_deadline else {
            return Err(HitError::NotCancellable);
        };
        if env.round < deadline {
            return Err(HitError::TooEarly { deadline });
        }
        self.cancel(env, true);
        Ok(())
    }

    /// Cancels an unfilled task: the whole escrow returns to the
    /// requester; no worker owes or receives anything.
    fn cancel(&mut self, env: &mut ExecEnv<'_, HitEvent>, charge_gas: bool) {
        self.touch();
        let requester = self.requester.expect("published");
        let refunded = env.ledger.balance(&env.contract);
        if refunded > 0 {
            env.ledger
                .pay(env.contract, requester, refunded)
                .expect("own balance");
            if charge_gas {
                env.gas.charge("pay", env.schedule.call_value);
                env.gas.charge("sstore", env.schedule.sstore_update);
            }
        }
        self.phase = Phase::Closed;
        self.settled = true;
        env.emit_free(HitEvent::Cancelled { refunded });
    }

    /// Dispatches every queued rejection through one batched VPKE
    /// verification and applies the verdicts (batched-settlement mode).
    ///
    /// Called at each block boundary (clock tick) and defensively before
    /// any settlement, so a verdict can never be skipped by an
    /// early `Finalize`. A verdict whose proofs all verify lands as the
    /// rejection it claimed; any invalid proof pays the worker, exactly
    /// as inline verification would have.
    pub fn resolve_pending(&mut self, env: &mut ExecEnv<'_, HitEvent>) {
        if self.pending_verdicts.is_empty() {
            return;
        }
        self.touch();
        let pending = self.take_pending();
        let all_items: Vec<(DecryptionStatement, DecryptionProof)> = pending
            .iter()
            .flat_map(|v| v.items.iter().copied())
            .collect();
        let results = vpke::batch_verify_each(&all_items);
        if !all_items.is_empty() {
            self.batch_stats.record(all_items.len() as u64);
        }
        self.apply_verdicts(env, pending, &results);
    }

    /// Drains the queued verdicts — the registry uses this to pool every
    /// instance's queue into one block-wide batch verification.
    pub(crate) fn take_pending(&mut self) -> Vec<PendingVerdict> {
        if !self.pending_verdicts.is_empty() {
            self.touch();
        }
        std::mem::take(&mut self.pending_verdicts)
    }

    /// The queued verdicts' VPKE items, flattened in queue order, without
    /// draining (or journaling) anything — the overlapped-verification
    /// path reads these to start the batch early, then checks at the
    /// block boundary that the drained queue still matches.
    pub(crate) fn peek_pending_items(&self) -> Vec<(DecryptionStatement, DecryptionProof)> {
        self.pending_verdicts
            .iter()
            .flat_map(|v| v.items.iter().copied())
            .collect()
    }

    /// Applies drained verdicts given the verification result of each of
    /// their items (`results` aligned with the verdicts' items,
    /// flattened in order).
    pub(crate) fn apply_verdicts(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        pending: Vec<PendingVerdict>,
        results: &[bool],
    ) {
        if !pending.is_empty() {
            self.touch();
        }
        let p = self.params_ref();
        let reward = p.budget / p.k as u128;
        let mut offset = 0;
        for verdict in pending {
            let n = verdict.items.len();
            let all_valid = results[offset..offset + n].iter().all(|&ok| ok);
            offset += n;
            let record = self
                .workers
                .get_mut(&verdict.worker)
                .expect("pending verdict for committed worker");
            record.pending = false;
            if record.settlement.is_some() {
                continue;
            }
            if all_valid {
                let (settlement, event) = match verdict.kind {
                    PendingKind::OutRange { index } => (
                        Settlement::Rejected(RejectReason::OutOfRange { index }),
                        HitEvent::OutRanged {
                            worker: verdict.worker,
                            index,
                        },
                    ),
                    PendingKind::LowQuality { chi } => (
                        Settlement::Rejected(RejectReason::LowQuality { chi }),
                        HitEvent::Evaluated {
                            worker: verdict.worker,
                            chi,
                        },
                    ),
                };
                record.settlement = Some(settlement.clone());
                self.push_receipt(verdict.worker, settlement, 0);
                env.emit_free(event);
            } else {
                env.ledger
                    .pay(env.contract, verdict.worker, reward)
                    .expect("escrow holds the budget");
                record.settlement = Some(Settlement::Paid);
                self.push_receipt(verdict.worker, Settlement::Paid, reward);
                env.emit_free(HitEvent::Paid {
                    worker: verdict.worker,
                    amount: reward,
                });
            }
        }
    }

    /// Settlement: pay every revealed, unsettled worker; mark
    /// non-revealers; refund leftover escrow to the requester.
    fn settle(&mut self, env: &mut ExecEnv<'_, HitEvent>, charge_gas: bool) {
        self.touch();
        // Queued verdicts must land before default payments.
        self.resolve_pending(env);
        let p = self.params_ref();
        let reward = p.budget / p.k as u128;
        let requester = self.requester.expect("published");
        // If the requester never opened the gold standards, Fig 4's
        // "otherwise" branch pays every revealed worker — which the
        // default path below implements (no rejection can exist without
        // the golden opening, because evaluate requires it).
        for addr in self.commit_order.clone() {
            let record = self.workers.get_mut(&addr).expect("committed");
            if record.settlement.is_some() {
                continue;
            }
            if record.revealed.is_some() {
                env.ledger
                    .pay(env.contract, addr, reward)
                    .expect("escrow holds the budget");
                if charge_gas {
                    env.gas.charge("pay", env.schedule.call_value);
                    env.gas.charge("sstore", env.schedule.sstore_update);
                }
                record.settlement = Some(Settlement::Paid);
                self.push_receipt(addr, Settlement::Paid, reward);
                env.emit_free(HitEvent::Paid {
                    worker: addr,
                    amount: reward,
                });
            } else {
                record.settlement = Some(Settlement::Rejected(RejectReason::NoReveal));
                self.push_receipt(addr, Settlement::Rejected(RejectReason::NoReveal), 0);
            }
        }
        // Refund whatever remains in escrow (unfilled slots, rejected
        // workers' shares, division remainder).
        let leftover = env.ledger.balance(&env.contract);
        if leftover > 0 {
            env.ledger
                .pay(env.contract, requester, leftover)
                .expect("paying own balance");
            if charge_gas {
                env.gas.charge("pay", env.schedule.call_value);
            }
            env.emit_free(HitEvent::Refunded {
                requester,
                amount: leftover,
            });
        }
        self.phase = Phase::Closed;
        self.settled = true;
        env.emit_free(HitEvent::Closed);
    }
}

impl StateMachine for HitContract {
    type Msg = HitMessage;
    type Event = HitEvent;
    type Error = HitError;

    fn on_message(
        &mut self,
        env: &mut ExecEnv<'_, HitEvent>,
        sender: Address,
        msg: HitMessage,
    ) -> Result<(), HitError> {
        match msg {
            HitMessage::Publish(p) => self.handle_publish(env, sender, p),
            HitMessage::Commit { commitment } => self.handle_commit(env, sender, commitment),
            HitMessage::Reveal { ciphertexts, key } => {
                self.handle_reveal(env, sender, ciphertexts, key)
            }
            HitMessage::Golden { golden, key } => self.handle_golden(env, sender, golden, key),
            HitMessage::OutRange {
                worker,
                index,
                claim,
                proof,
            } => self.handle_outrange(env, sender, worker, index, claim, proof),
            HitMessage::Evaluate { worker, chi, proof } => {
                self.handle_evaluate(env, sender, worker, chi, proof)
            }
            HitMessage::Finalize => self.handle_finalize(env),
            HitMessage::Cancel => self.handle_cancel(env),
        }
    }

    fn on_clock(&mut self, env: &mut ExecEnv<'_, HitEvent>, round: u64) {
        // Block boundary: dispatch the batched settlement queue before
        // any deadline fires, so verdicts land ahead of default payouts.
        self.resolve_pending(env);
        // Commit window expired without K commitments: auto-cancel one
        // grace round after the deadline (the explicit Cancel tx gets
        // the first chance, mirroring Finalize).
        if self.phase == Phase::Commit {
            if let Some(deadline) = self.commit_deadline {
                if round > deadline + 1 {
                    self.cancel(env, false);
                }
            }
        }
        // Reveal window closes: record ⊥ for non-openers and move to
        // evaluation.
        if self.phase == Phase::Reveal {
            if let Some(deadline) = self.reveal_deadline {
                if round > deadline {
                    self.touch();
                    let revealed = self
                        .workers
                        .values()
                        .filter(|w| w.revealed.is_some())
                        .count();
                    let defaulted = self.workers.len() - revealed;
                    self.phase = Phase::Evaluate;
                    self.evaluate_deadline = Some(round + self.windows.evaluate);
                    env.emit_free(HitEvent::RevealClosed {
                        revealed,
                        defaulted,
                    });
                }
            }
        }
        // Evaluation window closes: default settlement (functionality
        // semantics — requester silence pays the workers). One grace
        // round is left after the deadline so an explicit `Finalize`
        // transaction (which pays gas) can win the race; the clock-driven
        // settlement is the gas-free backstop.
        if self.phase == Phase::Evaluate {
            if let Some(deadline) = self.evaluate_deadline {
                if round > deadline + 1 && !self.settled {
                    self.settle(env, false);
                }
            }
        }
    }
}

// Re-exported for convenience in tests and the protocol crate.
pub use crate::msg::HitMessage as Message;

// -- durable state ------------------------------------------------------
//
// The snapshot codec for one HIT instance. Lives here (not in
// `crate::persist`) because it reaches private fields. The journal is
// *not* persisted: snapshots are taken between transactions, when every
// journal is empty — a recovered instance starts with a fresh one.

use crate::persist::{
    get_answer, get_commitment, get_dproof, get_golden, get_seq, get_statement, put_answer,
    put_commitment, put_dproof, put_golden, put_statement,
};
use dragoon_chain::store::{Persist, Reader, StoreError};

impl Persist for WorkerRecord {
    fn put(&self, out: &mut Vec<u8>) {
        put_commitment(&self.commitment, out);
        match &self.revealed {
            None => out.push(0),
            Some(answer) => {
                out.push(1);
                put_answer(answer, out);
            }
        }
        self.item_digests.put(out);
        self.settlement.put(out);
        self.pending.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            commitment: get_commitment(r)?,
            revealed: match u8::get(r)? {
                0 => None,
                1 => Some(get_answer(r)?),
                t => {
                    return Err(StoreError::Corrupt(format!("bad reveal tag {t}")));
                }
            },
            item_digests: Vec::get(r)?,
            settlement: Option::get(r)?,
            pending: bool::get(r)?,
        })
    }
}

impl Persist for PendingKind {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            PendingKind::OutRange { index } => {
                out.push(0);
                index.put(out);
            }
            PendingKind::LowQuality { chi } => {
                out.push(1);
                chi.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => PendingKind::OutRange {
                index: usize::get(r)?,
            },
            1 => PendingKind::LowQuality { chi: u64::get(r)? },
            t => return Err(StoreError::Corrupt(format!("bad pending kind tag {t}"))),
        })
    }
}

impl Persist for PendingVerdict {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker.put(out);
        self.kind.put(out);
        self.items.len().put(out);
        for (statement, proof) in &self.items {
            put_statement(statement, out);
            put_dproof(proof, out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            worker: Address::get(r)?,
            kind: PendingKind::get(r)?,
            items: get_seq(r, |r| Ok((get_statement(r)?, get_dproof(r)?)))?,
        })
    }
}

impl Persist for HitContract {
    fn put(&self, out: &mut Vec<u8>) {
        debug_assert!(
            !self.journal.recording(),
            "instance snapshots are taken between transactions"
        );
        self.phase.put(out);
        self.windows.put(out);
        self.requester.put(out);
        self.params.put(out);
        self.workers.len().put(out);
        for (addr, record) in &self.workers {
            addr.put(out);
            record.put(out);
        }
        self.commit_order.put(out);
        self.seen_commitments.len().put(out);
        for c in &self.seen_commitments {
            put_commitment(c, out);
        }
        match &self.golden {
            None => out.push(0),
            Some(golden) => {
                out.push(1);
                put_golden(golden, out);
            }
        }
        self.commit_deadline.put(out);
        self.reveal_deadline.put(out);
        self.evaluate_deadline.put(out);
        self.settled.put(out);
        self.defer_verification.put(out);
        self.pending_verdicts.put(out);
        self.batch_stats.put(out);
        self.receipts.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            phase: Phase::get(r)?,
            windows: PhaseWindows::get(r)?,
            requester: Option::get(r)?,
            params: Option::get(r)?,
            workers: get_seq(r, |r| Ok((Address::get(r)?, WorkerRecord::get(r)?)))?
                .into_iter()
                .collect(),
            commit_order: Vec::get(r)?,
            seen_commitments: get_seq(r, get_commitment)?,
            golden: match u8::get(r)? {
                0 => None,
                1 => Some(get_golden(r)?),
                t => {
                    return Err(StoreError::Corrupt(format!("bad golden tag {t}")));
                }
            },
            commit_deadline: Option::get(r)?,
            reveal_deadline: Option::get(r)?,
            evaluate_deadline: Option::get(r)?,
            settled: bool::get(r)?,
            defer_verification: bool::get(r)?,
            pending_verdicts: Vec::get(r)?,
            batch_stats: BatchStats::get(r)?,
            receipts: Vec::get(r)?,
            journal: StateJournal::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_chain::{Chain, GasSchedule, TxStatus};
    use dragoon_core::task::Answer;
    use dragoon_crypto::commitment::CommitmentKey;
    use dragoon_crypto::elgamal::KeyPair;
    use dragoon_crypto::elgamal::PlaintextRange;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        rng: StdRng,
        chain: Chain<HitContract>,
        kp: KeyPair,
        requester: Address,
        workers: Vec<Address>,
        golden: GoldenStandards,
        gs_key: CommitmentKey,
        params: PublishParams,
    }

    const BUDGET: u128 = 4_000;

    fn setup() -> Setup {
        let mut rng = StdRng::seed_from_u64(0xc0217ac7);
        let kp = KeyPair::generate(&mut rng);
        let requester = Address::from_byte(0xd0);
        let workers: Vec<Address> = (1..=4).map(Address::from_byte).collect();
        let golden = GoldenStandards {
            indexes: vec![0, 2, 4, 6, 8, 9],
            answers: vec![1, 0, 1, 1, 0, 0],
        };
        let gs_key = CommitmentKey::random(&mut rng);
        let comm_gs = Commitment::commit(&golden.encode(), &gs_key);
        let params = PublishParams {
            n: 10,
            budget: BUDGET,
            k: 4,
            range: PlaintextRange::binary(),
            theta: 4,
            ek: kp.ek,
            comm_gs,
            task_digest: [7u8; 32],
        };
        let windows = PhaseWindows {
            commit_timeout: Some(4),
            reveal: 1,
            evaluate: 2,
        };
        let mut chain = Chain::deploy(HitContract::new(windows), 0, GasSchedule::istanbul());
        chain.ledger.mint(requester, BUDGET * 2);
        Setup {
            rng,
            chain,
            kp,
            requester,
            workers,
            golden,
            gs_key,
            params,
        }
    }

    /// The perfect answer for the fixture's gold standards.
    fn good_answer() -> Answer {
        Answer(vec![1, 0, 0, 0, 1, 0, 1, 0, 0, 0])
    }

    /// An answer failing 5 of 6 gold standards.
    fn bad_answer() -> Answer {
        Answer(vec![0, 0, 1, 0, 0, 0, 0, 0, 1, 0])
    }

    fn publish(s: &mut Setup) {
        s.chain
            .submit(s.requester, HitMessage::Publish(s.params.clone()));
        s.chain.advance_round_fifo();
        assert_eq!(s.chain.contract().phase(), Phase::Commit);
    }

    /// Commits and reveals the given answers for all four workers;
    /// returns each worker's ciphertexts.
    fn submit_all(s: &mut Setup, answers: &[Answer]) -> Vec<EncryptedAnswer> {
        let mut cts = Vec::new();
        let mut keys = Vec::new();
        for (w, a) in s.workers.clone().iter().zip(answers) {
            let enc = a.encrypt(&s.kp.ek, &mut s.rng);
            let key = CommitmentKey::random(&mut s.rng);
            let comm = Commitment::commit(&enc.encode(), &key);
            s.chain.submit(*w, HitMessage::Commit { commitment: comm });
            cts.push(enc);
            keys.push(key);
        }
        s.chain.advance_round_fifo();
        assert_eq!(s.chain.contract().phase(), Phase::Reveal);
        for ((w, enc), key) in s.workers.clone().iter().zip(&cts).zip(&keys) {
            s.chain.submit(
                *w,
                HitMessage::Reveal {
                    ciphertexts: enc.clone(),
                    key: *key,
                },
            );
        }
        s.chain.advance_round_fifo();
        cts
    }

    fn enter_evaluate(s: &mut Setup) {
        // One empty round closes the reveal window.
        s.chain.advance_round_fifo();
        assert_eq!(s.chain.contract().phase(), Phase::Evaluate);
    }

    #[test]
    fn happy_path_all_paid() {
        let mut s = setup();
        publish(&mut s);
        submit_all(&mut s, &vec![good_answer(); 4]);
        enter_evaluate(&mut s);
        // Requester opens golden, then stays silent; deadline pays all.
        s.chain.submit(
            s.requester,
            HitMessage::Golden {
                golden: s.golden.clone(),
                key: s.gs_key,
            },
        );
        s.chain.advance_round_fifo();
        // Run past the evaluation deadline.
        s.chain.advance_round_fifo();
        s.chain.advance_round_fifo();
        s.chain.advance_round_fifo();
        assert!(s.chain.contract().is_settled());
        for w in &s.workers {
            assert_eq!(s.chain.ledger.balance(w), BUDGET / 4);
            assert_eq!(s.chain.contract().settlement(w), Some(&Settlement::Paid));
        }
        assert_eq!(s.chain.ledger.balance(&s.chain.contract_address()), 0);
    }

    #[test]
    fn requester_silence_pays_everyone() {
        // Even without the golden opening, workers get paid at deadline —
        // false-reporting by omission is impossible.
        let mut s = setup();
        publish(&mut s);
        submit_all(&mut s, &vec![bad_answer(); 4]);
        enter_evaluate(&mut s);
        for _ in 0..4 {
            s.chain.advance_round_fifo();
        }
        assert!(s.chain.contract().is_settled());
        for w in &s.workers {
            assert_eq!(s.chain.ledger.balance(w), BUDGET / 4);
        }
    }

    #[test]
    fn low_quality_rejected_with_poqoea() {
        let mut s = setup();
        publish(&mut s);
        let answers = vec![bad_answer(), good_answer(), good_answer(), good_answer()];
        let cts = submit_all(&mut s, &answers);
        enter_evaluate(&mut s);
        s.chain.submit(
            s.requester,
            HitMessage::Golden {
                golden: s.golden.clone(),
                key: s.gs_key,
            },
        );
        s.chain.advance_round_fifo();
        // Reject worker 0 (quality 1 < Θ=4).
        let (chi, proof) = poqoea::prove_quality(
            &s.kp.dk,
            &cts[0],
            &s.golden,
            &PlaintextRange::binary(),
            &mut s.rng,
        );
        assert_eq!(chi, 1);
        s.chain.submit(
            s.requester,
            HitMessage::Evaluate {
                worker: s.workers[0],
                chi,
                proof,
            },
        );
        s.chain.advance_round_fifo();
        assert_eq!(
            s.chain.contract().settlement(&s.workers[0]),
            Some(&Settlement::Rejected(RejectReason::LowQuality { chi: 1 }))
        );
        // Settle.
        for _ in 0..3 {
            s.chain.advance_round_fifo();
        }
        assert_eq!(s.chain.ledger.balance(&s.workers[0]), 0);
        for w in &s.workers[1..] {
            assert_eq!(s.chain.ledger.balance(w), BUDGET / 4);
        }
        // The rejected share went back to the requester.
        assert_eq!(
            s.chain.ledger.balance(&s.requester),
            BUDGET * 2 - BUDGET + BUDGET / 4
        );
    }

    #[test]
    fn invalid_poqoea_pays_the_worker() {
        // A cheating requester claiming a good answer is bad gets the
        // proof rejected, and the contract pays the worker immediately.
        let mut s = setup();
        publish(&mut s);
        let cts = submit_all(&mut s, &vec![good_answer(); 4]);
        enter_evaluate(&mut s);
        s.chain.submit(
            s.requester,
            HitMessage::Golden {
                golden: s.golden.clone(),
                key: s.gs_key,
            },
        );
        s.chain.advance_round_fifo();
        // Fabricate: claim χ=0 with no mismatch proofs at all.
        s.chain.submit(
            s.requester,
            HitMessage::Evaluate {
                worker: s.workers[0],
                chi: 0,
                proof: QualityProof::default(),
            },
        );
        s.chain.advance_round_fifo();
        assert_eq!(
            s.chain.contract().settlement(&s.workers[0]),
            Some(&Settlement::Paid)
        );
        assert_eq!(s.chain.ledger.balance(&s.workers[0]), BUDGET / 4);
        let _ = cts;
    }

    #[test]
    fn duplicate_commitment_rejected() {
        let mut s = setup();
        publish(&mut s);
        let enc = good_answer().encrypt(&s.kp.ek, &mut s.rng);
        let key = CommitmentKey::random(&mut s.rng);
        let comm = Commitment::commit(&enc.encode(), &key);
        s.chain
            .submit(s.workers[0], HitMessage::Commit { commitment: comm });
        // A copier submits the same commitment.
        s.chain
            .submit(s.workers[1], HitMessage::Commit { commitment: comm });
        s.chain.advance_round_fifo();
        let ok = s
            .chain
            .receipts()
            .filter(|r| r.label == "commit" && r.status == TxStatus::Ok)
            .count();
        assert_eq!(ok, 1, "exactly one commit succeeds");
        let reverted = s
            .chain
            .receipts()
            .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
            .count();
        assert_eq!(reverted, 1, "the copied commitment must revert");
    }

    #[test]
    fn worker_cannot_commit_twice() {
        let mut s = setup();
        publish(&mut s);
        let key = CommitmentKey::random(&mut s.rng);
        let c1 = Commitment::commit(b"a", &key);
        let c2 = Commitment::commit(b"b", &key);
        s.chain
            .submit(s.workers[0], HitMessage::Commit { commitment: c1 });
        s.chain
            .submit(s.workers[0], HitMessage::Commit { commitment: c2 });
        s.chain.advance_round_fifo();
        let reverted = s
            .chain
            .receipts()
            .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
            .count();
        assert_eq!(reverted, 1);
    }

    #[test]
    fn reveal_must_open_commitment() {
        let mut s = setup();
        publish(&mut s);
        // All four commit.
        let mut keys = Vec::new();
        let mut encs = Vec::new();
        for w in s.workers.clone() {
            let enc = good_answer().encrypt(&s.kp.ek, &mut s.rng);
            let key = CommitmentKey::random(&mut s.rng);
            let comm = Commitment::commit(&enc.encode(), &key);
            s.chain.submit(w, HitMessage::Commit { commitment: comm });
            keys.push(key);
            encs.push(enc);
        }
        s.chain.advance_round_fifo();
        // Worker 0 tries to reveal *different* ciphertexts.
        let other = bad_answer().encrypt(&s.kp.ek, &mut s.rng);
        s.chain.submit(
            s.workers[0],
            HitMessage::Reveal {
                ciphertexts: other,
                key: keys[0],
            },
        );
        s.chain.advance_round_fifo();
        let last = s.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
    }

    #[test]
    fn non_revealer_gets_nothing() {
        let mut s = setup();
        publish(&mut s);
        // All commit; only workers 1..4 reveal.
        let mut keys = Vec::new();
        let mut encs = Vec::new();
        for w in s.workers.clone() {
            let enc = good_answer().encrypt(&s.kp.ek, &mut s.rng);
            let key = CommitmentKey::random(&mut s.rng);
            let comm = Commitment::commit(&enc.encode(), &key);
            s.chain.submit(w, HitMessage::Commit { commitment: comm });
            keys.push(key);
            encs.push(enc);
        }
        s.chain.advance_round_fifo();
        for i in 1..4 {
            s.chain.submit(
                s.workers[i],
                HitMessage::Reveal {
                    ciphertexts: encs[i].clone(),
                    key: keys[i],
                },
            );
        }
        for _ in 0..6 {
            s.chain.advance_round_fifo();
        }
        assert!(s.chain.contract().is_settled());
        assert_eq!(s.chain.ledger.balance(&s.workers[0]), 0);
        assert_eq!(
            s.chain.contract().settlement(&s.workers[0]),
            Some(&Settlement::Rejected(RejectReason::NoReveal))
        );
        for w in &s.workers[1..] {
            assert_eq!(s.chain.ledger.balance(w), BUDGET / 4);
        }
    }

    #[test]
    fn outrange_rejects_out_of_range_answer() {
        let mut s = setup();
        publish(&mut s);
        let mut answers = vec![good_answer(); 4];
        answers[0] = Answer(vec![7u64; 10]); // wildly out of range
        let cts = submit_all(&mut s, &answers);
        enter_evaluate(&mut s);
        // Prove item 0 of worker 0 is out of range.
        let (claim, proof) = vpke::prove(
            &s.kp.dk,
            &cts[0].0[0],
            &PlaintextRange::binary(),
            &mut s.rng,
        );
        assert!(matches!(claim, PlaintextClaim::OutOfRange(_)));
        s.chain.submit(
            s.requester,
            HitMessage::OutRange {
                worker: s.workers[0],
                index: 0,
                claim,
                proof,
            },
        );
        s.chain.advance_round_fifo();
        assert_eq!(
            s.chain.contract().settlement(&s.workers[0]),
            Some(&Settlement::Rejected(RejectReason::OutOfRange { index: 0 }))
        );
    }

    #[test]
    fn bogus_outrange_pays_the_worker() {
        let mut s = setup();
        publish(&mut s);
        let cts = submit_all(&mut s, &vec![good_answer(); 4]);
        enter_evaluate(&mut s);
        // The answer at index 0 is in range; an honest VPKE proof of it
        // yields an in-range claim — the contract pays the worker.
        let (claim, proof) = vpke::prove(
            &s.kp.dk,
            &cts[0].0[0],
            &PlaintextRange::binary(),
            &mut s.rng,
        );
        assert!(matches!(claim, PlaintextClaim::InRange(_)));
        s.chain.submit(
            s.requester,
            HitMessage::OutRange {
                worker: s.workers[0],
                index: 0,
                claim,
                proof,
            },
        );
        s.chain.advance_round_fifo();
        assert_eq!(
            s.chain.contract().settlement(&s.workers[0]),
            Some(&Settlement::Paid)
        );
    }

    #[test]
    fn evaluate_requires_golden_opening() {
        let mut s = setup();
        publish(&mut s);
        let cts = submit_all(&mut s, &vec![bad_answer(); 4]);
        enter_evaluate(&mut s);
        let (chi, proof) = poqoea::prove_quality(
            &s.kp.dk,
            &cts[0],
            &s.golden,
            &PlaintextRange::binary(),
            &mut s.rng,
        );
        s.chain.submit(
            s.requester,
            HitMessage::Evaluate {
                worker: s.workers[0],
                chi,
                proof,
            },
        );
        s.chain.advance_round_fifo();
        let last = s.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
    }

    #[test]
    fn only_requester_can_evaluate() {
        let mut s = setup();
        publish(&mut s);
        submit_all(&mut s, &vec![good_answer(); 4]);
        enter_evaluate(&mut s);
        s.chain.submit(
            s.workers[1],
            HitMessage::Golden {
                golden: s.golden.clone(),
                key: s.gs_key,
            },
        );
        s.chain.advance_round_fifo();
        let last = s.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
    }

    #[test]
    fn wrong_golden_opening_rejected() {
        let mut s = setup();
        publish(&mut s);
        submit_all(&mut s, &vec![good_answer(); 4]);
        enter_evaluate(&mut s);
        let mut fake = s.golden.clone();
        fake.answers[0] = 1 - fake.answers[0];
        s.chain.submit(
            s.requester,
            HitMessage::Golden {
                golden: fake,
                key: s.gs_key,
            },
        );
        s.chain.advance_round_fifo();
        let last = s.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
    }

    #[test]
    fn publish_without_funds_reverts() {
        let mut s = setup();
        let poor = Address::from_byte(0x99);
        s.chain.submit(poor, HitMessage::Publish(s.params.clone()));
        s.chain.advance_round_fifo();
        let last = s.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
        assert_eq!(s.chain.contract().phase(), Phase::Setup);
    }

    #[test]
    fn fifth_commit_rejected() {
        let mut s = setup();
        publish(&mut s);
        for i in 1..=5u8 {
            let key = CommitmentKey::random(&mut s.rng);
            let comm = Commitment::commit(&[i], &key);
            s.chain.submit(
                Address::from_byte(i),
                HitMessage::Commit { commitment: comm },
            );
        }
        s.chain.advance_round_fifo();
        let reverted = s
            .chain
            .receipts()
            .filter(|r| matches!(r.status, TxStatus::Reverted(_)))
            .count();
        assert_eq!(reverted, 1, "the fifth commit must revert");
        assert_eq!(s.chain.contract().phase(), Phase::Reveal);
    }

    #[test]
    fn unfilled_task_cancellable_after_timeout() {
        let mut s = setup();
        publish(&mut s);
        // Only two of four workers ever commit.
        for i in 1..=2u8 {
            let key = CommitmentKey::random(&mut s.rng);
            let comm = Commitment::commit(&[i], &key);
            s.chain.submit(
                Address::from_byte(i),
                HitMessage::Commit { commitment: comm },
            );
        }
        s.chain.advance_round_fifo();
        // Cancelling before the commit deadline (publish round + 4)
        // reverts.
        s.chain.submit(s.workers[0], HitMessage::Cancel);
        s.chain.advance_round_fifo(); // round 3 < 5
        let last = s.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
        // Run past the deadline; then anyone can cancel.
        s.chain.advance_round_fifo(); // 4
        s.chain.advance_round_fifo(); // 5
        s.chain.submit(s.workers[0], HitMessage::Cancel);
        s.chain.advance_round_fifo(); // 6 >= 5
        assert!(s.chain.contract().is_settled());
        assert_eq!(s.chain.contract().phase(), Phase::Closed);
        // The requester got the full budget back.
        assert_eq!(s.chain.ledger.balance(&s.requester), BUDGET * 2);
    }

    #[test]
    fn unfilled_task_auto_cancels_at_backstop() {
        let mut s = setup();
        publish(&mut s);
        // Nobody commits; advance far past deadline + grace.
        for _ in 0..8 {
            s.chain.advance_round_fifo();
        }
        assert!(s.chain.contract().is_settled());
        assert_eq!(s.chain.ledger.balance(&s.requester), BUDGET * 2);
    }

    #[test]
    fn cancel_impossible_without_timeout_window() {
        // The paper-faithful default has no commit timeout; Cancel must
        // always revert.
        let mut chain = Chain::deploy(
            HitContract::new(PhaseWindows::default()),
            0,
            GasSchedule::istanbul(),
        );
        let requester = Address::from_byte(0xd0);
        chain.ledger.mint(requester, 100);
        let kp = KeyPair::generate(&mut StdRng::seed_from_u64(1));
        chain.submit(
            requester,
            HitMessage::Publish(PublishParams {
                n: 2,
                budget: 100,
                k: 2,
                range: PlaintextRange::binary(),
                theta: 1,
                ek: kp.ek,
                comm_gs: Commitment([0u8; 32]),
                task_digest: [0u8; 32],
            }),
        );
        chain.advance_round_fifo();
        for _ in 0..6 {
            chain.advance_round_fifo();
        }
        chain.submit(requester, HitMessage::Cancel);
        chain.advance_round_fifo();
        let last = chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
        assert!(!chain.contract().is_settled());
    }

    #[test]
    fn gas_shape_matches_table_iii() {
        // The publish and submit costs must land in the right order of
        // magnitude (detailed numbers are the bench's job).
        let mut s = setup();
        publish(&mut s);
        let publish_gas = s
            .chain
            .receipts()
            .find(|r| r.label == "publish")
            .unwrap()
            .gas_used;
        assert!(
            (1_000_000..1_700_000).contains(&publish_gas),
            "publish gas = {publish_gas}"
        );
        submit_all(&mut s, &vec![good_answer(); 4]);
        let commit_gas: u64 = s
            .chain
            .receipts()
            .filter(|r| r.label == "commit" && r.status == TxStatus::Ok)
            .map(|r| r.gas_used)
            .next()
            .unwrap();
        let reveal_gas: u64 = s
            .chain
            .receipts()
            .filter(|r| r.label == "reveal" && r.status == TxStatus::Ok)
            .map(|r| r.gas_used)
            .next()
            .unwrap();
        // 10-question fixture: reveal ≈ 10 sstores + data ≈ 250k.
        assert!(commit_gas < 60_000, "commit gas = {commit_gas}");
        assert!(
            (150_000..500_000).contains(&reveal_gas),
            "reveal gas = {reveal_gas}"
        );
    }
}
