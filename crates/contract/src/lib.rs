//! # dragoon-contract
//!
//! The HIT contract functionality `C_hit` (Fig 4) as a state machine on
//! the simulated chain, with full EVM-style gas accounting. See
//! [`contract::HitContract`] for the phase logic and
//! [`msg::HitMessage`] for the transaction interface.

pub mod contract;
pub mod msg;

pub use contract::{
    HitContract, HitError, HitEvent, Phase, PhaseWindows, RejectReason, Settlement,
    HIT_CONTRACT_CODE_LEN,
};
pub use msg::{HitMessage, PublishParams};
