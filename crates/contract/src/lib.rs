//! # dragoon-contract
//!
//! The HIT contract functionality `C_hit` (Fig 4) as a state machine on
//! the simulated chain, with full EVM-style gas accounting. See
//! [`contract::HitContract`] for the phase logic and
//! [`msg::HitMessage`] for the transaction interface.
//!
//! For marketplace-scale operation, [`registry::HitRegistry`] hosts many
//! concurrent instances behind one contract address, with per-instance
//! escrow isolation and optional block-batched settlement verification.

pub mod contract;
pub mod msg;
mod persist;
pub mod registry;

pub use contract::{
    BatchStats, HitContract, HitError, HitEvent, Phase, PhaseWindows, RejectReason, Settlement,
    SettlementReceipt, HIT_CONTRACT_CODE_LEN,
};
pub use msg::{HitMessage, LedgerAccess, PublishParams};
pub use registry::{
    HitId, HitRef, HitRegistry, RegistryCapture, RegistryError, RegistryEvent, RegistryMessage,
    RegistryShard, SettlementMode, REGISTRY_CODE_LEN,
};
