//! The transaction messages accepted by the HIT contract `C_hit`, with
//! their byte encodings and declared ledger access sets.
//!
//! Encodings matter: intrinsic calldata gas is charged from the actual
//! zero/non-zero byte composition of the encoded message, exactly as
//! Ethereum prices transaction data. Access sets matter for scheduling:
//! [`HitMessage::access_set`] declares, per message, which ledger
//! accounts execution may read or write, and the optimistic parallel
//! block executor groups transactions by those declarations instead of
//! serializing on whole instances.

use crate::contract::HitContract;
use dragoon_chain::{CalldataStats, ChainMessage};
use dragoon_core::poqoea::QualityProof;
use dragoon_core::task::{EncryptedAnswer, GoldenStandards};
use dragoon_crypto::commitment::{Commitment, CommitmentKey};
use dragoon_crypto::elgamal::{EncryptionKey, PlaintextRange};
use dragoon_crypto::vpke::{DecryptionProof, PlaintextClaim};
use dragoon_ledger::Address;
use serde::{Deserialize, Serialize};

/// The public parameters announced when a task is published
/// (`publish, N, B, K, range, Θ, h, comm_gs` in Fig 4, plus the off-chain
/// storage digest of the question set).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PublishParams {
    /// Number of questions `N`.
    pub n: usize,
    /// Total budget `B` (frozen on publish).
    pub budget: u128,
    /// Number of workers `K`.
    pub k: usize,
    /// Admissible answer range.
    pub range: PlaintextRange,
    /// Quality threshold `Θ`.
    pub theta: u64,
    /// The requester's public encryption key `h`.
    pub ek: EncryptionKey,
    /// Commitment to the gold standards `Commit(G ‖ Gs, key_gs)`.
    pub comm_gs: Commitment,
    /// Keccak digest of the off-chain question set (Swarm integrity
    /// anchor, §VI "the digest of the questions is committed in the
    /// contract").
    pub task_digest: [u8; 32],
}

/// A transaction to the HIT contract.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum HitMessage {
    /// Phase 1: the requester publishes the task and freezes `B`.
    Publish(PublishParams),
    /// Phase 2-a: a worker commits to its encrypted answers.
    Commit {
        /// `Commit(c_j, key_j)`.
        commitment: Commitment,
    },
    /// Phase 2-b: a worker opens its commitment, revealing ciphertexts.
    Reveal {
        /// The encrypted answer vector `c_j`.
        ciphertexts: EncryptedAnswer,
        /// The blinding key `key_j`.
        key: CommitmentKey,
    },
    /// Phase 3: the requester opens the gold standards.
    Golden {
        /// `(G, Gs)`.
        golden: GoldenStandards,
        /// The blinding key `key_gs`.
        key: CommitmentKey,
    },
    /// Phase 3: the requester rejects one answer item as out of range,
    /// with a verifiable decryption of that item.
    OutRange {
        /// The worker being challenged.
        worker: Address,
        /// The question index `i`.
        index: usize,
        /// The claimed decryption (out-of-range group element, or an
        /// in-range value — which would backfire and pay the worker).
        claim: PlaintextClaim,
        /// The VPKE proof.
        proof: DecryptionProof,
    },
    /// Phase 3: the requester proves a worker's quality `χ_j < Θ` with a
    /// PoQoEA proof to reject the submission.
    Evaluate {
        /// The worker being evaluated.
        worker: Address,
        /// The claimed quality upper bound `χ_j`.
        chi: u64,
        /// The PoQoEA proof.
        proof: QualityProof,
    },
    /// Phase 3 → closed: anyone may trigger settlement once the
    /// evaluation window has passed (default payments + refund).
    Finalize,
    /// Commit phase → closed: cancels an unfilled task after its commit
    /// window expires, refunding the budget.
    Cancel,
}

/// The ledger accounts one message may touch, declared before execution
/// for the parallel scheduler. `reads` must cover accounts whose entries
/// feed guards or *outcome-dependent* payments (the executor copies them
/// into the group's shadow ledger); `writes` are the accounts execution
/// deterministically moves coins between. A write that only materializes
/// on one outcome (a backfired rejection paying the worker) is declared
/// a read — the dynamic touch records catch the escalation and trigger a
/// selective retry when it collides with another group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LedgerAccess {
    /// Accounts execution may read (or conditionally write).
    pub reads: Vec<Address>,
    /// Accounts execution writes on every successful path that touches
    /// the ledger at all.
    pub writes: Vec<Address>,
}

impl HitMessage {
    /// Declares the ledger access of this message when routed to an
    /// instance escrowed at `escrow` with current state `hit`. The
    /// declaration is evaluated against pre-block state; drift within
    /// the block (e.g. a same-block commit extending the worker set a
    /// finalize pays) is absorbed by the executor's sender preset and
    /// its dynamic touch-record validation.
    pub fn access_set(&self, escrow: Address, hit: &HitContract) -> LedgerAccess {
        match self {
            // Publish freezes the budget from the sender (added to the
            // preset by the executor) into the escrow.
            HitMessage::Publish(_) => LedgerAccess {
                reads: Vec::new(),
                writes: vec![escrow],
            },
            // Pure contract-state transitions: no ledger traffic.
            HitMessage::Commit { .. } | HitMessage::Reveal { .. } | HitMessage::Golden { .. } => {
                LedgerAccess::default()
            }
            // A rejection that fails verification (or claims in-range)
            // backfires into an immediate escrow → worker payment. The
            // outcome depends on the proof, so the worker is a declared
            // read; the escrow is written either way at settlement.
            HitMessage::OutRange { worker, .. } | HitMessage::Evaluate { worker, .. } => {
                LedgerAccess {
                    reads: vec![*worker],
                    writes: vec![escrow],
                }
            }
            // Settlement drains the escrow to every committed worker
            // (defaults + queued verdicts) and refunds the requester.
            HitMessage::Finalize => {
                let mut writes = vec![escrow];
                writes.extend(hit.requester());
                writes.extend_from_slice(hit.committed_workers());
                LedgerAccess {
                    reads: Vec::new(),
                    writes,
                }
            }
            // Cancellation refunds the whole escrow to the requester.
            HitMessage::Cancel => {
                let mut writes = vec![escrow];
                writes.extend(hit.requester());
                LedgerAccess {
                    reads: Vec::new(),
                    writes,
                }
            }
        }
    }

    /// The byte encoding whose composition determines calldata gas.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            HitMessage::Publish(p) => {
                out.push(0x01);
                out.extend_from_slice(&(p.n as u64).to_be_bytes());
                out.extend_from_slice(&p.budget.to_be_bytes());
                out.extend_from_slice(&(p.k as u64).to_be_bytes());
                out.extend_from_slice(&p.range.lo.to_be_bytes());
                out.extend_from_slice(&p.range.hi.to_be_bytes());
                out.extend_from_slice(&p.theta.to_be_bytes());
                out.extend_from_slice(&p.ek.0.to_bytes());
                out.extend_from_slice(&p.comm_gs.0);
                out.extend_from_slice(&p.task_digest);
            }
            HitMessage::Commit { commitment } => {
                out.push(0x02);
                out.extend_from_slice(&commitment.0);
            }
            HitMessage::Reveal { ciphertexts, key } => {
                out.push(0x03);
                out.extend_from_slice(&ciphertexts.encode());
                out.extend_from_slice(&key.0);
            }
            HitMessage::Golden { golden, key } => {
                out.push(0x04);
                out.extend_from_slice(&golden.encode());
                out.extend_from_slice(&key.0);
            }
            HitMessage::OutRange {
                worker,
                index,
                claim,
                proof,
            } => {
                out.push(0x05);
                out.extend_from_slice(&worker.0);
                out.extend_from_slice(&(*index as u64).to_be_bytes());
                encode_claim(&mut out, claim);
                encode_proof(&mut out, proof);
            }
            HitMessage::Evaluate { worker, chi, proof } => {
                out.push(0x06);
                out.extend_from_slice(&worker.0);
                out.extend_from_slice(&chi.to_be_bytes());
                out.extend_from_slice(&(proof.items.len() as u64).to_be_bytes());
                for item in &proof.items {
                    out.extend_from_slice(&(item.index as u64).to_be_bytes());
                    encode_claim(&mut out, &item.claim);
                    encode_proof(&mut out, &item.proof);
                }
            }
            HitMessage::Finalize => out.push(0x07),
            HitMessage::Cancel => out.push(0x08),
        }
        out
    }
}

fn encode_claim(out: &mut Vec<u8>, claim: &PlaintextClaim) {
    match claim {
        PlaintextClaim::InRange(m) => {
            out.push(0x00);
            out.extend_from_slice(&m.to_be_bytes());
        }
        PlaintextClaim::OutOfRange(p) => {
            out.push(0x01);
            out.extend_from_slice(&p.to_bytes());
        }
    }
}

fn encode_proof(out: &mut Vec<u8>, proof: &DecryptionProof) {
    out.extend_from_slice(&proof.a.to_bytes());
    out.extend_from_slice(&proof.b.to_bytes());
    out.extend_from_slice(&proof.z.to_bytes_le());
}

impl ChainMessage for HitMessage {
    fn calldata(&self) -> CalldataStats {
        CalldataStats::from_bytes(&self.encode())
    }

    fn label(&self) -> &'static str {
        match self {
            HitMessage::Publish(_) => "publish",
            HitMessage::Commit { .. } => "commit",
            HitMessage::Reveal { .. } => "reveal",
            HitMessage::Golden { .. } => "golden",
            HitMessage::OutRange { .. } => "outrange",
            HitMessage::Evaluate { .. } => "evaluate",
            HitMessage::Finalize => "finalize",
            HitMessage::Cancel => "cancel",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_core::task::Answer;
    use dragoon_crypto::elgamal::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels() {
        assert_eq!(HitMessage::Finalize.label(), "finalize");
        assert_eq!(
            HitMessage::Commit {
                commitment: Commitment([0u8; 32])
            }
            .label(),
            "commit"
        );
    }

    #[test]
    fn reveal_calldata_scales_with_questions() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&mut rng);
        let small = Answer(vec![0; 10]).encrypt(&kp.ek, &mut rng);
        let large = Answer(vec![0; 100]).encrypt(&kp.ek, &mut rng);
        let key = CommitmentKey::random(&mut rng);
        let m_small = HitMessage::Reveal {
            ciphertexts: small,
            key,
        };
        let m_large = HitMessage::Reveal {
            ciphertexts: large,
            key,
        };
        assert!(m_large.calldata().len() > 9 * m_small.calldata().len() / 2);
        // 100 questions × 128 bytes + key + tag ≈ 12.8 kB.
        assert_eq!(m_large.calldata().len(), 1 + 100 * 128 + 32);
    }

    #[test]
    fn access_sets_declare_settlement_endpoints() {
        use crate::PhaseWindows;
        let escrow = Address::from_byte(0xee);
        let worker = Address::from_byte(0x01);
        let hit = HitContract::new(PhaseWindows {
            commit_timeout: Some(4),
            reveal: 2,
            evaluate: 3,
        });
        // Pure state transitions touch no ledger accounts.
        let commit = HitMessage::Commit {
            commitment: Commitment([0u8; 32]),
        };
        assert_eq!(commit.access_set(escrow, &hit), LedgerAccess::default());
        // A rejection declares the worker as an outcome-dependent read
        // (the backfire payment) and the escrow as a write.
        let evaluate = HitMessage::Evaluate {
            worker,
            chi: 0,
            proof: dragoon_core::poqoea::QualityProof::default(),
        };
        let access = evaluate.access_set(escrow, &hit);
        assert_eq!(access.reads, vec![worker]);
        assert_eq!(access.writes, vec![escrow]);
        // Settlement on an unpublished instance still names the escrow;
        // requester and workers join as the instance fills.
        let access = HitMessage::Finalize.access_set(escrow, &hit);
        assert_eq!(access.writes, vec![escrow]);
        assert!(access.reads.is_empty());
    }

    #[test]
    fn encodings_are_distinct() {
        let c1 = HitMessage::Commit {
            commitment: Commitment([1u8; 32]),
        };
        let c2 = HitMessage::Commit {
            commitment: Commitment([2u8; 32]),
        };
        assert_ne!(c1.encode(), c2.encode());
        assert_ne!(c1.encode(), HitMessage::Finalize.encode());
    }

    #[test]
    fn field_bytes_are_mostly_nonzero() {
        // Sanity for the gas model: ciphertext calldata is dominated by
        // non-zero bytes (random field elements).
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&mut rng);
        let enc = Answer(vec![1; 20]).encrypt(&kp.ek, &mut rng);
        let m = HitMessage::Reveal {
            ciphertexts: enc,
            key: CommitmentKey::random(&mut rng),
        };
        let stats = m.calldata();
        assert!(stats.nonzero > stats.zero * 10);
    }
}
