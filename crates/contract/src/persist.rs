//! [`Persist`] codecs for the contract layer: messages, events and the
//! cryptographic payloads they carry.
//!
//! The block store replays *messages* to rebuild state, and snapshots
//! encode the registry's full instance tree — both need every
//! contract-layer type to round-trip through the deterministic byte
//! codec defined in `dragoon-chain`. Crypto types live in foreign crates
//! below the `Persist` trait, so they get free-function codecs here
//! (built on their canonical byte encodings) instead of trait impls;
//! contract-local types with public fields implement the trait directly.
//! Types with private fields ([`crate::contract::HitContract`], the
//! registry) implement it next to their definitions.

use crate::contract::{
    BatchStats, HitEvent, Phase, PhaseWindows, RejectReason, Settlement, SettlementReceipt,
};
use crate::msg::{HitMessage, PublishParams};
use dragoon_chain::store::{Persist, Reader, StoreError};
use dragoon_core::poqoea::{MismatchItem, QualityProof};
use dragoon_core::task::{EncryptedAnswer, GoldenStandards};
use dragoon_crypto::elgamal::PlaintextRange;
use dragoon_crypto::vpke::{DecryptionStatement, PlaintextClaim};
use dragoon_crypto::{
    Ciphertext, Commitment, CommitmentKey, DecryptionProof, EncryptionKey, Fr, G1Affine,
};
use dragoon_ledger::Address;

pub(crate) fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt(what.into())
}

// -- free-function codecs for foreign crypto types ---------------------

pub(crate) fn put_g1(p: &G1Affine, out: &mut Vec<u8>) {
    p.to_bytes().put(out);
}

pub(crate) fn get_g1(r: &mut Reader<'_>) -> Result<G1Affine, StoreError> {
    G1Affine::from_bytes(&r.array()?).ok_or_else(|| corrupt("invalid G1 point"))
}

pub(crate) fn put_fr(x: &Fr, out: &mut Vec<u8>) {
    x.to_bytes_le().put(out);
}

pub(crate) fn get_fr(r: &mut Reader<'_>) -> Result<Fr, StoreError> {
    Fr::from_bytes_le(&r.array()?).ok_or_else(|| corrupt("non-canonical field element"))
}

pub(crate) fn put_ciphertext(ct: &Ciphertext, out: &mut Vec<u8>) {
    ct.to_bytes().put(out);
}

pub(crate) fn get_ciphertext(r: &mut Reader<'_>) -> Result<Ciphertext, StoreError> {
    Ciphertext::from_bytes(&r.array()?).ok_or_else(|| corrupt("invalid ciphertext"))
}

pub(crate) fn put_commitment(c: &Commitment, out: &mut Vec<u8>) {
    c.0.put(out);
}

pub(crate) fn get_commitment(r: &mut Reader<'_>) -> Result<Commitment, StoreError> {
    Ok(Commitment(r.array()?))
}

pub(crate) fn put_commitment_key(k: &CommitmentKey, out: &mut Vec<u8>) {
    k.0.put(out);
}

pub(crate) fn get_commitment_key(r: &mut Reader<'_>) -> Result<CommitmentKey, StoreError> {
    Ok(CommitmentKey(r.array()?))
}

pub(crate) fn put_answer(a: &EncryptedAnswer, out: &mut Vec<u8>) {
    a.0.len().put(out);
    for ct in &a.0 {
        put_ciphertext(ct, out);
    }
}

pub(crate) fn get_answer(r: &mut Reader<'_>) -> Result<EncryptedAnswer, StoreError> {
    Ok(EncryptedAnswer(get_seq(r, get_ciphertext)?))
}

pub(crate) fn put_golden(g: &GoldenStandards, out: &mut Vec<u8>) {
    g.indexes.put(out);
    g.answers.put(out);
}

pub(crate) fn get_golden(r: &mut Reader<'_>) -> Result<GoldenStandards, StoreError> {
    Ok(GoldenStandards {
        indexes: Vec::get(r)?,
        answers: Vec::get(r)?,
    })
}

pub(crate) fn put_claim(c: &PlaintextClaim, out: &mut Vec<u8>) {
    match c {
        PlaintextClaim::InRange(m) => {
            out.push(0);
            m.put(out);
        }
        PlaintextClaim::OutOfRange(p) => {
            out.push(1);
            put_g1(p, out);
        }
    }
}

pub(crate) fn get_claim(r: &mut Reader<'_>) -> Result<PlaintextClaim, StoreError> {
    match u8::get(r)? {
        0 => Ok(PlaintextClaim::InRange(u64::get(r)?)),
        1 => Ok(PlaintextClaim::OutOfRange(get_g1(r)?)),
        t => Err(corrupt(format!("bad claim tag {t}"))),
    }
}

pub(crate) fn put_dproof(p: &DecryptionProof, out: &mut Vec<u8>) {
    put_g1(&p.a, out);
    put_g1(&p.b, out);
    put_fr(&p.z, out);
}

pub(crate) fn get_dproof(r: &mut Reader<'_>) -> Result<DecryptionProof, StoreError> {
    Ok(DecryptionProof {
        a: get_g1(r)?,
        b: get_g1(r)?,
        z: get_fr(r)?,
    })
}

pub(crate) fn put_statement(s: &DecryptionStatement, out: &mut Vec<u8>) {
    put_g1(&s.ek.0, out);
    put_ciphertext(&s.ct, out);
    put_claim(&s.claim, out);
}

pub(crate) fn get_statement(r: &mut Reader<'_>) -> Result<DecryptionStatement, StoreError> {
    Ok(DecryptionStatement {
        ek: EncryptionKey(get_g1(r)?),
        ct: get_ciphertext(r)?,
        claim: get_claim(r)?,
    })
}

fn put_mismatch(m: &MismatchItem, out: &mut Vec<u8>) {
    m.index.put(out);
    put_claim(&m.claim, out);
    put_dproof(&m.proof, out);
}

fn get_mismatch(r: &mut Reader<'_>) -> Result<MismatchItem, StoreError> {
    Ok(MismatchItem {
        index: usize::get(r)?,
        claim: get_claim(r)?,
        proof: get_dproof(r)?,
    })
}

pub(crate) fn put_quality_proof(p: &QualityProof, out: &mut Vec<u8>) {
    p.items.len().put(out);
    for item in &p.items {
        put_mismatch(item, out);
    }
}

pub(crate) fn get_quality_proof(r: &mut Reader<'_>) -> Result<QualityProof, StoreError> {
    Ok(QualityProof {
        items: get_seq(r, get_mismatch)?,
    })
}

/// Length-prefixed sequence decode through a free-function codec.
pub(crate) fn get_seq<T>(
    r: &mut Reader<'_>,
    f: impl Fn(&mut Reader<'_>) -> Result<T, StoreError>,
) -> Result<Vec<T>, StoreError> {
    let len = usize::get(r)?;
    if len > r.remaining() {
        return Err(corrupt(format!("sequence length {len} exceeds payload")));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(f(r)?);
    }
    Ok(out)
}

// -- contract-local public types ---------------------------------------

impl Persist for PhaseWindows {
    fn put(&self, out: &mut Vec<u8>) {
        self.commit_timeout.put(out);
        self.reveal.put(out);
        self.evaluate.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            commit_timeout: Option::get(r)?,
            reveal: u64::get(r)?,
            evaluate: u64::get(r)?,
        })
    }
}

impl Persist for PublishParams {
    fn put(&self, out: &mut Vec<u8>) {
        self.n.put(out);
        self.budget.put(out);
        self.k.put(out);
        self.range.lo.put(out);
        self.range.hi.put(out);
        self.theta.put(out);
        put_g1(&self.ek.0, out);
        put_commitment(&self.comm_gs, out);
        self.task_digest.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            n: usize::get(r)?,
            budget: u128::get(r)?,
            k: usize::get(r)?,
            range: PlaintextRange {
                lo: u64::get(r)?,
                hi: u64::get(r)?,
            },
            theta: u64::get(r)?,
            ek: EncryptionKey(get_g1(r)?),
            comm_gs: get_commitment(r)?,
            task_digest: r.array()?,
        })
    }
}

impl Persist for HitMessage {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            HitMessage::Publish(params) => {
                out.push(0);
                params.put(out);
            }
            HitMessage::Commit { commitment } => {
                out.push(1);
                put_commitment(commitment, out);
            }
            HitMessage::Reveal { ciphertexts, key } => {
                out.push(2);
                put_answer(ciphertexts, out);
                put_commitment_key(key, out);
            }
            HitMessage::Golden { golden, key } => {
                out.push(3);
                put_golden(golden, out);
                put_commitment_key(key, out);
            }
            HitMessage::OutRange {
                worker,
                index,
                claim,
                proof,
            } => {
                out.push(4);
                worker.put(out);
                index.put(out);
                put_claim(claim, out);
                put_dproof(proof, out);
            }
            HitMessage::Evaluate { worker, chi, proof } => {
                out.push(5);
                worker.put(out);
                chi.put(out);
                put_quality_proof(proof, out);
            }
            HitMessage::Finalize => out.push(6),
            HitMessage::Cancel => out.push(7),
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => HitMessage::Publish(PublishParams::get(r)?),
            1 => HitMessage::Commit {
                commitment: get_commitment(r)?,
            },
            2 => HitMessage::Reveal {
                ciphertexts: get_answer(r)?,
                key: get_commitment_key(r)?,
            },
            3 => HitMessage::Golden {
                golden: get_golden(r)?,
                key: get_commitment_key(r)?,
            },
            4 => HitMessage::OutRange {
                worker: Address::get(r)?,
                index: usize::get(r)?,
                claim: get_claim(r)?,
                proof: get_dproof(r)?,
            },
            5 => HitMessage::Evaluate {
                worker: Address::get(r)?,
                chi: u64::get(r)?,
                proof: get_quality_proof(r)?,
            },
            6 => HitMessage::Finalize,
            7 => HitMessage::Cancel,
            t => return Err(corrupt(format!("bad hit message tag {t}"))),
        })
    }
}

impl Persist for Phase {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Phase::Setup => 0,
            Phase::Commit => 1,
            Phase::Reveal => 2,
            Phase::Evaluate => 3,
            Phase::Closed => 4,
        });
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => Phase::Setup,
            1 => Phase::Commit,
            2 => Phase::Reveal,
            3 => Phase::Evaluate,
            4 => Phase::Closed,
            t => return Err(corrupt(format!("bad phase tag {t}"))),
        })
    }
}

impl Persist for RejectReason {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            RejectReason::OutOfRange { index } => {
                out.push(0);
                index.put(out);
            }
            RejectReason::LowQuality { chi } => {
                out.push(1);
                chi.put(out);
            }
            RejectReason::NoReveal => out.push(2),
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => RejectReason::OutOfRange {
                index: usize::get(r)?,
            },
            1 => RejectReason::LowQuality { chi: u64::get(r)? },
            2 => RejectReason::NoReveal,
            t => return Err(corrupt(format!("bad reject reason tag {t}"))),
        })
    }
}

impl Persist for Settlement {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Settlement::Paid => out.push(0),
            Settlement::Rejected(reason) => {
                out.push(1);
                reason.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => Settlement::Paid,
            1 => Settlement::Rejected(RejectReason::get(r)?),
            t => return Err(corrupt(format!("bad settlement tag {t}"))),
        })
    }
}

impl Persist for SettlementReceipt {
    fn put(&self, out: &mut Vec<u8>) {
        self.worker.put(out);
        self.outcome.put(out);
        self.amount.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            worker: Address::get(r)?,
            outcome: Settlement::get(r)?,
            amount: u128::get(r)?,
        })
    }
}

impl Persist for BatchStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.batches.put(out);
        self.items.put(out);
        self.largest.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            batches: u64::get(r)?,
            items: u64::get(r)?,
            largest: u64::get(r)?,
        })
    }
}

impl Persist for HitEvent {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            HitEvent::Published {
                requester,
                n,
                budget,
                k,
            } => {
                out.push(0);
                requester.put(out);
                n.put(out);
                budget.put(out);
                k.put(out);
            }
            HitEvent::CommitAccepted { worker, count } => {
                out.push(1);
                worker.put(out);
                count.put(out);
            }
            HitEvent::CommitClosed => out.push(2),
            HitEvent::Revealed { worker } => {
                out.push(3);
                worker.put(out);
            }
            HitEvent::RevealClosed {
                revealed,
                defaulted,
            } => {
                out.push(4);
                revealed.put(out);
                defaulted.put(out);
            }
            HitEvent::GoldenOpened => out.push(5),
            HitEvent::OutRanged { worker, index } => {
                out.push(6);
                worker.put(out);
                index.put(out);
            }
            HitEvent::Evaluated { worker, chi } => {
                out.push(7);
                worker.put(out);
                chi.put(out);
            }
            HitEvent::Paid { worker, amount } => {
                out.push(8);
                worker.put(out);
                amount.put(out);
            }
            HitEvent::Refunded { requester, amount } => {
                out.push(9);
                requester.put(out);
                amount.put(out);
            }
            HitEvent::Cancelled { refunded } => {
                out.push(10);
                refunded.put(out);
            }
            HitEvent::Closed => out.push(11),
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => HitEvent::Published {
                requester: Address::get(r)?,
                n: usize::get(r)?,
                budget: u128::get(r)?,
                k: usize::get(r)?,
            },
            1 => HitEvent::CommitAccepted {
                worker: Address::get(r)?,
                count: usize::get(r)?,
            },
            2 => HitEvent::CommitClosed,
            3 => HitEvent::Revealed {
                worker: Address::get(r)?,
            },
            4 => HitEvent::RevealClosed {
                revealed: usize::get(r)?,
                defaulted: usize::get(r)?,
            },
            5 => HitEvent::GoldenOpened,
            6 => HitEvent::OutRanged {
                worker: Address::get(r)?,
                index: usize::get(r)?,
            },
            7 => HitEvent::Evaluated {
                worker: Address::get(r)?,
                chi: u64::get(r)?,
            },
            8 => HitEvent::Paid {
                worker: Address::get(r)?,
                amount: u128::get(r)?,
            },
            9 => HitEvent::Refunded {
                requester: Address::get(r)?,
                amount: u128::get(r)?,
            },
            10 => HitEvent::Cancelled {
                refunded: u128::get(r)?,
            },
            11 => HitEvent::Closed,
            t => return Err(corrupt(format!("bad hit event tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn crypto_codecs_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = dragoon_crypto::KeyPair::generate(&mut rng);
        let ct = kp.ek.encrypt(3, &mut rng);
        let mut out = Vec::new();
        put_g1(&kp.ek.0, &mut out);
        put_ciphertext(&ct, &mut out);
        put_claim(&PlaintextClaim::InRange(3), &mut out);
        let mut r = Reader::new(&out);
        assert_eq!(get_g1(&mut r).unwrap(), kp.ek.0);
        assert_eq!(get_ciphertext(&mut r).unwrap(), ct);
        assert_eq!(get_claim(&mut r).unwrap(), PlaintextClaim::InRange(3));
        assert!(r.is_empty());
    }

    #[test]
    fn hit_message_round_trips() {
        let mut rng = StdRng::seed_from_u64(11);
        let kp = dragoon_crypto::KeyPair::generate(&mut rng);
        let key = CommitmentKey::random(&mut rng);
        let msgs = vec![
            HitMessage::Publish(PublishParams {
                n: 6,
                budget: 3000,
                k: 3,
                range: PlaintextRange::binary(),
                theta: 3,
                ek: kp.ek,
                comm_gs: Commitment::commit(b"gs", &key),
                task_digest: [9u8; 32],
            }),
            HitMessage::Commit {
                commitment: Commitment::commit(b"c", &key),
            },
            HitMessage::Golden {
                golden: GoldenStandards {
                    indexes: vec![0, 2],
                    answers: vec![1, 0],
                },
                key,
            },
            HitMessage::Finalize,
            HitMessage::Cancel,
        ];
        for msg in msgs {
            let mut out = Vec::new();
            msg.put(&mut out);
            let decoded = HitMessage::get(&mut Reader::new(&out)).unwrap();
            // HitMessage has no PartialEq; compare re-encodings.
            let mut again = Vec::new();
            decoded.put(&mut again);
            assert_eq!(out, again);
        }
    }

    #[test]
    fn event_and_settlement_round_trip() {
        let events = vec![
            HitEvent::Published {
                requester: Address::from_byte(1),
                n: 6,
                budget: 3000,
                k: 3,
            },
            HitEvent::RevealClosed {
                revealed: 2,
                defaulted: 1,
            },
            HitEvent::Paid {
                worker: Address::from_byte(2),
                amount: 1000,
            },
            HitEvent::Closed,
        ];
        for e in &events {
            let mut out = Vec::new();
            e.put(&mut out);
            assert_eq!(&HitEvent::get(&mut Reader::new(&out)).unwrap(), e);
        }
        let s = SettlementReceipt {
            worker: Address::from_byte(3),
            outcome: Settlement::Rejected(RejectReason::LowQuality { chi: 2 }),
            amount: 0,
        };
        let mut out = Vec::new();
        s.put(&mut out);
        assert_eq!(SettlementReceipt::get(&mut Reader::new(&out)).unwrap(), s);
    }
}
