//! The HIT registry: one on-chain contract hosting **many** concurrent
//! HIT instances over a single chain, mempool and ledger.
//!
//! The seed reproduced Fig 4 one task per chain; a marketplace serves
//! hundreds of tasks racing through shared blocks. [`HitRegistry`] is the
//! factory-plus-router contract that makes that possible:
//!
//! * **Multi-instance addressing** — every created HIT gets a [`HitId`]
//!   and its own derived contract address
//!   (`Address::contract_address(registry, id)`), so each instance's
//!   escrow is isolated on the shared ledger while all instances share
//!   one mempool and one block gas budget.
//! * **Routing** — [`RegistryMessage::Hit`] wraps any [`HitMessage`] with
//!   its target id; the registry re-scopes the execution environment to
//!   the instance's address ([`dragoon_chain::ExecEnv::scoped`]) and
//!   delegates.
//! * **Batched settlement** — in [`SettlementMode::Batched`] every
//!   instance runs with deferred verification; at each block boundary
//!   the registry drives every instance's queued rejection proofs
//!   through `dragoon_crypto::vpke::batch_verify_each`.
//! * **Parallel execution** — the registry implements
//!   [`dragoon_chain::ParallelStateMachine`]: every transaction declares
//!   an access set (its target instance plus the ledger accounts the
//!   wrapped [`HitMessage::access_set`] names), instances shard by
//!   [`HitId`] ([`RegistryShard`]), and `Create` executes speculatively
//!   against a reserved id (the next counter value), so spawn-heavy
//!   blocks parallelize instead of serializing on a barrier.

use crate::contract::{BatchStats, HitContract, HitError, HitEvent, PendingVerdict};
use crate::msg::{HitMessage, PublishParams};
use crate::PhaseWindows;
use dragoon_chain::store::{Persist, PersistDelta, Reader, StoreError};
use dragoon_chain::{
    resolve_threads, AccessSet, CalldataStats, CaptureStateMachine, ChainMessage, ExecEnv,
    Journaled, ParallelStateMachine, StateJournal, StateMachine,
};
use dragoon_crypto::vpke::{self, DecryptionProof, DecryptionStatement};
use dragoon_ledger::Address;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Deref;
use std::sync::{RwLock, RwLockReadGuard};

/// Identifier of a HIT instance within a registry.
pub type HitId = u64;

/// Runtime bytecode size of the registry contract (factory + router +
/// the full Fig 4 instance logic), used for deployment gas.
pub const REGISTRY_CODE_LEN: usize = 9_800;

/// How rejection proofs are cryptographically verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SettlementMode {
    /// Every `evaluate` / `outrange` proof verifies inline in its own
    /// transaction (the paper's per-proof path).
    PerProof,
    /// Proofs are queued per block and dispatched through one batched
    /// verification at the block boundary.
    Batched,
}

/// Transactions accepted by the registry.
#[derive(Clone, Debug)]
pub enum RegistryMessage {
    /// Creates a new HIT instance *and* publishes it in the same
    /// transaction (the factory pattern a marketplace dApp uses): the
    /// sender becomes the requester and the budget is frozen into the
    /// new instance's escrow.
    Create {
        /// Phase windows for the new instance.
        windows: PhaseWindows,
        /// The publish parameters (Fig 4 phase 1).
        params: PublishParams,
    },
    /// A message routed to instance `id`.
    Hit {
        /// The target instance.
        id: HitId,
        /// The wrapped message.
        msg: HitMessage,
    },
}

/// Events emitted by the registry.
#[derive(Clone, Debug, PartialEq)]
pub enum RegistryEvent {
    /// A HIT instance was created.
    Created {
        /// Its registry id.
        id: HitId,
        /// Its derived contract address (escrow account).
        addr: Address,
        /// The requester who created and funded it.
        requester: Address,
    },
    /// An instance-level event.
    Hit {
        /// The emitting instance.
        id: HitId,
        /// The wrapped event.
        event: HitEvent,
    },
}

/// Errors that revert a registry transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum RegistryError {
    /// The referenced instance does not exist.
    UnknownHit(HitId),
    /// The routed instance reverted.
    Hit(HitId, HitError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownHit(id) => write!(f, "unknown hit #{id}"),
            RegistryError::Hit(id, e) => write!(f, "hit #{id}: {e}"),
        }
    }
}

impl ChainMessage for RegistryMessage {
    fn calldata(&self) -> CalldataStats {
        match self {
            // Create carries the full publish payload plus the windows.
            RegistryMessage::Create { params, .. } => HitMessage::Publish(params.clone())
                .calldata()
                .plus(&CalldataStats {
                    zero: 12,
                    nonzero: 12,
                }),
            // Routed messages carry an 8-byte id on top of the payload.
            RegistryMessage::Hit { msg, .. } => msg.calldata().plus(&CalldataStats {
                zero: 6,
                nonzero: 2,
            }),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            RegistryMessage::Create { .. } => "publish",
            RegistryMessage::Hit { msg, .. } => msg.label(),
        }
    }
}

/// One hosted instance.
#[derive(Clone, Debug, PartialEq)]
struct HitInstance {
    addr: Address,
    hit: HitContract,
}

/// Number of independently-locked instance shards. A power of two so the
/// shard of an id is a mask; 16 keeps per-shard maps at ~62k instances
/// even at the million-HIT tier while staying cheap to snapshot-encode
/// in parallel.
const SHARD_COUNT: usize = 16;

fn shard_of(id: HitId) -> usize {
    (id as usize) & (SHARD_COUNT - 1)
}

/// The registry's instance map, split into [`SHARD_COUNT`]
/// independently-locked shards keyed by instance id. Ids are assigned
/// sequentially, so consecutive instances land on distinct shards and
/// the per-shard `BTreeMap`s stay balanced.
///
/// Locking discipline: every mutating path holds `&mut self` and goes
/// through [`RwLock::get_mut`] — no lock is ever *contended* there, so
/// serial execution pays nothing. Shared-reference reads
/// ([`ShardedHits::get`], [`ShardedHits::with`]) take a read lock on one
/// shard, which is what lets snapshot encoding fan shards out across
/// threads while the registry sits between transactions.
struct ShardedHits {
    shards: Vec<RwLock<BTreeMap<HitId, HitInstance>>>,
    /// Instance ids handed out mutably (or inserted/removed) since the
    /// last [`ShardedHits::mark_clean`] — the working set an incremental
    /// snapshot encodes. An over-approximation: `inst_mut` marks even
    /// when the caller only reads, and the serial vs. parallel executors
    /// over-approximate differently (rollbacks mark too), so delta
    /// *bytes* are not thread-count-deterministic — the composed state
    /// is. Transient bookkeeping: excluded from equality and encoding.
    dirty: BTreeSet<HitId>,
}

impl ShardedHits {
    fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
            dirty: BTreeSet::new(),
        }
    }

    fn read_shard(&self, id: HitId) -> RwLockReadGuard<'_, BTreeMap<HitId, HitInstance>> {
        self.shards[shard_of(id)]
            .read()
            .expect("shard lock poisoned")
    }

    /// A read-locked handle on instance `id`'s contract state.
    fn get(&self, id: HitId) -> Option<HitRef<'_>> {
        let guard = self.read_shard(id);
        if guard.contains_key(&id) {
            Some(HitRef { guard, id })
        } else {
            None
        }
    }

    /// Runs `f` on instance `id` under its shard's read lock.
    fn with<R>(&self, id: HitId, f: impl FnOnce(&HitInstance) -> R) -> Option<R> {
        self.read_shard(id).get(&id).map(f)
    }

    /// Lock-free exclusive access (`&mut self` proves no reader exists).
    fn inst_mut(&mut self, id: HitId) -> Option<&mut HitInstance> {
        self.dirty.insert(id);
        self.shards[shard_of(id)]
            .get_mut()
            .expect("shard lock poisoned")
            .get_mut(&id)
    }

    fn insert(&mut self, id: HitId, inst: HitInstance) {
        self.dirty.insert(id);
        self.shards[shard_of(id)]
            .get_mut()
            .expect("shard lock poisoned")
            .insert(id, inst);
    }

    fn remove(&mut self, id: HitId) {
        self.dirty.insert(id);
        self.shards[shard_of(id)]
            .get_mut()
            .expect("shard lock poisoned")
            .remove(&id);
    }

    /// The dirty working set as `(id, instance-or-tombstone)` pairs,
    /// ascending by id — what an incremental snapshot encodes. `None`
    /// means the instance no longer exists (removed since the mark).
    fn delta_instances(&self) -> Vec<(HitId, Option<HitInstance>)> {
        self.dirty
            .iter()
            .map(|&id| (id, self.read_shard(id).get(&id).cloned()))
            .collect()
    }

    fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    fn mark_clean(&mut self) {
        self.dirty.clear();
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.read().expect("shard lock poisoned").is_empty())
    }

    /// All instance ids, ascending.
    fn ids(&self) -> Vec<HitId> {
        let mut ids: Vec<HitId> = Vec::new();
        for s in &self.shards {
            ids.extend(s.read().expect("shard lock poisoned").keys().copied());
        }
        ids.sort_unstable();
        ids
    }

    /// Visits every instance, shard by shard (not id order — use only
    /// for order-independent aggregation).
    fn for_each(&self, mut f: impl FnMut(HitId, &HitInstance)) {
        for s in &self.shards {
            for (id, inst) in s.read().expect("shard lock poisoned").iter() {
                f(*id, inst);
            }
        }
    }
}

impl Clone for ShardedHits {
    fn clone(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().expect("shard lock poisoned").clone()))
                .collect(),
            dirty: self.dirty.clone(),
        }
    }
}

impl PartialEq for ShardedHits {
    fn eq(&self, other: &Self) -> bool {
        self.shards.iter().zip(&other.shards).all(|(a, b)| {
            *a.read().expect("shard lock poisoned") == *b.read().expect("shard lock poisoned")
        })
    }
}

impl fmt::Debug for ShardedHits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedHits")
            .field("shards", &SHARD_COUNT)
            .field("len", &self.len())
            .finish()
    }
}

/// A read-locked reference to one hosted instance's contract state, as
/// returned by [`HitRegistry::hit`]. Dereferences to [`HitContract`];
/// the underlying shard stays read-locked (shared, re-entrant for
/// readers) for the borrow's lifetime.
pub struct HitRef<'a> {
    guard: RwLockReadGuard<'a, BTreeMap<HitId, HitInstance>>,
    id: HitId,
}

impl Deref for HitRef<'_> {
    type Target = HitContract;

    fn deref(&self) -> &HitContract {
        &self
            .guard
            .get(&self.id)
            .expect("presence checked on construction")
            .hit
    }
}

/// One undo record of the registry's transaction journal. Granularity is
/// **per instance**: a transaction that evaluates HIT #7 journals (at
/// most) HIT #7's own undo state — HIT #8 and the other thousands of
/// hosted instances are never copied.
#[derive(Clone, Debug, PartialEq)]
enum RegistryUndo {
    /// Instance `id` was created (and its escrow funded) this
    /// transaction; undo removes it and rewinds the id counter.
    Created(HitId),
    /// Instance `id`'s own journal was opened for this transaction;
    /// commit/rollback propagate into it.
    Opened(HitId),
    /// Instance `id` left the live set (settled at this clock tick);
    /// undo re-inserts it. Recorded only by instrumented clock ticks —
    /// message-path sweeps happen lazily at the next tick.
    Settled(HitId),
    /// Prior value of the cross-instance batch counters, journaled
    /// before a clock tick's batched-settlement dispatch records into
    /// them.
    Stats(BatchStats),
}

/// An in-flight overlapped settlement verification: the pending-verdict
/// layout it was started from (per live instance, flattened VPKE items)
/// and the thread computing the chunk verdicts.
struct OverlapJob {
    expected: Vec<(HitId, Vec<(DecryptionStatement, DecryptionProof)>)>,
    handle: std::thread::JoinHandle<Vec<Vec<bool>>>,
}

/// Overlapped-verification bookkeeping. Local machinery, like the
/// journal: excluded from equality, encoding, and clones (a cloned
/// registry — replica, checkpoint — starts with no job in flight).
#[derive(Default)]
struct OverlapState {
    pending: Option<OverlapJob>,
    /// Joins whose pending set matched the drained one (precomputed
    /// verdicts used).
    hits: u64,
    /// Joins whose layout changed between handoff and the block
    /// boundary (verdicts recomputed inline).
    misses: u64,
}

impl Clone for OverlapState {
    fn clone(&self) -> Self {
        Self {
            pending: None,
            hits: self.hits,
            misses: self.misses,
        }
    }
}

impl fmt::Debug for OverlapState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OverlapState")
            .field("pending", &self.pending.is_some())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

/// The marketplace registry contract.
#[derive(Clone, Debug)]
pub struct HitRegistry {
    mode: SettlementMode,
    /// Hosted instances, sharded by id (see [`ShardedHits`]).
    hits: ShardedHits,
    /// Unsettled instance ids — block ticks are O(live), not O(ever
    /// created); swept lazily at each clock tick.
    live: BTreeSet<HitId>,
    next_id: HitId,
    /// Cross-instance (per-block) batch counters.
    batch_stats: BatchStats,
    /// Per-transaction undo journal (see [`RegistryUndo`]).
    journal: StateJournal<RegistryUndo>,
    /// Thread budget for block-boundary settlement verification
    /// (`0` = resolve from `DRAGOON_THREADS` / available parallelism).
    verify_threads: usize,
    /// In-flight overlapped verification (see
    /// [`HitRegistry::begin_overlap_verify`]).
    overlap: OverlapState,
}

impl PartialEq for HitRegistry {
    /// Compares observable contract state; the journal is transient
    /// bookkeeping (as in [`dragoon_ledger::Ledger`]'s equality) and
    /// `verify_threads` is a local performance knob — neither may
    /// distinguish two chains (the equivalence suites compare registries
    /// across thread counts).
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode
            && self.hits == other.hits
            && self.live == other.live
            && self.next_id == other.next_id
            && self.batch_stats == other.batch_stats
    }
}

impl Journaled for HitRegistry {
    fn begin_tx(&mut self) {
        self.journal.begin();
    }

    fn commit_tx(&mut self) {
        for undo in self.journal.drain_commit() {
            if let RegistryUndo::Opened(id) = undo {
                self.hits
                    .inst_mut(id)
                    .expect("opened instance exists")
                    .hit
                    .commit_tx();
            }
        }
    }

    fn rollback_tx(&mut self) {
        for undo in self.journal.drain_rollback() {
            match undo {
                RegistryUndo::Opened(id) => self
                    .hits
                    .inst_mut(id)
                    .expect("opened instance exists")
                    .hit
                    .rollback_tx(),
                RegistryUndo::Created(id) => {
                    self.hits.remove(id);
                    self.live.remove(&id);
                    self.next_id -= 1;
                }
                RegistryUndo::Settled(id) => {
                    self.live.insert(id);
                }
                RegistryUndo::Stats(prior) => {
                    self.batch_stats = prior;
                }
            }
        }
    }
}

/// The captured undo log of one *committed* registry transaction (or
/// instrumented clock tick): everything needed to unwind the commit
/// later. This is what `dragoon-net` replicas stack per applied block so
/// a losing fork can be reorged away — the plain [`Journaled`] bracket
/// only supports rollback-before-commit.
#[derive(Debug, Default)]
pub struct RegistryCapture(Vec<CaptureEntry>);

impl RegistryCapture {
    /// `true` when the committed transaction touched nothing.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// One captured undo entry. Mirrors [`RegistryUndo`], with `Opened`
/// carrying the touched instance's own captured snapshot.
#[derive(Debug)]
enum CaptureEntry {
    Created(HitId),
    Opened(HitId, Option<Box<HitContract>>),
    Settled(HitId),
    Stats(BatchStats),
}

impl HitRegistry {
    /// Commits the open transaction like [`Journaled::commit_tx`], but
    /// returns the undo log — with each opened instance's captured
    /// snapshot folded in — so the commit can be unwound later with
    /// [`HitRegistry::revert_capture`].
    pub fn commit_tx_captured(&mut self) -> RegistryCapture {
        let undos = self.journal.drain_commit();
        let mut entries = Vec::with_capacity(undos.len());
        for undo in undos {
            entries.push(match undo {
                RegistryUndo::Created(id) => CaptureEntry::Created(id),
                RegistryUndo::Opened(id) => CaptureEntry::Opened(
                    id,
                    self.hits
                        .inst_mut(id)
                        .expect("opened instance exists")
                        .hit
                        .commit_tx_captured(),
                ),
                RegistryUndo::Settled(id) => CaptureEntry::Settled(id),
                RegistryUndo::Stats(prior) => CaptureEntry::Stats(prior),
            });
        }
        RegistryCapture(entries)
    }

    /// Unwinds a previously captured commit (see
    /// [`HitRegistry::commit_tx_captured`]). Captures must be reverted
    /// in reverse commit order (newest first); entries replay LIFO.
    pub fn revert_capture(&mut self, capture: RegistryCapture) {
        for entry in capture.0.into_iter().rev() {
            match entry {
                CaptureEntry::Created(id) => {
                    self.hits.remove(id);
                    self.live.remove(&id);
                    self.next_id -= 1;
                }
                CaptureEntry::Opened(id, snapshot) => self
                    .hits
                    .inst_mut(id)
                    .expect("captured instance exists")
                    .hit
                    .revert_capture(snapshot),
                CaptureEntry::Settled(id) => {
                    self.live.insert(id);
                }
                CaptureEntry::Stats(prior) => {
                    self.batch_stats = prior;
                }
            }
        }
    }
}

impl Default for HitRegistry {
    fn default() -> Self {
        Self::new(SettlementMode::PerProof)
    }
}

impl HitRegistry {
    /// An empty registry with the given settlement mode.
    pub fn new(mode: SettlementMode) -> Self {
        Self {
            mode,
            hits: ShardedHits::new(),
            live: BTreeSet::new(),
            next_id: 0,
            batch_stats: BatchStats::default(),
            journal: StateJournal::new(),
            verify_threads: 0,
            overlap: OverlapState::default(),
        }
    }

    /// Sets the thread budget for block-boundary settlement verification
    /// (`0` resolves from `DRAGOON_THREADS`, then available
    /// parallelism). Verdicts are thread-count-independent.
    pub fn with_verify_threads(mut self, threads: usize) -> Self {
        self.verify_threads = threads;
        self
    }

    /// The settlement mode in force.
    pub fn mode(&self) -> SettlementMode {
        self.mode
    }

    /// Number of instances ever created.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether no instance exists yet.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Read-only access to an instance's contract state. The returned
    /// handle read-locks the instance's shard (shared with other
    /// readers) for its lifetime and dereferences to [`HitContract`].
    pub fn hit(&self, id: HitId) -> Option<HitRef<'_>> {
        self.hits.get(id)
    }

    /// An instance's derived contract address (its escrow account).
    pub fn hit_address(&self, id: HitId) -> Option<Address> {
        self.hits.with(id, |i| i.addr)
    }

    /// All instance ids, ascending.
    pub fn hit_ids(&self) -> Vec<HitId> {
        self.hits.ids()
    }

    /// Ids of instances that have not settled yet, ascending.
    pub fn live_hits(&self) -> Vec<HitId> {
        let mut ids = Vec::new();
        self.hits.for_each(|id, inst| {
            if !inst.hit.is_settled() {
                ids.push(id);
            }
        });
        ids.sort_unstable();
        ids
    }

    /// Number of settled (closed or cancelled) instances.
    pub fn settled_count(&self) -> usize {
        let mut count = 0;
        self.hits.for_each(|_, inst| {
            if inst.hit.is_settled() {
                count += 1;
            }
        });
        count
    }

    /// Batched-settlement counters: the registry's own per-block
    /// cross-instance batches, plus anything an instance dispatched on
    /// its own (only possible via an explicit `Finalize` racing its own
    /// verdicts within one block).
    pub fn batch_stats(&self) -> BatchStats {
        let mut total = self.batch_stats;
        self.hits
            .for_each(|_, inst| total.absorb(&inst.hit.batch_stats()));
        total
    }

    /// Kicks off block N's settlement verification on a background
    /// thread so it overlaps round N+1's agent-step generation and
    /// proving. Snapshots every live instance's queued verdict items
    /// (without draining — the queues stay journal-consistent) and
    /// starts the same `par_batch_verify_chunks_with` fan-out the next
    /// clock tick would run. The tick joins the job and uses the
    /// precomputed verdicts only if the drained queues still match the
    /// snapshot exactly (the guarantee the round structure provides:
    /// between the end of round N and round N+1's boundary, only the
    /// mempool fills); any mismatch falls back to inline verification,
    /// so committed state is byte-identical either way — verdicts are
    /// pure functions of (statement, proof).
    ///
    /// No-op when a job is already in flight, when nothing is queued,
    /// or in per-proof mode (queues are always empty there). Replicas
    /// and recovery never call this, so replay takes the inline path.
    pub fn begin_overlap_verify(&mut self) {
        if self.overlap.pending.is_some() {
            return;
        }
        let mut expected: Vec<(HitId, Vec<(DecryptionStatement, DecryptionProof)>)> = Vec::new();
        for &id in &self.live {
            let items = self
                .hits
                .with(id, |inst| {
                    if inst.hit.is_settled() {
                        Vec::new()
                    } else {
                        inst.hit.peek_pending_items()
                    }
                })
                .unwrap_or_default();
            if !items.is_empty() {
                expected.push((id, items));
            }
        }
        if expected.is_empty() {
            return;
        }
        let threads = resolve_threads(self.verify_threads);
        let chunks: Vec<Vec<(DecryptionStatement, DecryptionProof)>> =
            expected.iter().map(|(_, items)| items.clone()).collect();
        let handle = std::thread::Builder::new()
            .name("dragoon-overlap-verify".into())
            .spawn(move || {
                let chunk_refs: Vec<&[(DecryptionStatement, DecryptionProof)]> =
                    chunks.iter().map(Vec::as_slice).collect();
                vpke::par_batch_verify_chunks_with(&chunk_refs, threads)
            })
            .expect("spawn overlap-verify thread");
        self.overlap.pending = Some(OverlapJob { expected, handle });
    }

    /// Joins (and discards) any in-flight overlapped verification — the
    /// run-end barrier, so no verifier thread outlives the registry's
    /// useful life.
    pub fn join_overlap(&mut self) {
        if let Some(job) = self.overlap.pending.take() {
            let _ = job.handle.join();
        }
    }

    /// Overlapped-verification counters: `(hits, misses)` — joins whose
    /// precomputed verdicts were used vs. recomputed inline.
    pub fn overlap_stats(&self) -> (u64, u64) {
        (self.overlap.hits, self.overlap.misses)
    }

    /// Joins the in-flight overlap job (if any) and returns its chunk
    /// verdicts when the drained pending set matches the layout the job
    /// was started from; `None` (recompute inline) otherwise.
    fn take_overlap_results(
        &mut self,
        drained: &[(HitId, Vec<PendingVerdict>)],
    ) -> Option<Vec<Vec<bool>>> {
        let job = self.overlap.pending.take()?;
        let verdicts = job.handle.join().expect("overlap verifier panicked");
        let matches = job.expected.len() == drained.len()
            && job.expected.iter().zip(drained).all(
                |((expect_id, expect_items), (id, pending))| {
                    expect_id == id
                        && pending.iter().map(|v| v.items.len()).sum::<usize>()
                            == expect_items.len()
                        && pending
                            .iter()
                            .flat_map(|v| v.items.iter())
                            .zip(expect_items)
                            .all(|(a, b)| a == b)
                },
            );
        if matches {
            self.overlap.hits += 1;
            Some(verdicts)
        } else {
            self.overlap.misses += 1;
            None
        }
    }
}

impl StateMachine for HitRegistry {
    type Msg = RegistryMessage;
    type Event = RegistryEvent;
    type Error = RegistryError;

    fn on_message(
        &mut self,
        env: &mut ExecEnv<'_, RegistryEvent>,
        sender: Address,
        msg: RegistryMessage,
    ) -> Result<(), RegistryError> {
        match msg {
            RegistryMessage::Create { windows, params } => {
                let id = self.next_id;
                // The id space is checked: at million-HIT scale a wrapped
                // counter would silently alias instance 0's escrow.
                let next = id.checked_add(1).expect("instance id space exhausted");
                let addr = Address::contract_address(&env.contract, next);
                let mut hit = HitContract::new(windows);
                if self.mode == SettlementMode::Batched {
                    hit = hit.with_deferred_verification();
                }
                // Registry bookkeeping: id counter + address mapping.
                env.gas.charge("sstore", 2 * env.schedule.sstore_set);
                env.scoped(
                    addr,
                    |child| hit.on_message(child, sender, HitMessage::Publish(params)),
                    |event| RegistryEvent::Hit { id, event },
                )
                .map_err(|e| RegistryError::Hit(id, e))?;
                env.emit(
                    RegistryEvent::Created {
                        id,
                        addr,
                        requester: sender,
                    },
                    64,
                );
                self.next_id = next;
                self.hits.insert(id, HitInstance { addr, hit });
                self.live.insert(id);
                self.journal.record(RegistryUndo::Created(id));
                Ok(())
            }
            RegistryMessage::Hit { id, msg } => {
                let inst = self
                    .hits
                    .inst_mut(id)
                    .ok_or(RegistryError::UnknownHit(id))?;
                // Routing lookup.
                env.gas.charge("sload", env.schedule.sload);
                // Open the addressed instance's own journal under this
                // transaction's scope: only the touched instance records
                // undo state, and only if it actually mutates.
                if self.journal.recording() {
                    inst.hit.begin_tx();
                    self.journal.record(RegistryUndo::Opened(id));
                }
                let hit = &mut inst.hit;
                let addr = inst.addr;
                env.scoped(
                    addr,
                    |child| hit.on_message(child, sender, msg),
                    |event| RegistryEvent::Hit { id, event },
                )
                .map_err(|e| RegistryError::Hit(id, e))
            }
        }
    }

    fn on_clock(&mut self, env: &mut ExecEnv<'_, RegistryEvent>, round: u64) {
        // Block boundary, phase 1: drain every instance's queued
        // rejection proofs and settle the whole block's worth at once —
        // one batched verification per instance, fanned out across OS
        // threads ([`vpke::par_batch_verify_chunks`]). Verdicts are
        // identical to the previous single concatenated batch (and to
        // per-proof verification): batch verdicts are per-item facts, so
        // the partitioning is free to follow the parallelism.
        let live: Vec<HitId> = self.live.iter().copied().collect();
        // Instrumented tick (an open registry bracket around the clock
        // tick — the captured block path of `dragoon-net` replicas):
        // open every live unsettled instance's own journal exactly once
        // up front, so mutations from *any* phase below are recorded.
        if self.journal.recording() {
            for &id in &live {
                let inst = self.hits.inst_mut(id).expect("live instance exists");
                if inst.hit.is_settled() {
                    continue;
                }
                inst.hit.begin_tx();
                self.journal.record(RegistryUndo::Opened(id));
            }
        }
        let mut drained: Vec<(HitId, Vec<PendingVerdict>)> = Vec::new();
        for &id in &live {
            let inst = self.hits.inst_mut(id).expect("live instance exists");
            if inst.hit.is_settled() {
                continue;
            }
            let pending = inst.hit.take_pending();
            if !pending.is_empty() {
                drained.push((id, pending));
            }
        }
        // Join any overlapped verification started after the previous
        // block — outside the emptiness guard, so a stale job can never
        // linger (an empty drain against a non-empty snapshot is a
        // mismatch and the job is discarded).
        let precomputed = self.take_overlap_results(&drained);
        // Guard on drained verdicts, not items: a verdict whose proof
        // has zero VPKE items (all mismatches publicly visible) is
        // vacuously valid and must still be applied.
        if !drained.is_empty() {
            let total: usize = drained
                .iter()
                .map(|(_, pending)| pending.iter().map(|v| v.items.len()).sum::<usize>())
                .sum();
            let mut sp = dragoon_trace::span(dragoon_trace::SpanKind::Verify, round);
            sp.arg("instances", drained.len() as u64);
            sp.arg("items", total as u64);
            sp.arg("overlapped", u64::from(precomputed.is_some()));
            // The drained verdict layout is deterministic; whether the
            // overlapped thread supplied the results is not (it depends
            // on the store mode), so only counts enter the event.
            dragoon_trace::event(
                dragoon_trace::SpanKind::Verify,
                round,
                &[("instances", drained.len() as u64), ("items", total as u64)],
            );
            let results = precomputed.unwrap_or_else(|| {
                let chunks: Vec<Vec<(DecryptionStatement, DecryptionProof)>> = drained
                    .iter()
                    .map(|(_, pending)| {
                        pending
                            .iter()
                            .flat_map(|v| v.items.iter().copied())
                            .collect()
                    })
                    .collect();
                let chunk_refs: Vec<&[(DecryptionStatement, DecryptionProof)]> =
                    chunks.iter().map(Vec::as_slice).collect();
                vpke::par_batch_verify_chunks_with(
                    &chunk_refs,
                    resolve_threads(self.verify_threads),
                )
            });
            if total > 0 {
                let prior = self.batch_stats;
                self.journal.record(RegistryUndo::Stats(prior));
                self.batch_stats.record(total as u64);
            }
            for ((id, pending), verdicts) in drained.into_iter().zip(results) {
                let inst = self.hits.inst_mut(id).expect("drained from this map");
                let hit = &mut inst.hit;
                env.scoped(
                    inst.addr,
                    |child| hit.apply_verdicts(child, pending, &verdicts),
                    |event| RegistryEvent::Hit { id, event },
                );
            }
        }
        // Phase 2: tick every live instance's phase deadlines (their own
        // resolve_pending is a no-op now that the queues are drained).
        for &id in &live {
            let inst = self.hits.inst_mut(id).expect("live instance exists");
            if inst.hit.is_settled() {
                continue;
            }
            let hit = &mut inst.hit;
            env.scoped(
                inst.addr,
                |child| hit.on_clock(child, round),
                |event| RegistryEvent::Hit { id, event },
            );
        }
        // Sweep: instances settled this block (by deadline, Finalize or
        // Cancel) leave the live set. Instrumented ticks journal each
        // removal so a reorg can resurrect the live set.
        if self.journal.recording() {
            let settled: Vec<HitId> = self
                .live
                .iter()
                .copied()
                .filter(|&id| {
                    self.hits
                        .with(id, |inst| inst.hit.is_settled())
                        .expect("live instance exists")
                })
                .collect();
            for id in settled {
                self.live.remove(&id);
                self.journal.record(RegistryUndo::Settled(id));
            }
        } else {
            let hits = &self.hits;
            self.live.retain(|&id| {
                !hits
                    .with(id, |inst| inst.hit.is_settled())
                    .expect("live instance exists")
            });
        }
    }
}

/// One hosted (or speculatively reserved) instance extracted for a
/// parallel-executor worker thread: an owned clone of the instance (or
/// an empty slot the group's `Create` populates) plus its registry id
/// and derived escrow address. Opaque outside this crate — the executor
/// only moves it between threads and hands it back through
/// [`ParallelStateMachine::shard_install`].
pub struct RegistryShard {
    id: HitId,
    addr: Address,
    mode: SettlementMode,
    inst: Option<HitInstance>,
    /// The group's creation message built this instance; install must
    /// register it and advance the id counter.
    created: bool,
    /// The instance was built by the *currently open* journal bracket
    /// (no per-instance journal exists yet; rollback drops it whole).
    tx_created: bool,
}

impl CaptureStateMachine for HitRegistry {
    type Capture = RegistryCapture;

    fn commit_tx_captured(&mut self) -> RegistryCapture {
        HitRegistry::commit_tx_captured(self)
    }

    fn revert_capture(&mut self, capture: RegistryCapture) {
        HitRegistry::revert_capture(self, capture)
    }
}

impl ParallelStateMachine for HitRegistry {
    type Shard = RegistryShard;

    fn reservation_base(&self) -> u64 {
        self.next_id
    }

    fn access_set(
        &self,
        contract: Address,
        sender: Address,
        msg: &RegistryMessage,
        reserver: &mut dragoon_chain::IdReserver,
    ) -> AccessSet {
        match msg {
            // Creation reserves the id serial execution would assign and
            // becomes an ordinary instance write. The budget freeze
            // *debits* the sender — a commutative declared access, so
            // several spawns from the same funded sender stay in separate
            // groups (the executor sums their deltas at merge and
            // validates the total against the sender's base balance) —
            // and funds the derived escrow, an ordinary write.
            RegistryMessage::Create { .. } => {
                let id = reserver.reserve();
                let escrow = Address::contract_address(&contract, id + 1);
                AccessSet::create(id)
                    .debits_accounts([sender])
                    .writes_accounts([escrow])
            }
            RegistryMessage::Hit { id, msg } => {
                if let Some(access_set) = self.hits.with(*id, |inst| {
                    let access = msg.access_set(inst.addr, &inst.hit);
                    AccessSet::instance(*id)
                        .reads_accounts(access.reads)
                        .writes_accounts(access.writes)
                }) {
                    access_set
                } else if reserver.is_reserved(*id) {
                    // Routed to an instance another message of this batch
                    // speculatively creates: group with the creation. The
                    // embryo escrow is the only attributable account (the
                    // instance state to refine the declaration does not
                    // exist yet); everything else is covered by senders
                    // and the dynamic touch validation.
                    let escrow = Address::contract_address(&contract, id + 1);
                    AccessSet::instance(*id).writes_accounts([escrow])
                } else {
                    // Routes to unknown instances revert against global
                    // state (no sharding target exists): serial barrier.
                    AccessSet::global()
                }
            }
        }
    }

    fn shard_snapshot(&self, key: u64) -> Option<RegistryShard> {
        self.hits.with(key, |inst| RegistryShard {
            id: key,
            addr: inst.addr,
            mode: self.mode,
            inst: Some(inst.clone()),
            created: false,
            tx_created: false,
        })
    }

    fn shard_reserve(&self, key: u64, contract: Address) -> RegistryShard {
        RegistryShard {
            id: key,
            addr: Address::contract_address(&contract, key + 1),
            mode: self.mode,
            inst: None,
            created: false,
            tx_created: false,
        }
    }

    fn shard_install(&mut self, key: u64, shard: RegistryShard) {
        debug_assert_eq!(key, shard.id, "shard returned under a foreign key");
        let Some(inst) = shard.inst else {
            // A reserved shard whose creation never landed (the executor
            // falls back serially on a reverted creation, so this is the
            // defensive no-op path).
            return;
        };
        if shard.created {
            // Speculative creation committed: register the instance
            // exactly as the serial `Create` arm does.
            self.next_id = self
                .next_id
                .max(key.checked_add(1).expect("instance id space exhausted"));
            self.live.insert(key);
        }
        self.hits.insert(key, inst);
    }

    fn shard_on_message(
        shard: &mut RegistryShard,
        env: &mut ExecEnv<'_, RegistryEvent>,
        sender: Address,
        msg: RegistryMessage,
    ) -> Result<(), RegistryError> {
        match msg {
            RegistryMessage::Create { windows, params } => {
                // Mirrors the `Create` arm of `on_message` exactly (gas
                // charges, event order, error mapping) against the
                // reserved shard instead of the registry map.
                debug_assert!(
                    shard.inst.is_none(),
                    "a reserved id is created at most once per batch"
                );
                let id = shard.id;
                let addr = shard.addr;
                let mut hit = HitContract::new(windows);
                if shard.mode == SettlementMode::Batched {
                    hit = hit.with_deferred_verification();
                }
                // Registry bookkeeping: id counter + address mapping.
                env.gas.charge("sstore", 2 * env.schedule.sstore_set);
                env.scoped(
                    addr,
                    |child| hit.on_message(child, sender, HitMessage::Publish(params)),
                    |event| RegistryEvent::Hit { id, event },
                )
                .map_err(|e| RegistryError::Hit(id, e))?;
                env.emit(
                    RegistryEvent::Created {
                        id,
                        addr,
                        requester: sender,
                    },
                    64,
                );
                shard.inst = Some(HitInstance { addr, hit });
                shard.created = true;
                shard.tx_created = true;
                Ok(())
            }
            RegistryMessage::Hit { id, msg } => {
                debug_assert_eq!(id, shard.id, "message routed to the wrong shard");
                // Mirrors the `Hit` arm: the unknown-instance revert
                // precedes the routing-lookup gas charge, exactly as the
                // serial map lookup fails before charging.
                let Some(inst) = &mut shard.inst else {
                    return Err(RegistryError::UnknownHit(id));
                };
                // Routing lookup.
                env.gas.charge("sload", env.schedule.sload);
                let hit = &mut inst.hit;
                let addr = inst.addr;
                env.scoped(
                    addr,
                    |child| hit.on_message(child, sender, msg),
                    |event| RegistryEvent::Hit { id, event },
                )
                .map_err(|e| RegistryError::Hit(id, e))
            }
        }
    }

    fn shard_begin_tx(shard: &mut RegistryShard) {
        shard.tx_created = false;
        if let Some(inst) = &mut shard.inst {
            inst.hit.begin_tx();
        }
    }

    fn shard_commit_tx(shard: &mut RegistryShard) {
        if shard.tx_created {
            // The creation transaction: the instance has no per-instance
            // journal yet (serial creation undoes via the registry's
            // `Created` record, not an `Opened` one).
            shard.tx_created = false;
        } else if let Some(inst) = &mut shard.inst {
            inst.hit.commit_tx();
        }
    }

    fn shard_rollback_tx(shard: &mut RegistryShard) {
        if shard.tx_created {
            shard.inst = None;
            shard.created = false;
            shard.tx_created = false;
        } else if let Some(inst) = &mut shard.inst {
            inst.hit.rollback_tx();
        }
    }
}

// -- durable state ------------------------------------------------------

impl Persist for SettlementMode {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            SettlementMode::PerProof => 0,
            SettlementMode::Batched => 1,
        });
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        match u8::get(r)? {
            0 => Ok(SettlementMode::PerProof),
            1 => Ok(SettlementMode::Batched),
            t => Err(StoreError::Corrupt(format!("bad settlement mode tag {t}"))),
        }
    }
}

impl Persist for HitInstance {
    fn put(&self, out: &mut Vec<u8>) {
        self.addr.put(out);
        self.hit.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(Self {
            addr: Address::get(r)?,
            hit: HitContract::get(r)?,
        })
    }
}

/// Above this many instances, shards encode on scoped threads.
const PARALLEL_ENCODE_THRESHOLD: usize = 4_096;

impl Persist for ShardedHits {
    /// Shards encode independently and concatenate in shard order —
    /// deterministic, and large registries encode their shards on scoped
    /// threads (each thread read-locks only its own shard).
    fn put(&self, out: &mut Vec<u8>) {
        (SHARD_COUNT as u64).put(out);
        let encode_shard = |shard: &RwLock<BTreeMap<HitId, HitInstance>>| {
            let mut buf = Vec::new();
            let guard = shard.read().expect("shard lock poisoned");
            guard.len().put(&mut buf);
            for (id, inst) in guard.iter() {
                id.put(&mut buf);
                inst.put(&mut buf);
            }
            buf
        };
        let chunks: Vec<Vec<u8>> = if self.len() >= PARALLEL_ENCODE_THRESHOLD {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || encode_shard(shard)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard encoder panicked"))
                    .collect()
            })
        } else {
            self.shards.iter().map(encode_shard).collect()
        };
        for chunk in &chunks {
            out.extend_from_slice(chunk);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let shard_count = u64::get(r)?;
        if shard_count != SHARD_COUNT as u64 {
            return Err(StoreError::Corrupt(format!(
                "snapshot has {shard_count} shards, this build uses {SHARD_COUNT}"
            )));
        }
        let mut hits = ShardedHits::new();
        for shard in 0..SHARD_COUNT {
            let len = usize::get(r)?;
            if len > r.remaining() {
                return Err(StoreError::Corrupt(format!(
                    "shard {shard} length {len} exceeds payload"
                )));
            }
            for _ in 0..len {
                let id = HitId::get(r)?;
                if shard_of(id) != shard {
                    return Err(StoreError::Corrupt(format!(
                        "instance {id} stored in shard {shard}"
                    )));
                }
                hits.insert(id, HitInstance::get(r)?);
            }
        }
        // Decoding is not mutation: a freshly restored registry starts
        // with a clean working set.
        hits.mark_clean();
        Ok(hits)
    }
}

impl Persist for HitRegistry {
    /// Observable contract state only: the journal is transient (empty
    /// between transactions, which is when snapshots are taken) and
    /// `verify_threads` is a local performance knob — both are exactly
    /// what [`PartialEq`] ignores.
    fn put(&self, out: &mut Vec<u8>) {
        debug_assert!(
            !self.journal.recording(),
            "registry snapshots are taken between transactions"
        );
        self.mode.put(out);
        self.hits.put(out);
        self.live.iter().copied().collect::<Vec<HitId>>().put(out);
        self.next_id.put(out);
        self.batch_stats.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        let mode = SettlementMode::get(r)?;
        let hits = <ShardedHits as Persist>::get(r)?;
        let live: Vec<HitId> = Vec::get(r)?;
        let next_id = HitId::get(r)?;
        let batch_stats = BatchStats::get(r)?;
        Ok(Self {
            mode,
            hits,
            live: live.into_iter().collect(),
            next_id,
            batch_stats,
            journal: StateJournal::new(),
            verify_threads: 0,
            overlap: OverlapState::default(),
        })
    }
}

impl PersistDelta for HitRegistry {
    /// The instance working set (with tombstones) plus the small scalar
    /// state. The live set is encoded in full — it is bare ids, pennies
    /// next to the instances — so a delta needs no set-difference
    /// encoding to compose it.
    fn put_delta(&self, out: &mut Vec<u8>) {
        debug_assert!(
            !self.journal.recording(),
            "registry snapshots are taken between transactions"
        );
        self.hits.delta_instances().put(out);
        self.live.iter().copied().collect::<Vec<HitId>>().put(out);
        self.next_id.put(out);
        self.batch_stats.put(out);
    }

    fn apply_delta(&mut self, r: &mut Reader<'_>) -> Result<(), StoreError> {
        let instances: Vec<(HitId, Option<HitInstance>)> = Vec::get(r)?;
        for (id, inst) in instances {
            match inst {
                Some(inst) => self.hits.insert(id, inst),
                None => self.hits.remove(id),
            }
        }
        // Applying a delta is restoration, not mutation.
        self.hits.mark_clean();
        let live: Vec<HitId> = Vec::get(r)?;
        self.live = live.into_iter().collect();
        self.next_id = HitId::get(r)?;
        self.batch_stats = BatchStats::get(r)?;
        Ok(())
    }

    fn mark_clean(&mut self) {
        self.hits.mark_clean();
    }

    fn dirty_units(&self) -> usize {
        self.hits.dirty_len()
    }
}

impl Persist for RegistryMessage {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            RegistryMessage::Create { windows, params } => {
                out.push(0);
                windows.put(out);
                params.put(out);
            }
            RegistryMessage::Hit { id, msg } => {
                out.push(1);
                id.put(out);
                msg.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => RegistryMessage::Create {
                windows: PhaseWindows::get(r)?,
                params: PublishParams::get(r)?,
            },
            1 => RegistryMessage::Hit {
                id: HitId::get(r)?,
                msg: HitMessage::get(r)?,
            },
            t => {
                return Err(StoreError::Corrupt(format!("bad registry message tag {t}")));
            }
        })
    }
}

impl Persist for RegistryEvent {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            RegistryEvent::Created {
                id,
                addr,
                requester,
            } => {
                out.push(0);
                id.put(out);
                addr.put(out);
                requester.put(out);
            }
            RegistryEvent::Hit { id, event } => {
                out.push(1);
                id.put(out);
                event.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, StoreError> {
        Ok(match u8::get(r)? {
            0 => RegistryEvent::Created {
                id: HitId::get(r)?,
                addr: Address::get(r)?,
                requester: Address::get(r)?,
            },
            1 => RegistryEvent::Hit {
                id: HitId::get(r)?,
                event: HitEvent::get(r)?,
            },
            t => return Err(StoreError::Corrupt(format!("bad registry event tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Phase, Settlement};
    use dragoon_chain::{Chain, GasSchedule, TxStatus};
    use dragoon_core::poqoea;
    use dragoon_core::task::{Answer, GoldenStandards};
    use dragoon_crypto::commitment::{Commitment, CommitmentKey};
    use dragoon_crypto::elgamal::{KeyPair, PlaintextRange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BUDGET: u128 = 3_000;

    struct Market {
        rng: StdRng,
        chain: Chain<HitRegistry>,
        kp: KeyPair,
        requester: Address,
        golden: GoldenStandards,
        gs_key: CommitmentKey,
    }

    fn market(mode: SettlementMode) -> Market {
        let mut rng = StdRng::seed_from_u64(0x5e61);
        let kp = KeyPair::generate(&mut rng);
        let requester = Address::from_byte(0xd0);
        let golden = GoldenStandards {
            indexes: vec![0, 2, 4],
            answers: vec![1, 0, 1],
        };
        let gs_key = CommitmentKey::random(&mut rng);
        let mut chain = Chain::deploy(
            HitRegistry::new(mode),
            REGISTRY_CODE_LEN,
            GasSchedule::istanbul(),
        );
        chain.ledger.mint(requester, BUDGET * 10);
        Market {
            rng,
            chain,
            kp,
            requester,
            golden,
            gs_key,
        }
    }

    fn params(m: &Market) -> PublishParams {
        PublishParams {
            n: 6,
            budget: BUDGET,
            k: 3,
            range: PlaintextRange::binary(),
            theta: 3,
            ek: m.kp.ek,
            comm_gs: Commitment::commit(&m.golden.encode(), &m.gs_key),
            task_digest: [9u8; 32],
        }
    }

    fn windows() -> PhaseWindows {
        PhaseWindows {
            commit_timeout: Some(4),
            reveal: 2,
            evaluate: 3,
        }
    }

    /// Publishes `count` HITs and returns their ids.
    fn create_hits(m: &mut Market, count: usize) -> Vec<HitId> {
        for _ in 0..count {
            m.chain.submit(
                m.requester,
                RegistryMessage::Create {
                    windows: windows(),
                    params: params(m),
                },
            );
        }
        m.chain.advance_round_fifo();
        let ids: Vec<HitId> = m.chain.contract().hit_ids();
        assert_eq!(ids.len(), count);
        ids
    }

    #[test]
    fn instances_get_distinct_addresses_and_escrows() {
        let mut m = market(SettlementMode::PerProof);
        let ids = create_hits(&mut m, 3);
        let addrs: Vec<Address> = ids
            .iter()
            .map(|&id| m.chain.contract().hit_address(id).unwrap())
            .collect();
        for (i, a) in addrs.iter().enumerate() {
            for b in &addrs[i + 1..] {
                assert_ne!(a, b);
            }
            // Each instance escrow holds its own budget.
            assert_eq!(m.chain.ledger.balance(a), BUDGET);
        }
        // And the registry's own address holds nothing.
        assert_eq!(m.chain.ledger.balance(&m.chain.contract_address()), 0);
    }

    #[test]
    fn create_without_funds_reverts_and_allocates_nothing() {
        let mut m = market(SettlementMode::PerProof);
        let poor = Address::from_byte(0x99);
        m.chain.submit(
            poor,
            RegistryMessage::Create {
                windows: windows(),
                params: params(&m),
            },
        );
        m.chain.advance_round_fifo();
        let last = m.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
        assert!(m.chain.contract().is_empty());
    }

    #[test]
    fn messages_route_to_the_addressed_instance_only() {
        let mut m = market(SettlementMode::PerProof);
        let ids = create_hits(&mut m, 2);
        let w = Address::from_byte(1);
        let key = CommitmentKey::random(&mut m.rng);
        let comm = Commitment::commit(b"c", &key);
        m.chain.submit(
            w,
            RegistryMessage::Hit {
                id: ids[0],
                msg: HitMessage::Commit { commitment: comm },
            },
        );
        m.chain.advance_round_fifo();
        let r = m.chain.contract();
        assert_eq!(r.hit(ids[0]).unwrap().committed_workers().len(), 1);
        assert_eq!(r.hit(ids[1]).unwrap().committed_workers().len(), 0);
    }

    #[test]
    fn unknown_hit_reverts() {
        let mut m = market(SettlementMode::PerProof);
        create_hits(&mut m, 1);
        m.chain.submit(
            Address::from_byte(1),
            RegistryMessage::Hit {
                id: 77,
                msg: HitMessage::Finalize,
            },
        );
        m.chain.advance_round_fifo();
        let last = m.chain.receipts().last().unwrap();
        assert!(matches!(last.status, TxStatus::Reverted(_)));
    }

    /// Runs one instance end to end (3 workers, worker 0 low-quality)
    /// and returns the final settlements.
    fn run_instance(m: &mut Market, id: HitId) -> Vec<Settlement> {
        let workers: Vec<Address> = (1..=3).map(Address::from_byte).collect();
        let good = Answer(vec![1, 0, 0, 0, 1, 0]);
        let bad = Answer(vec![0, 0, 1, 0, 0, 0]);
        let answers = [bad, good.clone(), good];
        let mut cts = Vec::new();
        let mut keys = Vec::new();
        for (w, a) in workers.iter().zip(&answers) {
            let enc = a.encrypt(&m.kp.ek, &mut m.rng);
            let key = CommitmentKey::random(&mut m.rng);
            let comm = Commitment::commit(&enc.encode(), &key);
            m.chain.submit(
                *w,
                RegistryMessage::Hit {
                    id,
                    msg: HitMessage::Commit { commitment: comm },
                },
            );
            cts.push(enc);
            keys.push(key);
        }
        m.chain.advance_round_fifo();
        for ((w, enc), key) in workers.iter().zip(&cts).zip(&keys) {
            m.chain.submit(
                *w,
                RegistryMessage::Hit {
                    id,
                    msg: HitMessage::Reveal {
                        ciphertexts: enc.clone(),
                        key: *key,
                    },
                },
            );
        }
        m.chain.advance_round_fifo();
        // Close the reveal window.
        m.chain.advance_round_fifo();
        m.chain.advance_round_fifo();
        assert_eq!(m.chain.contract().hit(id).unwrap().phase(), Phase::Evaluate);
        m.chain.submit(
            m.requester,
            RegistryMessage::Hit {
                id,
                msg: HitMessage::Golden {
                    golden: m.golden.clone(),
                    key: m.gs_key,
                },
            },
        );
        m.chain.advance_round_fifo();
        // Reject worker 0 with PoQoEA.
        let (chi, proof) = poqoea::prove_quality(
            &m.kp.dk,
            &cts[0],
            &m.golden,
            &PlaintextRange::binary(),
            &mut m.rng,
        );
        assert!(chi < 3);
        m.chain.submit(
            m.requester,
            RegistryMessage::Hit {
                id,
                msg: HitMessage::Evaluate {
                    worker: workers[0],
                    chi,
                    proof,
                },
            },
        );
        for _ in 0..6 {
            m.chain.advance_round_fifo();
        }
        assert!(m.chain.contract().hit(id).unwrap().is_settled());
        workers
            .iter()
            .map(|w| {
                m.chain
                    .contract()
                    .hit(id)
                    .unwrap()
                    .settlement(w)
                    .unwrap()
                    .clone()
            })
            .collect()
    }

    #[test]
    fn batched_settlement_matches_per_proof_verdicts() {
        let mut per_proof = market(SettlementMode::PerProof);
        let ids = create_hits(&mut per_proof, 1);
        let inline = run_instance(&mut per_proof, ids[0]);
        assert_eq!(
            per_proof.chain.contract().batch_stats(),
            BatchStats::default()
        );

        let mut batched = market(SettlementMode::Batched);
        let ids = create_hits(&mut batched, 1);
        let deferred = run_instance(&mut batched, ids[0]);
        let stats = batched.chain.contract().batch_stats();
        assert!(stats.batches >= 1, "batched mode must batch");
        assert!(stats.items >= 1);

        assert_eq!(inline, deferred, "verdicts must be mode-independent");
        assert!(matches!(inline[0], Settlement::Rejected(_)));
        assert_eq!(inline[1], Settlement::Paid);
        assert_eq!(inline[2], Settlement::Paid);
    }

    /// A rejection whose PoQoEA proof carries zero VPKE items (θ above
    /// the gold count, claimed χ between them) is vacuously valid and
    /// must land identically in both settlement modes — the batched path
    /// must not drop it just because there is nothing to verify.
    fn run_empty_proof_rejection(mode: SettlementMode) -> Settlement {
        let mut m = market(mode);
        // θ = 5 > |G| = 3: any χ in [3, 5) yields Ok(no items) + reject.
        m.chain.submit(
            m.requester,
            RegistryMessage::Create {
                windows: windows(),
                params: PublishParams {
                    theta: 5,
                    ..params(&m)
                },
            },
        );
        m.chain.advance_round_fifo();
        let id = 0;
        let workers: Vec<Address> = (1..=3).map(Address::from_byte).collect();
        let good = Answer(vec![1, 0, 0, 0, 1, 0]);
        let mut cts = Vec::new();
        let mut keys = Vec::new();
        for w in &workers {
            let enc = good.encrypt(&m.kp.ek, &mut m.rng);
            let key = CommitmentKey::random(&mut m.rng);
            let comm = Commitment::commit(&enc.encode(), &key);
            m.chain.submit(
                *w,
                RegistryMessage::Hit {
                    id,
                    msg: HitMessage::Commit { commitment: comm },
                },
            );
            cts.push(enc);
            keys.push(key);
        }
        m.chain.advance_round_fifo();
        for ((w, enc), key) in workers.iter().zip(&cts).zip(&keys) {
            m.chain.submit(
                *w,
                RegistryMessage::Hit {
                    id,
                    msg: HitMessage::Reveal {
                        ciphertexts: enc.clone(),
                        key: *key,
                    },
                },
            );
        }
        for _ in 0..3 {
            m.chain.advance_round_fifo();
        }
        assert_eq!(m.chain.contract().hit(id).unwrap().phase(), Phase::Evaluate);
        m.chain.submit(
            m.requester,
            RegistryMessage::Hit {
                id,
                msg: HitMessage::Golden {
                    golden: m.golden.clone(),
                    key: m.gs_key,
                },
            },
        );
        m.chain.advance_round_fifo();
        // χ = 3 = |G| with an empty proof: structurally valid, below Θ.
        m.chain.submit(
            m.requester,
            RegistryMessage::Hit {
                id,
                msg: HitMessage::Evaluate {
                    worker: workers[0],
                    chi: 3,
                    proof: dragoon_core::poqoea::QualityProof::default(),
                },
            },
        );
        for _ in 0..6 {
            m.chain.advance_round_fifo();
        }
        let hit = m.chain.contract().hit(id).unwrap();
        assert!(hit.is_settled());
        hit.settlement(&workers[0]).unwrap().clone()
    }

    #[test]
    fn empty_proof_rejection_lands_in_both_modes() {
        let inline = run_empty_proof_rejection(SettlementMode::PerProof);
        let batched = run_empty_proof_rejection(SettlementMode::Batched);
        assert_eq!(inline, batched, "zero-item verdicts must not be dropped");
        assert!(matches!(inline, Settlement::Rejected(_)));
    }

    #[test]
    fn concurrent_instances_settle_independently() {
        let mut m = market(SettlementMode::Batched);
        let ids = create_hits(&mut m, 2);
        // Run the first instance to completion; the second stays open in
        // its commit phase until its timeout cancels it.
        let s = run_instance(&mut m, ids[0]);
        assert_eq!(s.len(), 3);
        assert!(m.chain.contract().hit(ids[1]).unwrap().is_settled());
        // The unfilled instance refunded its budget (cancel path).
        let requester_balance = m.chain.ledger.balance(&m.requester);
        // Started with 10×BUDGET, spent 2 budgets, got back: the unfilled
        // one in full plus the rejected share of the filled one.
        assert_eq!(
            requester_balance,
            BUDGET * 10 - 2 * BUDGET + BUDGET + BUDGET / 3
        );
    }
}
