//! # dragoon-core
//!
//! The paper's primary contribution, as a library:
//!
//! * [`task`] — the HIT task model: batched multiple-choice questions,
//!   gold standards, plaintext/encrypted answer vectors (§IV).
//! * [`mod@quality`] — the MTurk-style quality function
//!   `Quality(a_j; G, Gs) = Σ_{i∈G} [a_{i,j} ≡ s_i]`.
//! * [`poqoea`] — **PoQoEA**, the special-purpose proof of the quality of
//!   an encrypted answer (§V-A, Fig 3): reduced to verifiable decryption,
//!   with upper-bound soundness and special zero-knowledge.
//! * [`workload`] — synthetic ImageNet-style workloads and worker answer
//!   models for the evaluation harness.
//!
//! The smart contract verifying these proofs lives in `dragoon-contract`;
//! the full protocol Π_hit and the ideal functionality F_hit live in
//! `dragoon-protocol`.

pub mod poqoea;
pub mod quality;
pub mod task;
pub mod workload;

pub use poqoea::{
    prove_quality, split_quality_proof, verify_quality, verify_quality_bool, MismatchItem,
    QualityError, QualityProof,
};
pub use quality::{mismatches, quality};
pub use task::{Answer, EncryptedAnswer, GoldenStandards, Question, TaskSpec};
