//! PoQoEA — **P**roof **o**f **Q**uality **o**f **E**ncrypted **A**nswer
//! (§V-A, Fig 3): the paper's core contribution.
//!
//! The requester proves to the contract that `χ` is (an upper bound of)
//! the quality of an encrypted answer, *without* generic zk-proofs: for
//! every gold-standard position the worker answered incorrectly, the
//! requester verifiably decrypts that single ciphertext (VPKE) and
//! exhibits the mismatch. The verifier counts the valid mismatch proofs;
//! with claimed quality `χ` and `|G| - χ` verified mismatches, `χ` is
//! sound as an upper bound:
//!
//! * **Completeness** — an honest requester can always produce the
//!   `|G| - χ` mismatch proofs.
//! * **Upper-bound soundness** — every verified mismatch pins one gold
//!   standard as wrong (VPKE soundness), so the true quality is at most
//!   `|G| - #mismatches ≤ χ`. A corrupted requester can *understate*
//!   mismatches (raising the bound, paying more), never overstate them —
//!   since the reward is increasing in quality, no worker is underpaid.
//! * **Special zero-knowledge** — only the gold positions' plaintexts are
//!   revealed, and those are simulatable from public knowledge because
//!   `|G|` and `range` are small constants (§V-A).

use crate::task::{EncryptedAnswer, GoldenStandards};
use dragoon_crypto::elgamal::{DecryptionKey, EncryptionKey, KeyPair, PlaintextRange};
use dragoon_crypto::vpke::{self, DecryptionProof, DecryptionStatement, PlaintextClaim};
use dragoon_crypto::{Fr, G1Projective};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One exhibited mismatch: gold-standard index `i`, the verifiably
/// decrypted answer `a_i`, and the VPKE proof `π_i`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MismatchItem {
    /// The question index `i ∈ G`.
    pub index: usize,
    /// The decrypted answer (in-range value or raw group element).
    pub claim: PlaintextClaim,
    /// The verifiable-decryption proof for `c_i`.
    pub proof: DecryptionProof,
}

/// A PoQoEA proof: the set `π = {(i, a_i, π_i)}` of Fig 3.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct QualityProof {
    /// The mismatch items, one per incorrectly answered gold standard.
    pub items: Vec<MismatchItem>,
}

impl QualityProof {
    /// Number of exhibited mismatches.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the proof exhibits no mismatches (perfect quality).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Serialized size in bytes (for calldata gas accounting): each item
    /// is `8 (index) + 2 points (A, B) + scalar (Z) + claim`.
    pub fn encoded_len(&self) -> usize {
        self.items
            .iter()
            .map(|it| {
                let claim_len = match it.claim {
                    PlaintextClaim::InRange(_) => 8,
                    PlaintextClaim::OutOfRange(_) => 64,
                };
                8 + claim_len + 64 + 64 + 32
            })
            .sum()
    }
}

/// Why a PoQoEA proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QualityError {
    /// An item referenced an index not in `G`.
    IndexNotGold(usize),
    /// The same index appeared twice.
    DuplicateIndex(usize),
    /// An item's claimed answer equals the gold standard — not a mismatch.
    ClaimMatchesGold(usize),
    /// An item's VPKE proof failed.
    BadDecryptionProof(usize),
    /// Fewer than `|G| - χ` valid mismatches were exhibited.
    InsufficientMismatches {
        /// The claimed quality.
        claimed: u64,
        /// The number of valid mismatch proofs found.
        proven: u64,
        /// The number of gold standards.
        golds: u64,
    },
    /// The ciphertext vector is shorter than a referenced index.
    CiphertextMissing(usize),
}

impl fmt::Display for QualityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityError::IndexNotGold(i) => write!(f, "index {i} is not a gold standard"),
            QualityError::DuplicateIndex(i) => write!(f, "duplicate mismatch index {i}"),
            QualityError::ClaimMatchesGold(i) => {
                write!(f, "claimed answer at {i} equals the gold standard")
            }
            QualityError::BadDecryptionProof(i) => {
                write!(f, "VPKE proof for index {i} failed")
            }
            QualityError::InsufficientMismatches {
                claimed,
                proven,
                golds,
            } => write!(
                f,
                "claimed quality {claimed} with {proven} mismatches does not reach |G| = {golds}"
            ),
            QualityError::CiphertextMissing(i) => {
                write!(f, "no ciphertext at referenced index {i}")
            }
        }
    }
}

impl std::error::Error for QualityError {}

/// `ProveQuality_k(c_j, χ, G, Gs)`: produces the quality `χ` and its
/// proof, by verifiably decrypting every gold position and exhibiting the
/// mismatches (Fig 3, left).
pub fn prove_quality<R: Rng + ?Sized>(
    dk: &DecryptionKey,
    cts: &EncryptedAnswer,
    gs: &GoldenStandards,
    range: &PlaintextRange,
    rng: &mut R,
) -> (u64, QualityProof) {
    prove_quality_with_key(&KeyPair::from_secret(dk.0), cts, gs, range, rng)
}

/// [`prove_quality`] with the full key pair, so the `|G|` inner VPKE
/// proofs don't each re-derive `h = g^k` — the proving service's
/// evaluate jobs enter here.
pub fn prove_quality_with_key<R: Rng + ?Sized>(
    kp: &KeyPair,
    cts: &EncryptedAnswer,
    gs: &GoldenStandards,
    range: &PlaintextRange,
    rng: &mut R,
) -> (u64, QualityProof) {
    let mut chi = 0u64;
    let mut items = Vec::new();
    for (&i, &s) in gs.indexes.iter().zip(&gs.answers) {
        let Some(ct) = cts.0.get(i) else {
            // Missing ciphertext counts as a mismatch the verifier can
            // see directly; nothing to prove.
            continue;
        };
        let (claim, proof) = vpke::prove_with_key(kp, ct, range, rng);
        let is_match = matches!(claim, PlaintextClaim::InRange(m) if m == s);
        if is_match {
            chi += 1;
        } else {
            items.push(MismatchItem {
                index: i,
                claim,
                proof,
            });
        }
    }
    (chi, QualityProof { items })
}

/// The structural half of `VerifyQuality`: every check *except* the
/// per-item VPKE verifications, which are returned as statements for the
/// caller to verify — individually ([`verify_quality`] does exactly
/// that) or batched across many proofs through
/// [`vpke::batch_verify_each`] (the marketplace's settlement path).
///
/// The full verdict is: structural checks pass **and** every returned
/// `(statement, proof)` pair verifies.
pub fn split_quality_proof(
    ek: &EncryptionKey,
    cts: &EncryptedAnswer,
    claimed_chi: u64,
    proof: &QualityProof,
    gs: &GoldenStandards,
) -> Result<Vec<(DecryptionStatement, DecryptionProof)>, QualityError> {
    let mut seen = HashSet::new();
    let mut items = Vec::with_capacity(proof.items.len());
    for item in &proof.items {
        let i = item.index;
        let Some(s) = gs.answer_for(i) else {
            return Err(QualityError::IndexNotGold(i));
        };
        if !seen.insert(i) {
            return Err(QualityError::DuplicateIndex(i));
        }
        let Some(ct) = cts.0.get(i) else {
            return Err(QualityError::CiphertextMissing(i));
        };
        // The claimed answer must genuinely differ from the gold
        // standard; compare as group elements so an out-of-range claim of
        // g^{s_i} cannot smuggle a match through.
        let gold_point = (G1Projective::generator() * Fr::from_u64(s)).to_affine();
        if item.claim.to_point() == gold_point {
            return Err(QualityError::ClaimMatchesGold(i));
        }
        items.push((
            DecryptionStatement {
                ek: *ek,
                ct: *ct,
                claim: item.claim,
            },
            item.proof,
        ));
    }
    // Missing ciphertexts are publicly visible mismatches.
    let missing = gs
        .indexes
        .iter()
        .filter(|&&i| cts.0.get(i).is_none())
        .count() as u64;
    let proven = proof.items.len() as u64 + missing;
    let golds = gs.len() as u64;
    // Saturating: an adversarial claimed χ near u64::MAX must revert the
    // transaction, not overflow-panic the (shared, multi-HIT) chain.
    if claimed_chi.saturating_add(proven) < golds {
        return Err(QualityError::InsufficientMismatches {
            claimed: claimed_chi,
            proven,
            golds,
        });
    }
    Ok(items)
}

/// `VerifyQuality_h(c_j, χ, π, G, Gs)`: Fig 3, right, with the
/// well-formedness hardening the set-notation of the paper implies
/// (distinct indices drawn from `G`; a claim equal to the gold answer is
/// not a mismatch — including out-of-range claims whose group element
/// equals `g^{s_i}`).
pub fn verify_quality(
    ek: &EncryptionKey,
    cts: &EncryptedAnswer,
    claimed_chi: u64,
    proof: &QualityProof,
    gs: &GoldenStandards,
) -> Result<(), QualityError> {
    let items = split_quality_proof(ek, cts, claimed_chi, proof, gs)?;
    for (item, (stmt, dproof)) in proof.items.iter().zip(&items) {
        if !vpke::verify(stmt, dproof) {
            return Err(QualityError::BadDecryptionProof(item.index));
        }
    }
    Ok(())
}

/// Convenience wrapper mirroring the paper's boolean `VerifyQuality`.
pub fn verify_quality_bool(
    ek: &EncryptionKey,
    cts: &EncryptedAnswer,
    claimed_chi: u64,
    proof: &QualityProof,
    gs: &GoldenStandards,
) -> bool {
    verify_quality(ek, cts, claimed_chi, proof, gs).is_ok()
}

/// The "special zero-knowledge" simulator for PoQoEA: given only public
/// knowledge (`h`, `G`, `Gs`, `c_j`, `χ`), produces a proof whose items
/// satisfy the VPKE verification equations under chosen challenges.
///
/// It guesses mismatching answers from `range \ {s_i}` — possible in
/// polynomial time exactly because `|G|` and `|range|` are small
/// constants (the paper's §V-A simulator invokes `S_VPKE` at most
/// `(|G| choose χ) · |range|` times).
pub fn simulate_quality_proof<R: Rng + ?Sized>(
    ek: &EncryptionKey,
    cts: &EncryptedAnswer,
    chi: u64,
    gs: &GoldenStandards,
    range: &PlaintextRange,
    rng: &mut R,
) -> Option<(QualityProof, Vec<Fr>)> {
    let golds = gs.len() as u64;
    if chi > golds {
        return None;
    }
    // Simulate mismatches at the last |G| - χ gold positions.
    let n_mismatch = (golds - chi) as usize;
    let mut items = Vec::new();
    let mut challenges = Vec::new();
    for (&i, &s) in gs.indexes.iter().zip(&gs.answers).rev().take(n_mismatch) {
        let ct = cts.0.get(i)?;
        // Guess any in-range answer other than the gold standard.
        let guess = (range.lo..=range.hi).find(|&m| m != s)?;
        let claim = PlaintextClaim::InRange(guess);
        let c = Fr::random(rng);
        let stmt = DecryptionStatement {
            ek: *ek,
            ct: *ct,
            claim,
        };
        let proof = vpke::simulate_with_challenge(&stmt, c, rng);
        items.push(MismatchItem {
            index: i,
            claim,
            proof,
        });
        challenges.push(c);
    }
    Some((QualityProof { items }, challenges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use crate::task::Answer;
    use dragoon_crypto::elgamal::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x90e0)
    }

    struct Fixture {
        rng: StdRng,
        kp: KeyPair,
        gs: GoldenStandards,
        range: PlaintextRange,
    }

    fn fixture() -> Fixture {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let gs = GoldenStandards {
            indexes: vec![1, 3, 5, 7],
            answers: vec![1, 0, 1, 0],
        };
        Fixture {
            rng,
            kp,
            gs,
            range: PlaintextRange::binary(),
        }
    }

    /// An answer with the desired number of correct gold standards
    /// (gold indexes beyond `n` are simply absent from the answer).
    fn answer_with_quality(gs: &GoldenStandards, n: usize, correct: usize) -> Answer {
        let mut a = vec![0u64; n];
        for (j, (&i, &s)) in gs.indexes.iter().zip(&gs.answers).enumerate() {
            if i < n {
                a[i] = if j < correct { s } else { 1 - s };
            }
        }
        Answer(a)
    }

    #[test]
    fn completeness_all_quality_levels() {
        let mut f = fixture();
        for correct in 0..=4usize {
            let answer = answer_with_quality(&f.gs, 10, correct);
            assert_eq!(quality::quality(&answer, &f.gs), correct as u64);
            let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
            let (chi, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
            assert_eq!(chi, correct as u64);
            assert_eq!(proof.len(), 4 - correct);
            verify_quality(&f.kp.ek, &cts, chi, &proof, &f.gs).unwrap();
        }
    }

    #[test]
    fn soundness_understating_quality_fails() {
        // The requester cannot claim χ = 1 for a worker whose true
        // quality is 3: only one real mismatch exists to prove.
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 3);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (chi, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        assert_eq!(chi, 3);
        let err = verify_quality(&f.kp.ek, &cts, 1, &proof, &f.gs).unwrap_err();
        assert!(matches!(
            err,
            QualityError::InsufficientMismatches { claimed: 1, .. }
        ));
    }

    #[test]
    fn overstating_quality_is_allowed_by_design() {
        // χ is an upper bound: claiming more than the true quality only
        // costs the requester money, so the verifier accepts it.
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 2);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (_, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        // Claim 3 with all real mismatch proofs (2 of them): 3 + 2 > 4 ✓.
        verify_quality(&f.kp.ek, &cts, 3, &proof, &f.gs).unwrap();
    }

    #[test]
    fn duplicate_mismatch_rejected() {
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 3);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (_, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        assert_eq!(proof.len(), 1);
        let mut doubled = proof.clone();
        doubled.items.push(doubled.items[0].clone());
        let err = verify_quality(&f.kp.ek, &cts, 2, &doubled, &f.gs).unwrap_err();
        assert!(matches!(err, QualityError::DuplicateIndex(_)));
    }

    #[test]
    fn non_gold_index_rejected() {
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 3);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (_, mut proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        proof.items[0].index = 0; // not a gold standard
        let err = verify_quality(&f.kp.ek, &cts, 3, &proof, &f.gs).unwrap_err();
        assert!(matches!(err, QualityError::IndexNotGold(0)));
    }

    #[test]
    fn claim_equal_to_gold_rejected() {
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 4);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        // Try to fabricate a mismatch at gold index 1 by honestly proving
        // its decryption (which matches the gold standard).
        let ct = cts.0[1];
        let (claim, dproof) = vpke::prove(&f.kp.dk, &ct, &f.range, &mut f.rng);
        let forged = QualityProof {
            items: vec![MismatchItem {
                index: 1,
                claim,
                proof: dproof,
            }],
        };
        let err = verify_quality(&f.kp.ek, &cts, 3, &forged, &f.gs).unwrap_err();
        assert!(matches!(err, QualityError::ClaimMatchesGold(1)));
    }

    #[test]
    fn out_of_range_claim_of_gold_point_rejected() {
        // A malicious requester claims "out of range" with the group
        // element g^{s_i} — the point-level equality check must catch it.
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 4);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let s = f.gs.answers[0];
        let gold_point = (G1Projective::generator() * Fr::from_u64(s)).to_affine();
        let claim = PlaintextClaim::OutOfRange(gold_point);
        let dproof = vpke::prove_claim(&f.kp.dk, &cts.0[f.gs.indexes[0]], &claim, &mut f.rng);
        let forged = QualityProof {
            items: vec![MismatchItem {
                index: f.gs.indexes[0],
                claim,
                proof: dproof,
            }],
        };
        let err = verify_quality(&f.kp.ek, &cts, 3, &forged, &f.gs).unwrap_err();
        assert!(matches!(err, QualityError::ClaimMatchesGold(_)));
    }

    #[test]
    fn fabricated_mismatch_with_wrong_proof_rejected() {
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 4); // perfect answer
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        // Claim the worker got gold 1 wrong, with a made-up claim value
        // and an honest-looking (but necessarily invalid) proof.
        let s = f.gs.answers[0];
        let wrong = 1 - s;
        let claim = PlaintextClaim::InRange(wrong);
        let dproof = vpke::prove_claim(&f.kp.dk, &cts.0[f.gs.indexes[0]], &claim, &mut f.rng);
        let forged = QualityProof {
            items: vec![MismatchItem {
                index: f.gs.indexes[0],
                claim,
                proof: dproof,
            }],
        };
        let err = verify_quality(&f.kp.ek, &cts, 3, &forged, &f.gs).unwrap_err();
        assert!(matches!(err, QualityError::BadDecryptionProof(_)));
    }

    #[test]
    fn out_of_range_answers_are_mismatches() {
        let mut f = fixture();
        // Answer 7 (out of the binary range) at every position.
        let answer = Answer(vec![7u64; 10]);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (chi, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        assert_eq!(chi, 0);
        assert_eq!(proof.len(), 4);
        assert!(proof
            .items
            .iter()
            .all(|it| matches!(it.claim, PlaintextClaim::OutOfRange(_))));
        verify_quality(&f.kp.ek, &cts, 0, &proof, &f.gs).unwrap();
    }

    #[test]
    fn short_ciphertext_vector_counts_missing_as_mismatch() {
        let mut f = fixture();
        // Only answer the first 4 questions; golds 5 and 7 are missing.
        let answer = answer_with_quality(&f.gs, 4, 2);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (chi, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        assert_eq!(chi, 2);
        // Verifier counts 2 missing golds toward the bound.
        verify_quality(&f.kp.ek, &cts, chi, &proof, &f.gs).unwrap();
    }

    #[test]
    fn split_plus_batch_matches_inline_verification() {
        // The deferred settlement path (structural split + batched VPKE)
        // must agree with verify_quality on every quality level.
        let mut f = fixture();
        for correct in 0..=4usize {
            let answer = answer_with_quality(&f.gs, 10, correct);
            let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
            let (chi, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
            let items = split_quality_proof(&f.kp.ek, &cts, chi, &proof, &f.gs).unwrap();
            assert_eq!(items.len(), proof.len());
            assert!(vpke::batch_verify_each(&items).iter().all(|&ok| ok));
            assert!(verify_quality(&f.kp.ek, &cts, chi, &proof, &f.gs).is_ok());
        }
        // And on a forged proof the surviving VPKE item must fail both
        // paths identically.
        let answer = answer_with_quality(&f.gs, 10, 4);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let s = f.gs.answers[0];
        let claim = PlaintextClaim::InRange(1 - s);
        let dproof = vpke::prove_claim(&f.kp.dk, &cts.0[f.gs.indexes[0]], &claim, &mut f.rng);
        let forged = QualityProof {
            items: vec![MismatchItem {
                index: f.gs.indexes[0],
                claim,
                proof: dproof,
            }],
        };
        let items = split_quality_proof(&f.kp.ek, &cts, 3, &forged, &f.gs).unwrap();
        assert_eq!(vpke::batch_verify_each(&items), vec![false]);
        assert!(matches!(
            verify_quality(&f.kp.ek, &cts, 3, &forged, &f.gs),
            Err(QualityError::BadDecryptionProof(_))
        ));
    }

    #[test]
    fn absurd_claimed_chi_does_not_overflow() {
        // χ = u64::MAX must verify (χ is an upper bound, overstating is
        // allowed) without panicking — a panic here would crash the
        // whole shared chain instead of settling the transaction.
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 2);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (_, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        verify_quality(&f.kp.ek, &cts, u64::MAX, &proof, &f.gs).unwrap();
        assert!(split_quality_proof(&f.kp.ek, &cts, u64::MAX, &proof, &f.gs).is_ok());
    }

    #[test]
    fn simulator_produces_equation_valid_items() {
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 2);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (proof, challenges) =
            simulate_quality_proof(&f.kp.ek, &cts, 2, &f.gs, &f.range, &mut f.rng).unwrap();
        assert_eq!(proof.len(), 2);
        for (item, c) in proof.items.iter().zip(&challenges) {
            let stmt = DecryptionStatement {
                ek: f.kp.ek,
                ct: cts.0[item.index],
                claim: item.claim,
            };
            assert!(vpke::verify_equations(&stmt, &item.proof, *c));
        }
    }

    #[test]
    fn encoded_len_tracks_items() {
        let mut f = fixture();
        let answer = answer_with_quality(&f.gs, 10, 1);
        let cts = answer.encrypt(&f.kp.ek, &mut f.rng);
        let (_, proof) = prove_quality(&f.kp.dk, &cts, &f.gs, &f.range, &mut f.rng);
        assert_eq!(proof.len(), 3);
        assert_eq!(proof.encoded_len(), 3 * (8 + 8 + 64 + 64 + 32));
    }
}
