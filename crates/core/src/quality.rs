//! The quality function of §IV:
//! `Quality(a_j; (G, Gs)) = Σ_{i ∈ G} [a_{i,j} ≡ s_i]`,
//! i.e. the number of gold-standard questions answered correctly.

use crate::task::{Answer, GoldenStandards};

/// Computes `Quality(answer; (G, Gs))`.
///
/// Questions missing from the answer vector (shorter submissions) count
/// as incorrect — a malformed answer can only lose quality, never gain.
pub fn quality(answer: &Answer, gs: &GoldenStandards) -> u64 {
    gs.indexes
        .iter()
        .zip(&gs.answers)
        .filter(|(&i, &s)| answer.0.get(i) == Some(&s))
        .count() as u64
}

/// The number of gold standards answered *incorrectly* — the mismatches a
/// PoQoEA rejection proof must exhibit.
pub fn mismatches(answer: &Answer, gs: &GoldenStandards) -> u64 {
    gs.len() as u64 - quality(answer, gs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gs() -> GoldenStandards {
        GoldenStandards {
            indexes: vec![0, 2, 4],
            answers: vec![1, 0, 1],
        }
    }

    #[test]
    fn perfect_answer() {
        let a = Answer(vec![1, 9, 0, 9, 1]);
        assert_eq!(quality(&a, &gs()), 3);
        assert_eq!(mismatches(&a, &gs()), 0);
    }

    #[test]
    fn all_wrong() {
        let a = Answer(vec![0, 9, 1, 9, 0]);
        assert_eq!(quality(&a, &gs()), 0);
        assert_eq!(mismatches(&a, &gs()), 3);
    }

    #[test]
    fn partial() {
        let a = Answer(vec![1, 9, 1, 9, 1]);
        assert_eq!(quality(&a, &gs()), 2);
        assert_eq!(mismatches(&a, &gs()), 1);
    }

    #[test]
    fn non_gold_questions_ignored() {
        let a1 = Answer(vec![1, 0, 0, 0, 1]);
        let a2 = Answer(vec![1, 1, 0, 1, 1]);
        assert_eq!(quality(&a1, &gs()), quality(&a2, &gs()));
    }

    #[test]
    fn short_answer_counts_missing_as_wrong() {
        let a = Answer(vec![1, 9, 0]); // missing index 4
        assert_eq!(quality(&a, &gs()), 2);
        let empty = Answer(vec![]);
        assert_eq!(quality(&empty, &gs()), 0);
    }

    #[test]
    fn empty_gold_standards() {
        let gs = GoldenStandards {
            indexes: vec![],
            answers: vec![],
        };
        assert_eq!(quality(&Answer(vec![1, 2, 3]), &gs), 0);
    }
}
