//! The HIT task model (§IV, "Reviewing the HITs in reality").
//!
//! A task `T = (q_1, …, q_N)` is a batch of multiple-choice questions
//! whose answers must lie in a pre-specified `range`. A random subset `G`
//! of the questions are *gold standards* with requester-known answers
//! `Gs`, mixed secretly among the rest — the only quality-based incentive
//! mechanism incorporated by Amazon's MTurk, and the one ImageNet used.

use dragoon_crypto::elgamal::{Ciphertext, EncryptionKey, PlaintextRange};
use dragoon_crypto::precomp::ProofCache;
use dragoon_crypto::Fr;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One multiple-choice question (the off-chain content; only its digest
/// ever reaches the chain).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// The prompt shown to workers, e.g. "Does this image contain a cat?".
    pub prompt: String,
    /// Human-readable option labels; `options[m]` is the meaning of
    /// answering `m`.
    pub options: Vec<String>,
}

/// The public parameters of a HIT.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Number of questions `N`.
    pub n: usize,
    /// Number of workers to recruit `K`.
    pub k: usize,
    /// The admissible answer range of every question.
    pub range: PlaintextRange,
    /// The minimal quality standard `Θ` (correct gold standards required
    /// for payment).
    pub theta: u64,
    /// The total budget `B`; each worker is promised `B/K`.
    pub budget: u128,
    /// The questions themselves (stored off-chain; see
    /// `dragoon_protocol::storage`).
    pub questions: Vec<Question>,
}

impl TaskSpec {
    /// The per-worker reward `B/K`.
    pub fn reward_per_worker(&self) -> u128 {
        self.budget / self.k as u128
    }

    /// Basic well-formedness: question count matches `n`, `Θ` achievable.
    pub fn validate(&self) -> Result<(), String> {
        if self.questions.len() != self.n {
            return Err(format!(
                "task declares {} questions but contains {}",
                self.n,
                self.questions.len()
            ));
        }
        if self.k == 0 {
            return Err("task must recruit at least one worker".into());
        }
        if self.budget == 0 {
            return Err("task must carry a positive budget".into());
        }
        Ok(())
    }

    /// The paper's concrete ImageNet task policy (§VI): 106 binary
    /// questions, 6 gold standards, 4 workers; a submission is rejected
    /// if it fails ≥ 3 gold standards (i.e. `Θ = 4`).
    ///
    /// Gold standards are drawn from a fixed documented seed so every
    /// run of every binary is reproducible; use
    /// [`TaskSpec::imagenet_with_rng`] to inject a caller-controlled
    /// seed (e.g. from `DRAGOON_SEED`).
    pub fn imagenet(budget: u128) -> (Self, GoldenStandards) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        Self::imagenet_with_rng(budget, &mut StdRng::seed_from_u64(0xd1a6_0055))
    }

    /// Variant of [`TaskSpec::imagenet`] drawing gold standards from the
    /// caller's RNG.
    pub fn imagenet_with_rng<R: Rng + ?Sized>(
        budget: u128,
        rng: &mut R,
    ) -> (Self, GoldenStandards) {
        let n = 106;
        let questions = (0..n)
            .map(|i| Question {
                prompt: format!("Image #{i}: does the image contain the target attribute?"),
                options: vec!["no".into(), "yes".into()],
            })
            .collect();
        let spec = Self {
            n,
            k: 4,
            range: PlaintextRange::binary(),
            theta: 4,
            budget,
            questions,
        };
        let gs = GoldenStandards::random(n, 6, &spec.range, rng);
        (spec, gs)
    }
}

/// The requester's secret parameters `sp = (G, Gs)`: indexes of the gold
/// standard questions and their known answers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenStandards {
    /// Indexes `G ⊂ [0, N)` of gold-standard questions (sorted).
    pub indexes: Vec<usize>,
    /// Ground-truth answers `Gs = {s_i}`, aligned with `indexes`.
    pub answers: Vec<u64>,
}

impl GoldenStandards {
    /// Samples `m` random distinct gold-standard questions with random
    /// ground truth in `range`.
    pub fn random<R: Rng + ?Sized>(
        n: usize,
        m: usize,
        range: &PlaintextRange,
        rng: &mut R,
    ) -> Self {
        assert!(m <= n, "more gold standards than questions");
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let mut indexes: Vec<usize> = idx.into_iter().take(m).collect();
        indexes.sort_unstable();
        let answers = indexes
            .iter()
            .map(|_| rng.gen_range(range.lo..=range.hi))
            .collect();
        Self { indexes, answers }
    }

    /// Number of gold standards `|G|`.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether there are no gold standards.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// The ground truth for question `i`, if it is a gold standard.
    pub fn answer_for(&self, i: usize) -> Option<u64> {
        self.indexes
            .iter()
            .position(|&g| g == i)
            .map(|pos| self.answers[pos])
    }

    /// Canonical byte encoding `G ‖ Gs` for the commitment `comm_gs`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.indexes.len() * 16);
        out.extend_from_slice(&(self.indexes.len() as u64).to_le_bytes());
        for (&i, &s) in self.indexes.iter().zip(&self.answers) {
            out.extend_from_slice(&(i as u64).to_le_bytes());
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Parses the canonical encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let m = u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize;
        if bytes.len() != 8 + m * 16 {
            return None;
        }
        let mut indexes = Vec::with_capacity(m);
        let mut answers = Vec::with_capacity(m);
        for j in 0..m {
            let off = 8 + j * 16;
            indexes.push(u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?) as usize);
            answers.push(u64::from_le_bytes(
                bytes[off + 8..off + 16].try_into().ok()?,
            ));
        }
        Some(Self { indexes, answers })
    }

    /// Well-formedness with respect to a task: indexes in `[0, n)`,
    /// distinct, answers in range.
    pub fn validate(&self, n: usize, range: &PlaintextRange) -> Result<(), String> {
        if self.indexes.len() != self.answers.len() {
            return Err("index/answer length mismatch".into());
        }
        let mut seen = std::collections::HashSet::new();
        for &i in &self.indexes {
            if i >= n {
                return Err(format!("gold-standard index {i} out of bounds"));
            }
            if !seen.insert(i) {
                return Err(format!("duplicate gold-standard index {i}"));
            }
        }
        for &s in &self.answers {
            if !range.contains(s) {
                return Err(format!("gold-standard answer {s} out of range"));
            }
        }
        Ok(())
    }
}

/// A worker's plaintext answer vector `a_j = (a_{1,j}, …, a_{N,j})`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Answer(pub Vec<u64>);

impl Answer {
    /// Number of answered questions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether every component lies in `range`.
    pub fn in_range(&self, range: &PlaintextRange) -> bool {
        self.0.iter().all(|&a| range.contains(a))
    }

    /// Encrypts the whole vector to the requester, returning the
    /// ciphertext vector `c_j`.
    pub fn encrypt<R: Rng + ?Sized>(&self, ek: &EncryptionKey, rng: &mut R) -> EncryptedAnswer {
        self.encrypt_cached(ek, rng, None)
    }

    /// [`Answer::encrypt`], optionally accelerated by a fixed-base table
    /// for `ek` fetched from the shared proof cache. The ciphertexts (and
    /// the rng draws) are identical with or without the cache — only the
    /// `h^ρ` multiplications get cheaper.
    pub fn encrypt_cached<R: Rng + ?Sized>(
        &self,
        ek: &EncryptionKey,
        rng: &mut R,
        cache: Option<&ProofCache>,
    ) -> EncryptedAnswer {
        let table = cache.map(|c| c.table_for(&ek.0));
        EncryptedAnswer(
            self.0
                .iter()
                .map(|&m| ek.encrypt_with_table(m, Fr::random(rng), table.as_deref()))
                .collect(),
        )
    }

    /// Deterministic encryption with caller-supplied randomness (one
    /// scalar per question) — used by tests and the simulator.
    pub fn encrypt_with(&self, ek: &EncryptionKey, rhos: &[Fr]) -> EncryptedAnswer {
        assert_eq!(rhos.len(), self.0.len());
        EncryptedAnswer(
            self.0
                .iter()
                .zip(rhos)
                .map(|(&m, &rho)| ek.encrypt_with(m, rho))
                .collect(),
        )
    }
}

/// A worker's encrypted answer vector `c_j`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedAnswer(pub Vec<Ciphertext>);

impl EncryptedAnswer {
    /// Number of ciphertexts.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Canonical byte encoding (used for commitments and on-chain
    /// hashing): the concatenation of the 128-byte ciphertext encodings.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len() * 128);
        for ct in &self.0 {
            out.extend_from_slice(&ct.to_bytes());
        }
        out
    }

    /// Parses the canonical encoding.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(128) {
            return None;
        }
        let mut cts = Vec::with_capacity(bytes.len() / 128);
        for chunk in bytes.chunks_exact(128) {
            let arr: [u8; 128] = chunk.try_into().ok()?;
            cts.push(Ciphertext::from_bytes(&arr)?);
        }
        Some(Self(cts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_crypto::elgamal::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x7a5c)
    }

    #[test]
    fn imagenet_task_policy() {
        let mut rng = rng();
        let (spec, gs) = TaskSpec::imagenet_with_rng(4_000_000, &mut rng);
        assert_eq!(spec.n, 106);
        assert_eq!(spec.k, 4);
        assert_eq!(spec.theta, 4);
        assert_eq!(spec.range, PlaintextRange::binary());
        assert_eq!(gs.len(), 6);
        assert_eq!(spec.reward_per_worker(), 1_000_000);
        spec.validate().unwrap();
        gs.validate(spec.n, &spec.range).unwrap();
    }

    #[test]
    fn task_validation_catches_mismatch() {
        let mut rng = rng();
        let (mut spec, _) = TaskSpec::imagenet_with_rng(100, &mut rng);
        spec.questions.pop();
        assert!(spec.validate().is_err());
        spec.questions.push(Question {
            prompt: "p".into(),
            options: vec![],
        });
        spec.validate().unwrap();
        spec.k = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn golden_standards_encode_round_trip() {
        let mut rng = rng();
        let gs = GoldenStandards::random(100, 6, &PlaintextRange::binary(), &mut rng);
        let decoded = GoldenStandards::decode(&gs.encode()).unwrap();
        assert_eq!(decoded, gs);
    }

    #[test]
    fn golden_standards_decode_rejects_garbage() {
        assert!(GoldenStandards::decode(&[]).is_none());
        assert!(GoldenStandards::decode(&[1, 2, 3]).is_none());
        // Declared length longer than payload.
        let mut bytes = 10u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(GoldenStandards::decode(&bytes).is_none());
    }

    #[test]
    fn golden_standards_validation() {
        let range = PlaintextRange::binary();
        let ok = GoldenStandards {
            indexes: vec![1, 5, 9],
            answers: vec![0, 1, 1],
        };
        ok.validate(10, &range).unwrap();
        let dup = GoldenStandards {
            indexes: vec![1, 1],
            answers: vec![0, 1],
        };
        assert!(dup.validate(10, &range).is_err());
        let oob = GoldenStandards {
            indexes: vec![10],
            answers: vec![0],
        };
        assert!(oob.validate(10, &range).is_err());
        let bad_answer = GoldenStandards {
            indexes: vec![1],
            answers: vec![7],
        };
        assert!(bad_answer.validate(10, &range).is_err());
    }

    #[test]
    fn answer_for_lookup() {
        let gs = GoldenStandards {
            indexes: vec![2, 7],
            answers: vec![1, 0],
        };
        assert_eq!(gs.answer_for(2), Some(1));
        assert_eq!(gs.answer_for(7), Some(0));
        assert_eq!(gs.answer_for(3), None);
    }

    #[test]
    fn answer_encrypt_decrypt_all_questions() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let answer = Answer(vec![0, 1, 1, 0, 1]);
        let enc = answer.encrypt(&kp.ek, &mut rng);
        assert_eq!(enc.len(), 5);
        let range = PlaintextRange::binary();
        for (i, ct) in enc.0.iter().enumerate() {
            match kp.dk.decrypt(ct, &range) {
                dragoon_crypto::elgamal::Decrypted::InRange(m) => assert_eq!(m, answer.0[i]),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn answer_range_check() {
        let range = PlaintextRange::binary();
        assert!(Answer(vec![0, 1, 0]).in_range(&range));
        assert!(!Answer(vec![0, 2]).in_range(&range));
    }

    #[test]
    fn encrypted_answer_encode_round_trip() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let enc = Answer(vec![1, 0, 1]).encrypt(&kp.ek, &mut rng);
        let decoded = EncryptedAnswer::decode(&enc.encode()).unwrap();
        assert_eq!(decoded, enc);
        assert!(EncryptedAnswer::decode(&[0u8; 64]).is_none());
    }
}
