//! Synthetic workload generation: ImageNet-style annotation tasks and
//! worker answer models.
//!
//! Substitution note (DESIGN.md): the paper drives its evaluation with a
//! real ImageNet attribute-annotation HIT. The protocol never looks at
//! the image content — only at answer vectors, ranges and gold standards
//! — so a synthetic generator with controllable worker accuracy exercises
//! exactly the same code paths.

use crate::quality::quality;
use crate::task::{Answer, GoldenStandards, Question, TaskSpec};
use dragoon_crypto::elgamal::PlaintextRange;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a (non-copying) worker produces answers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AnswerModel {
    /// Answers every question correctly with probability `accuracy`,
    /// otherwise uniformly wrong — the classic crowd-worker noise model.
    Diligent {
        /// Per-question probability of a correct answer.
        accuracy: f64,
    },
    /// Uniformly random answers in range — a bot reaping rewards without
    /// effort (the paper's free-riding concern, §I).
    RandomBot,
    /// Answers outside the admissible range — triggers the contract's
    /// `outrange` path.
    OutOfRange,
    /// Answers every question with the same fixed option.
    Constant(u64),
}

/// Ground truth for a generated task: the correct answer of every
/// question (the gold standards agree with it on `G`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruth(pub Vec<u64>);

/// A fully generated workload: task, gold standards consistent with a
/// hidden ground truth.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The public task.
    pub spec: TaskSpec,
    /// The requester's secret gold standards.
    pub golden: GoldenStandards,
    /// The hidden per-question ground truth.
    pub truth: GroundTruth,
}

/// Generates an annotation workload: `n` questions over `range`,
/// `golds` gold standards whose answers match the hidden ground truth.
pub fn generate_workload<R: Rng + ?Sized>(
    n: usize,
    golds: usize,
    k: usize,
    theta: u64,
    range: PlaintextRange,
    budget: u128,
    rng: &mut R,
) -> Workload {
    let truth: Vec<u64> = (0..n).map(|_| rng.gen_range(range.lo..=range.hi)).collect();
    let mut gs = GoldenStandards::random(n, golds, &range, rng);
    // Gold-standard answers must agree with ground truth (the requester
    // *knows* these answers).
    for (pos, &i) in gs.indexes.clone().iter().enumerate() {
        gs.answers[pos] = truth[i];
    }
    let questions = (0..n)
        .map(|i| Question {
            prompt: format!("Question #{i}"),
            options: (range.lo..=range.hi)
                .map(|o| format!("option {o}"))
                .collect(),
        })
        .collect();
    Workload {
        spec: TaskSpec {
            n,
            k,
            range,
            theta,
            budget,
            questions,
        },
        golden: gs,
        truth: GroundTruth(truth),
    }
}

/// The paper's ImageNet workload: 106 binary questions, 6 golds,
/// 4 workers, Θ = 4.
pub fn imagenet_workload<R: Rng + ?Sized>(budget: u128, rng: &mut R) -> Workload {
    generate_workload(106, 6, 4, 4, PlaintextRange::binary(), budget, rng)
}

/// Draws an answer vector according to a model.
pub fn draw_answer<R: Rng + ?Sized>(
    model: &AnswerModel,
    truth: &GroundTruth,
    range: &PlaintextRange,
    rng: &mut R,
) -> Answer {
    let n = truth.0.len();
    let a = match model {
        AnswerModel::Diligent { accuracy } => truth
            .0
            .iter()
            .map(|&t| {
                if rng.gen_bool(*accuracy) {
                    t
                } else {
                    // Uniform among wrong options (binary → the flip).
                    let mut w = rng.gen_range(range.lo..=range.hi);
                    while w == t && range.len() > 1 {
                        w = rng.gen_range(range.lo..=range.hi);
                    }
                    w
                }
            })
            .collect(),
        AnswerModel::RandomBot => (0..n).map(|_| rng.gen_range(range.lo..=range.hi)).collect(),
        AnswerModel::OutOfRange => vec![range.hi + 1 + rng.gen_range(0u64..5); n],
        AnswerModel::Constant(v) => vec![*v; n],
    };
    Answer(a)
}

/// Empirical expected quality of a model against a workload (for test
/// assertions about incentive alignment).
pub fn expected_quality(model: &AnswerModel, w: &Workload, samples: usize, seed: u64) -> f64 {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut total = 0u64;
    for _ in 0..samples {
        let a = draw_answer(model, &w.truth, &w.spec.range, &mut rng);
        total += quality(&a, &w.golden);
    }
    total as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x401c)
    }

    #[test]
    fn workload_shape() {
        let mut rng = rng();
        let w = imagenet_workload(4_000_000, &mut rng);
        assert_eq!(w.spec.n, 106);
        assert_eq!(w.golden.len(), 6);
        assert_eq!(w.truth.0.len(), 106);
        w.spec.validate().unwrap();
        w.golden.validate(w.spec.n, &w.spec.range).unwrap();
    }

    #[test]
    fn golds_agree_with_truth() {
        let mut rng = rng();
        let w = imagenet_workload(100, &mut rng);
        for (&i, &s) in w.golden.indexes.iter().zip(&w.golden.answers) {
            assert_eq!(s, w.truth.0[i]);
        }
    }

    #[test]
    fn perfect_worker_has_full_quality() {
        let mut rng = rng();
        let w = imagenet_workload(100, &mut rng);
        let a = draw_answer(
            &AnswerModel::Diligent { accuracy: 1.0 },
            &w.truth,
            &w.spec.range,
            &mut rng,
        );
        assert_eq!(quality(&a, &w.golden), 6);
    }

    #[test]
    fn zero_accuracy_worker_has_zero_quality() {
        let mut rng = rng();
        let w = imagenet_workload(100, &mut rng);
        let a = draw_answer(
            &AnswerModel::Diligent { accuracy: 0.0 },
            &w.truth,
            &w.spec.range,
            &mut rng,
        );
        assert_eq!(quality(&a, &w.golden), 0);
    }

    #[test]
    fn random_bot_quality_is_about_half_for_binary() {
        let mut rng = rng();
        let w = imagenet_workload(100, &mut rng);
        let avg = expected_quality(&AnswerModel::RandomBot, &w, 400, 7);
        // Binary questions, 6 golds → expectation 3.
        assert!((avg - 3.0).abs() < 0.5, "avg = {avg}");
    }

    #[test]
    fn diligent_beats_bot() {
        let mut rng = rng();
        let w = imagenet_workload(100, &mut rng);
        let good = expected_quality(&AnswerModel::Diligent { accuracy: 0.95 }, &w, 200, 1);
        let bot = expected_quality(&AnswerModel::RandomBot, &w, 200, 1);
        assert!(good > bot + 1.0, "good={good} bot={bot}");
    }

    #[test]
    fn out_of_range_model_is_out_of_range() {
        let mut rng = rng();
        let w = imagenet_workload(100, &mut rng);
        let a = draw_answer(&AnswerModel::OutOfRange, &w.truth, &w.spec.range, &mut rng);
        assert!(!a.in_range(&w.spec.range));
    }

    #[test]
    fn constant_model() {
        let mut rng = rng();
        let w = imagenet_workload(100, &mut rng);
        let a = draw_answer(&AnswerModel::Constant(1), &w.truth, &w.spec.range, &mut rng);
        assert!(a.0.iter().all(|&x| x == 1));
    }

    #[test]
    fn generate_respects_parameters() {
        let mut rng = rng();
        let w = generate_workload(50, 10, 8, 7, PlaintextRange::new(0, 3), 800, &mut rng);
        assert_eq!(w.spec.n, 50);
        assert_eq!(w.golden.len(), 10);
        assert_eq!(w.spec.k, 8);
        assert_eq!(w.spec.theta, 7);
        assert_eq!(w.spec.reward_per_worker(), 100);
        assert!(w.truth.0.iter().all(|&t| t <= 3));
    }
}
