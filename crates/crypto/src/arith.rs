//! Low-level multi-precision limb arithmetic helpers.
//!
//! All field arithmetic in this crate is built on 64-bit limbs in
//! little-endian order. These helpers implement the classic
//! add-with-carry / subtract-with-borrow / multiply-accumulate primitives
//! used by the Montgomery-form field implementation in [`crate::field`].

/// Computes `a + b + carry`, returning the result and the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let ret = (a as u128) + (b as u128) + (carry as u128);
    (ret as u64, (ret >> 64) as u64)
}

/// Computes `a - (b + borrow)`, returning the result and the new borrow.
///
/// The borrow is encoded as `0` (no borrow) or `u64::MAX` (borrow), so the
/// caller passes the previous borrow word straight back in.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let ret = (a as u128).wrapping_sub((b as u128) + ((borrow >> 63) as u128));
    (ret as u64, (ret >> 64) as u64)
}

/// Computes `a + (b * c) + carry`, returning the result and the new carry.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let ret = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (ret as u64, (ret >> 64) as u64)
}

/// Returns `true` when the 4-limb little-endian integer `a` is strictly
/// less than `b`.
#[inline]
pub const fn lt_4(a: &[u64; 4], b: &[u64; 4]) -> bool {
    let mut i = 3;
    loop {
        if a[i] < b[i] {
            return true;
        }
        if a[i] > b[i] {
            return false;
        }
        if i == 0 {
            return false;
        }
        i -= 1;
    }
}

/// Subtracts 4-limb `b` from `a`, wrapping; returns (limbs, borrow-out).
#[inline]
pub const fn sub_4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let (r0, borrow) = sbb(a[0], b[0], 0);
    let (r1, borrow) = sbb(a[1], b[1], borrow);
    let (r2, borrow) = sbb(a[2], b[2], borrow);
    let (r3, borrow) = sbb(a[3], b[3], borrow);
    ([r0, r1, r2, r3], borrow)
}

/// Adds 4-limb `a` and `b`, wrapping; returns (limbs, carry-out).
#[inline]
pub const fn add_4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let (r0, carry) = adc(a[0], b[0], 0);
    let (r1, carry) = adc(a[1], b[1], carry);
    let (r2, carry) = adc(a[2], b[2], carry);
    let (r3, carry) = adc(a[3], b[3], carry);
    ([r0, r1, r2, r3], carry)
}

/// Number of significant bits in a little-endian limb slice.
pub fn bit_len(limbs: &[u64]) -> usize {
    for (i, &l) in limbs.iter().enumerate().rev() {
        if l != 0 {
            return 64 * i + (64 - l.leading_zeros() as usize);
        }
    }
    0
}

/// Reads bit `i` (little-endian) of a limb slice.
#[inline]
pub fn bit(limbs: &[u64], i: usize) -> bool {
    (limbs[i / 64] >> (i % 64)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        let (r, b) = sbb(0, 1, 0);
        assert_eq!(r, u64::MAX);
        assert_eq!(b, u64::MAX);
        let (r, b) = sbb(5, 1, b);
        assert_eq!(r, 3);
        assert_eq!(b, 0);
    }

    #[test]
    fn mac_full_width() {
        // (2^64-1)^2 + (2^64-1) + (2^64-1) = 2^128 - 1
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn cmp_and_sub() {
        let a = [1, 0, 0, 5];
        let b = [2, 0, 0, 5];
        assert!(lt_4(&a, &b));
        assert!(!lt_4(&b, &a));
        assert!(!lt_4(&a, &a));
        let (d, borrow) = sub_4(&b, &a);
        assert_eq!(d, [1, 0, 0, 0]);
        assert_eq!(borrow, 0);
        let (_, borrow) = sub_4(&a, &b);
        assert_eq!(borrow, u64::MAX);
    }

    #[test]
    fn bit_len_works() {
        assert_eq!(bit_len(&[0, 0, 0, 0]), 0);
        assert_eq!(bit_len(&[1, 0, 0, 0]), 1);
        assert_eq!(bit_len(&[0, 1, 0, 0]), 65);
        assert_eq!(bit_len(&[0, 0, 0, 0x8000_0000_0000_0000]), 256);
    }

    #[test]
    fn bit_indexing() {
        let l = [0b1010u64, 1, 0, 0];
        assert!(!bit(&l, 0));
        assert!(bit(&l, 1));
        assert!(!bit(&l, 2));
        assert!(bit(&l, 3));
        assert!(bit(&l, 64));
    }
}
