//! The folklore random-oracle commitment of §V-C:
//! `Commit(msg, key) = H(msg ‖ key)`, `Open` recomputes and compares.
//!
//! Computationally hiding (the 256-bit key blinds the preimage in the
//! random-oracle model) and computationally binding (collision resistance
//! of Keccak-256). Used twice by the protocol: workers commit to their
//! encrypted answers (phase 2-a) and the requester commits to the
//! gold-standard set `G ‖ Gs` at publish time.

use crate::keccak::keccak256_concat;
use rand::Rng;

/// A 256-bit blinding key.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct CommitmentKey(pub [u8; 32]);

impl CommitmentKey {
    /// Samples a fresh uniformly random key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut k = [0u8; 32];
        rng.fill(&mut k);
        Self(k)
    }
}

/// A commitment digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct Commitment(pub [u8; 32]);

impl Commitment {
    /// `Commit(msg, key) = H(msg ‖ key)`.
    ///
    /// The message is length-prefixed to keep the encoding injective even
    /// though the key has fixed width.
    pub fn commit(msg: &[u8], key: &CommitmentKey) -> Self {
        Self(keccak256_concat(&[
            &(msg.len() as u64).to_le_bytes(),
            msg,
            &key.0,
        ]))
    }

    /// `Open(comm, msg', key')`: returns whether `(msg', key')` opens this
    /// commitment.
    pub fn open(&self, msg: &[u8], key: &CommitmentKey) -> bool {
        Self::commit(msg, key) == *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc0_11)
    }

    #[test]
    fn commit_open_round_trip() {
        let mut rng = rng();
        let key = CommitmentKey::random(&mut rng);
        let comm = Commitment::commit(b"the answer", &key);
        assert!(comm.open(b"the answer", &key));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = rng();
        let key = CommitmentKey::random(&mut rng);
        let comm = Commitment::commit(b"msg", &key);
        assert!(!comm.open(b"msg2", &key));
        assert!(!comm.open(b"", &key));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = rng();
        let key1 = CommitmentKey::random(&mut rng);
        let key2 = CommitmentKey::random(&mut rng);
        assert_ne!(key1, key2);
        let comm = Commitment::commit(b"msg", &key1);
        assert!(!comm.open(b"msg", &key2));
    }

    #[test]
    fn hiding_distinct_keys_distinct_commitments() {
        // Same message, different keys → different digests (w.h.p.).
        let mut rng = rng();
        let c1 = Commitment::commit(b"m", &CommitmentKey::random(&mut rng));
        let c2 = Commitment::commit(b"m", &CommitmentKey::random(&mut rng));
        assert_ne!(c1, c2);
    }

    #[test]
    fn empty_message_supported() {
        let mut rng = rng();
        let key = CommitmentKey::random(&mut rng);
        let comm = Commitment::commit(b"", &key);
        assert!(comm.open(b"", &key));
        assert!(!comm.open(b"\x00", &key));
    }
}
