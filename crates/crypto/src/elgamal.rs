//! Exponential ElGamal over G1 with short-range decryption (§V-C).
//!
//! * Key generation: `k ← Fr`, `h = g^k`.
//! * Encryption: `Enc_h(m; ρ) = (g^ρ, g^m · h^ρ)`.
//! * Decryption: `Dec_k((c1, c2))` computes `M = c2 / c1^k = g^m` and then
//!   solves the discrete log over the (small) plaintext range; if `m` is
//!   outside the range, the *group element* `g^m` is returned instead —
//!   exactly the behaviour the paper's `Deck` specifies, which is what the
//!   `outrange` path of the contract verifies against.
//!
//! Answers in a HIT are options of multiple-choice questions, so the
//! plaintext range is a small constant (e.g. `{0, 1}` for the ImageNet
//! binary task); decryption is a handful of group operations. For larger
//! ranges a baby-step/giant-step solver is provided
//! ([`discrete_log_bsgs`]), benchmarked against brute force in the
//! ablation bench.

use crate::field::Fr;
use crate::g1::{G1Affine, G1Projective};
use crate::precomp::{mul_generator, FixedBaseTable};
use rand::Rng;
use std::collections::HashMap;

/// The public encryption key `h = g^k`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct EncryptionKey(pub G1Affine);

/// The secret decryption key `k`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecryptionKey(pub Fr);

/// An encryption/decryption key pair.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    /// The public key.
    pub ek: EncryptionKey,
    /// The secret key.
    pub dk: DecryptionKey,
}

impl KeyPair {
    /// `KeyGen(1^λ)`: samples `k ← Fr`, sets `h = g^k`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let k = Fr::random(rng);
        Self::from_secret(k)
    }

    /// Rebuilds the key pair from an existing secret.
    pub fn from_secret(k: Fr) -> Self {
        let h = mul_generator(&k).to_affine();
        Self {
            ek: EncryptionKey(h),
            dk: DecryptionKey(k),
        }
    }
}

/// An exponential-ElGamal ciphertext `(c1, c2) = (g^ρ, g^m h^ρ)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct Ciphertext {
    /// `c1 = g^ρ`.
    pub c1: G1Affine,
    /// `c2 = g^m · h^ρ`.
    pub c2: G1Affine,
}

impl Ciphertext {
    /// Canonical 128-byte encoding (`c1 ‖ c2`, uncompressed points).
    pub fn to_bytes(&self) -> [u8; 128] {
        let mut out = [0u8; 128];
        out[..64].copy_from_slice(&self.c1.to_bytes());
        out[64..].copy_from_slice(&self.c2.to_bytes());
        out
    }

    /// Parses the canonical encoding, validating both points.
    pub fn from_bytes(bytes: &[u8; 128]) -> Option<Self> {
        let mut b1 = [0u8; 64];
        let mut b2 = [0u8; 64];
        b1.copy_from_slice(&bytes[..64]);
        b2.copy_from_slice(&bytes[64..]);
        Some(Self {
            c1: G1Affine::from_bytes(&b1)?,
            c2: G1Affine::from_bytes(&b2)?,
        })
    }

    /// Homomorphically adds another ciphertext (plaintexts add).
    pub fn homomorphic_add(&self, rhs: &Self) -> Self {
        Self {
            c1: (self.c1.to_projective() + rhs.c1.to_projective()).to_affine(),
            c2: (self.c2.to_projective() + rhs.c2.to_projective()).to_affine(),
        }
    }
}

/// The inclusive plaintext range of a multiple-choice question
/// (`range` in the paper — "some options in range ⊂ N ∪ 0").
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct PlaintextRange {
    /// Smallest admissible plaintext.
    pub lo: u64,
    /// Largest admissible plaintext (inclusive).
    pub hi: u64,
}

impl PlaintextRange {
    /// Constructs a range; panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty plaintext range");
        Self { lo, hi }
    }

    /// The binary range `{0, 1}` used by the paper's ImageNet task.
    pub fn binary() -> Self {
        Self::new(0, 1)
    }

    /// Whether `m` lies in the range.
    pub fn contains(&self, m: u64) -> bool {
        self.lo <= m && m <= self.hi
    }

    /// Number of admissible options.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Whether the range is a single value.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The outcome of short-range decryption.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decrypted {
    /// The plaintext was inside the declared range.
    InRange(u64),
    /// The plaintext was outside the range; the group element `g^m` is
    /// returned (the paper: "if decryption fails to output m ∈ range,
    /// then c2/c1^k is returned").
    OutOfRange(G1Affine),
}

impl EncryptionKey {
    /// Encrypts `m` with fresh randomness, returning the ciphertext.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> Ciphertext {
        self.encrypt_with(m, Fr::random(rng))
    }

    /// Encrypts `m` with caller-chosen randomness `ρ` (deterministic;
    /// exposed for tests and for the simulator).
    pub fn encrypt_with(&self, m: u64, rho: Fr) -> Ciphertext {
        let c1 = mul_generator(&rho).to_affine();
        let c2 = (mul_generator(&Fr::from_u64(m)) + self.0 * rho).to_affine();
        Ciphertext { c1, c2 }
    }

    /// [`EncryptionKey::encrypt_with`], with the `h^ρ` term computed
    /// through a precomputed fixed-base table for this key. Produces the
    /// identical ciphertext; only wall clock changes. The proving
    /// service's commit jobs fetch one table per requester from the
    /// shared [`crate::precomp::ProofCache`] and thread it through here.
    pub fn encrypt_with_table(
        &self,
        m: u64,
        rho: Fr,
        table: Option<&FixedBaseTable>,
    ) -> Ciphertext {
        let Some(table) = table else {
            return self.encrypt_with(m, rho);
        };
        let c1 = mul_generator(&rho).to_affine();
        let c2 = (mul_generator(&Fr::from_u64(m)) + table.mul(&rho)).to_affine();
        Ciphertext { c1, c2 }
    }
}

impl DecryptionKey {
    /// Computes the "raw" decryption `M = c2 / c1^k = g^m`.
    pub fn decrypt_raw(&self, ct: &Ciphertext) -> G1Affine {
        (ct.c2.to_projective() - ct.c1 * self.0).to_affine()
    }

    /// Full short-range decryption: brute-forces the discrete log over
    /// `range`, falling back to the raw group element when out of range.
    pub fn decrypt(&self, ct: &Ciphertext, range: &PlaintextRange) -> Decrypted {
        let m_point = self.decrypt_raw(ct);
        match discrete_log_in_range(&m_point, range) {
            Some(m) => Decrypted::InRange(m),
            None => Decrypted::OutOfRange(m_point),
        }
    }

    /// The matching public key.
    pub fn public_key(&self) -> EncryptionKey {
        EncryptionKey(mul_generator(&self.0).to_affine())
    }
}

/// Solves `g^m = target` for `m ∈ range` by linear scan (the paper's
/// "log is to brute-force the short plaintext range").
pub fn discrete_log_in_range(target: &G1Affine, range: &PlaintextRange) -> Option<u64> {
    let g = G1Projective::generator();
    let mut cur = g * Fr::from_u64(range.lo);
    for m in range.lo..=range.hi {
        if cur.to_affine() == *target {
            return Some(m);
        }
        cur = cur + G1Affine::generator();
    }
    None
}

/// Baby-step/giant-step discrete log: solves `g^m = target` for
/// `0 <= m < bound` in `O(√bound)` group operations and memory.
///
/// Used by the ablation benchmark to locate the range size at which BSGS
/// overtakes the linear scan.
pub fn discrete_log_bsgs(target: &G1Affine, bound: u64) -> Option<u64> {
    if bound == 0 {
        return None;
    }
    let g = G1Projective::generator();
    let m = (bound as f64).sqrt().ceil() as u64;
    // Baby steps: table of g^j for j in [0, m).
    let mut table: HashMap<[u8; 64], u64> = HashMap::with_capacity(m as usize);
    let mut cur = G1Projective::identity();
    for j in 0..m {
        table.insert(cur.to_affine().to_bytes(), j);
        cur = cur + G1Affine::generator();
    }
    // Giant steps: target * (g^-m)^i.
    let g_minus_m = (-(g * Fr::from_u64(m))).to_affine();
    let mut gamma = target.to_projective();
    for i in 0..=m {
        if let Some(&j) = table.get(&gamma.to_affine().to_bytes()) {
            let candidate = i * m + j;
            if candidate < bound {
                return Some(candidate);
            }
        }
        gamma = gamma + g_minus_m;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xe16a)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 10);
        for m in 0..=10 {
            let ct = kp.ek.encrypt(m, &mut rng);
            assert_eq!(kp.dk.decrypt(&ct, &range), Decrypted::InRange(m));
        }
    }

    #[test]
    fn out_of_range_returns_group_element() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::binary();
        let ct = kp.ek.encrypt(7, &mut rng);
        match kp.dk.decrypt(&ct, &range) {
            Decrypted::OutOfRange(p) => {
                assert_eq!(p, (G1Projective::generator() * Fr::from_u64(7)).to_affine());
            }
            other => panic!("expected out-of-range, got {other:?}"),
        }
    }

    #[test]
    fn wrong_key_garbles() {
        let mut rng = rng();
        let kp1 = KeyPair::generate(&mut rng);
        let kp2 = KeyPair::generate(&mut rng);
        let range = PlaintextRange::binary();
        let ct = kp1.ek.encrypt(1, &mut rng);
        // With overwhelming probability the wrong key decrypts out of the
        // tiny range.
        assert!(matches!(
            kp2.dk.decrypt(&ct, &range),
            Decrypted::OutOfRange(_)
        ));
    }

    #[test]
    fn randomized_ciphertexts_differ() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let ct1 = kp.ek.encrypt(1, &mut rng);
        let ct2 = kp.ek.encrypt(1, &mut rng);
        assert_ne!(ct1, ct2, "semantic security requires fresh randomness");
    }

    #[test]
    fn deterministic_encrypt_with_fixed_randomness() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let rho = Fr::random(&mut rng);
        assert_eq!(kp.ek.encrypt_with(3, rho), kp.ek.encrypt_with(3, rho));
    }

    #[test]
    fn homomorphic_addition() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 100);
        let ct1 = kp.ek.encrypt(30, &mut rng);
        let ct2 = kp.ek.encrypt(12, &mut rng);
        let sum = ct1.homomorphic_add(&ct2);
        assert_eq!(kp.dk.decrypt(&sum, &range), Decrypted::InRange(42));
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        let ct = kp.ek.encrypt(1, &mut rng);
        assert_eq!(Ciphertext::from_bytes(&ct.to_bytes()).unwrap(), ct);
    }

    #[test]
    fn bsgs_matches_linear() {
        for m in [0u64, 1, 2, 17, 99, 100, 1000, 4095] {
            let target = (G1Projective::generator() * Fr::from_u64(m)).to_affine();
            assert_eq!(discrete_log_bsgs(&target, 4096), Some(m), "m = {m}");
            if m <= 100 {
                assert_eq!(
                    discrete_log_in_range(&target, &PlaintextRange::new(0, 100)),
                    Some(m)
                );
            }
        }
    }

    #[test]
    fn bsgs_out_of_bound() {
        let target = (G1Projective::generator() * Fr::from_u64(5000)).to_affine();
        assert_eq!(discrete_log_bsgs(&target, 4096), None);
        assert_eq!(
            discrete_log_in_range(&target, &PlaintextRange::new(0, 100)),
            None
        );
    }

    #[test]
    fn range_helpers() {
        let r = PlaintextRange::binary();
        assert!(r.contains(0) && r.contains(1) && !r.contains(2));
        assert_eq!(r.len(), 2);
        assert_eq!(PlaintextRange::new(3, 7).len(), 5);
    }

    #[test]
    fn key_pair_consistency() {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        assert_eq!(kp.dk.public_key(), kp.ek);
    }
}
