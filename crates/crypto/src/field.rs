//! Prime fields for the BN-254 ("BN-128" in the paper) curve family.
//!
//! Two fields are defined:
//!
//! * [`Fq`] — the base field of the curve (the coordinates of G1 points),
//!   with modulus `q = 21888242871839275222246405745257275088696311157297823662689037894645226208583`.
//! * [`Fr`] — the scalar field (the group order of G1/G2), with modulus
//!   `r = 21888242871839275222246405745257275088548364400416034343698204186575808495617`.
//!
//! Elements are stored in Montgomery form (multiplied by `R = 2^256 mod p`)
//! over four 64-bit little-endian limbs, with textbook schoolbook
//! multiplication followed by Montgomery reduction. The representation is
//! always kept canonical (reduced), which makes derived equality/hashing
//! sound.

use crate::arith::{adc, add_4, bit, bit_len, lt_4, mac, sub_4};
use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// Generates a 4-limb Montgomery-form prime field type.
macro_rules! montgomery_field {
    (
        $(#[$doc:meta])*
        $name:ident,
        modulus = $modulus:expr,
        r = $r:expr,
        r2 = $r2:expr,
        inv = $inv:expr,
        modulus_str = $modulus_str:expr
    ) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub(crate) [u64; 4]);

        impl $name {
            /// The field modulus as little-endian limbs.
            pub const MODULUS: [u64; 4] = $modulus;
            /// `R = 2^256 mod p` — the Montgomery radix, also the
            /// Montgomery form of `1`.
            pub const R: [u64; 4] = $r;
            /// `R^2 mod p`, used to convert into Montgomery form.
            pub const R2: [u64; 4] = $r2;
            /// `-p^{-1} mod 2^64`, the Montgomery reduction constant.
            pub const INV: u64 = $inv;
            /// The modulus as a decimal string (for documentation/tests).
            pub const MODULUS_STR: &'static str = $modulus_str;

            /// The additive identity.
            #[inline]
            pub const fn zero() -> Self {
                Self([0, 0, 0, 0])
            }

            /// The multiplicative identity.
            #[inline]
            pub const fn one() -> Self {
                Self(Self::R)
            }

            /// Whether this element is zero.
            #[inline]
            pub fn is_zero(&self) -> bool {
                self.0 == [0, 0, 0, 0]
            }

            /// Constructs an element from a small integer.
            pub fn from_u64(v: u64) -> Self {
                Self([v, 0, 0, 0]) * Self(Self::R2)
            }

            /// Constructs an element from a u128.
            pub fn from_u128(v: u128) -> Self {
                Self([v as u64, (v >> 64) as u64, 0, 0]) * Self(Self::R2)
            }

            /// Constructs an element from plain (non-Montgomery) limbs,
            /// which must be fully reduced. Returns `None` otherwise.
            pub fn from_plain_limbs(l: [u64; 4]) -> Option<Self> {
                if lt_4(&l, &Self::MODULUS) {
                    Some(Self(l) * Self(Self::R2))
                } else {
                    None
                }
            }

            /// Converts out of Montgomery form into plain little-endian limbs.
            pub fn to_plain_limbs(&self) -> [u64; 4] {
                Self::montgomery_reduce(&[
                    self.0[0], self.0[1], self.0[2], self.0[3], 0, 0, 0, 0,
                ])
                .0
            }

            /// Canonical 32-byte little-endian encoding.
            pub fn to_bytes_le(&self) -> [u8; 32] {
                let l = self.to_plain_limbs();
                let mut out = [0u8; 32];
                for i in 0..4 {
                    out[8 * i..8 * i + 8].copy_from_slice(&l[i].to_le_bytes());
                }
                out
            }

            /// Parses a canonical 32-byte little-endian encoding.
            ///
            /// Returns `None` if the value is not fully reduced.
            pub fn from_bytes_le(bytes: &[u8; 32]) -> Option<Self> {
                let mut l = [0u64; 4];
                for i in 0..4 {
                    let mut w = [0u8; 8];
                    w.copy_from_slice(&bytes[8 * i..8 * i + 8]);
                    l[i] = u64::from_le_bytes(w);
                }
                Self::from_plain_limbs(l)
            }

            /// Interprets 64 little-endian bytes as an integer and reduces
            /// it modulo `p` (used for hash-to-field).
            pub fn from_bytes_wide(bytes: &[u8; 64]) -> Self {
                let mut lo = [0u64; 4];
                let mut hi = [0u64; 4];
                for i in 0..4 {
                    let mut w = [0u8; 8];
                    w.copy_from_slice(&bytes[8 * i..8 * i + 8]);
                    lo[i] = u64::from_le_bytes(w);
                    w.copy_from_slice(&bytes[32 + 8 * i..32 + 8 * i + 8]);
                    hi[i] = u64::from_le_bytes(w);
                }
                // lo + hi * 2^256 = lo * 1 + hi * R  (mod p), each term is
                // brought into Montgomery form by one extra R factor.
                Self(lo) * Self(Self::R2) + Self(hi) * Self(Self::R2) * Self(Self::R2)
            }

            /// Samples a uniformly random field element by rejection.
            pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                loop {
                    let mut l = [0u64; 4];
                    for limb in &mut l {
                        *limb = rng.gen();
                    }
                    // The moduli here are 254-bit, so clear the top two bits
                    // to make acceptance likely.
                    l[3] &= u64::MAX >> 2;
                    if lt_4(&l, &Self::MODULUS) {
                        return Self(l) * Self(Self::R2);
                    }
                }
            }

            #[inline]
            fn reduce_once(l: [u64; 4], carry: u64) -> Self {
                // If the value overflowed 2^256 or is >= p, subtract p once.
                let (sub, borrow) = sub_4(&l, &Self::MODULUS);
                if carry != 0 || borrow == 0 {
                    Self(sub)
                } else {
                    Self(l)
                }
            }

            /// Montgomery reduction of an 8-limb product; returns limbs and
            /// performs the final conditional subtraction.
            fn montgomery_reduce(t: &[u64; 8]) -> Self {
                let m = Self::MODULUS;
                let mut t = *t;
                let mut carry2 = 0u64;
                for i in 0..4 {
                    let k = t[i].wrapping_mul(Self::INV);
                    let (_, mut carry) = mac(t[i], k, m[0], 0);
                    for j in 1..4 {
                        let (v, c) = mac(t[i + j], k, m[j], carry);
                        t[i + j] = v;
                        carry = c;
                    }
                    let (v, c) = adc(t[i + 4], carry2, carry);
                    t[i + 4] = v;
                    carry2 = c;
                }
                Self::reduce_once([t[4], t[5], t[6], t[7]], carry2)
            }

            /// Field multiplication (Montgomery).
            pub fn mul_internal(&self, rhs: &Self) -> Self {
                let a = &self.0;
                let b = &rhs.0;
                let mut t = [0u64; 8];
                for i in 0..4 {
                    let mut carry = 0u64;
                    for j in 0..4 {
                        let (v, c) = mac(t[i + j], a[i], b[j], carry);
                        t[i + j] = v;
                        carry = c;
                    }
                    t[i + 4] = carry;
                }
                Self::montgomery_reduce(&t)
            }

            /// Squares this element.
            #[inline]
            pub fn square(&self) -> Self {
                self.mul_internal(self)
            }

            /// Doubles this element.
            #[inline]
            pub fn double(&self) -> Self {
                *self + *self
            }

            /// Raises this element to the power given by little-endian limbs.
            pub fn pow(&self, exp: &[u64]) -> Self {
                let n = bit_len(exp);
                if n == 0 {
                    return Self::one();
                }
                let mut acc = *self;
                for i in (0..n - 1).rev() {
                    acc = acc.square();
                    if bit(exp, i) {
                        acc = acc.mul_internal(self);
                    }
                }
                acc
            }

            /// Multiplicative inverse; `None` for zero.
            ///
            /// Computed as `self^(p-2)` by Fermat's little theorem.
            pub fn inverse(&self) -> Option<Self> {
                if self.is_zero() {
                    return None;
                }
                let (p_minus_2, _) = sub_4(&Self::MODULUS, &[2, 0, 0, 0]);
                Some(self.pow(&p_minus_2))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                let (l, carry) = add_4(&self.0, &rhs.0);
                Self::reduce_once(l, carry)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                let (l, borrow) = sub_4(&self.0, &rhs.0);
                if borrow != 0 {
                    let (l2, _) = add_4(&l, &Self::MODULUS);
                    Self(l2)
                } else {
                    Self(l)
                }
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self::zero() - self
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.mul_internal(&rhs)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }
        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }
        impl MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self::from_u64(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let l = self.to_plain_limbs();
                write!(
                    f,
                    "0x{:016x}{:016x}{:016x}{:016x}",
                    l[3], l[2], l[1], l[0]
                )
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

montgomery_field!(
    /// The BN-254 base field `F_q` (G1 point coordinates live here).
    Fq,
    modulus = [
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029
    ],
    r = [
        0xd35d438dc58f0d9d,
        0x0a78eb28f5c70b3d,
        0x666ea36f7879462c,
        0x0e0a77c19a07df2f
    ],
    r2 = [
        0xf32cfc5b538afa89,
        0xb5e71911d44501fb,
        0x47ab1eff0a417ff6,
        0x06d89f71cab8351f
    ],
    inv = 0x87d20782e4866389,
    modulus_str = "21888242871839275222246405745257275088696311157297823662689037894645226208583"
);

montgomery_field!(
    /// The BN-254 scalar field `F_r` (the order of G1/G2; exponents,
    /// plaintexts, blinding factors and SNARK witnesses live here).
    Fr,
    modulus = [
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029
    ],
    r = [
        0xac96341c4ffffffb,
        0x36fc76959f60cd29,
        0x666ea36f7879462e,
        0x0e0a77c19a07df2f
    ],
    r2 = [
        0x1bb8e645ae216da7,
        0x53fe3ab1e35c59e3,
        0x8c49833d53bb8085,
        0x0216d0b17f4e44a5
    ],
    inv = 0xc2e1f593efffffff,
    modulus_str = "21888242871839275222246405745257275088548364400416034343698204186575808495617"
);

impl Fq {
    /// `(q+1)/4`; valid square-root exponent because `q ≡ 3 (mod 4)`.
    const SQRT_EXP: [u64; 4] = [
        0x4f082305b61f3f52,
        0x65e05aa45a1c72a3,
        0x6e14116da0605617,
        0x0c19139cb84c680a,
    ];

    /// Square root, if this element is a quadratic residue.
    pub fn sqrt(&self) -> Option<Self> {
        let cand = self.pow(&Self::SQRT_EXP);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }
}

impl Fr {
    /// The 2-adicity of `r - 1`: `2^28 | r - 1`, enabling radix-2 NTTs of
    /// size up to `2^28`.
    pub const TWO_ADICITY: u32 = 28;

    /// A primitive `2^28`-th root of unity (plain limbs): `5^((r-1)/2^28)`.
    const ROOT_OF_UNITY_PLAIN: [u64; 4] = [
        0x9bd61b6e725b19f0,
        0x402d111e41112ed4,
        0x00e0a7eb8ef62abc,
        0x2a3c09f0a58a7e85,
    ];

    /// Returns a primitive `2^k`-th root of unity, for `k <= 28`.
    pub fn root_of_unity(k: u32) -> Option<Self> {
        if k > Self::TWO_ADICITY {
            return None;
        }
        let mut w = Self::from_plain_limbs(Self::ROOT_OF_UNITY_PLAIN)
            .expect("root-of-unity constant is reduced");
        for _ in 0..(Self::TWO_ADICITY - k) {
            w = w.square();
        }
        Some(w)
    }

    /// Reduces a 32-byte little-endian integer modulo `r` (not required to
    /// be canonical) — used by the Fiat–Shamir transform to map hash
    /// outputs onto challenge scalars.
    pub fn from_bytes_le_reduced(bytes: &[u8; 32]) -> Self {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Self::from_bytes_wide(&wide)
    }
}

/// Serde support: fields serialize as canonical 32-byte LE arrays.
macro_rules! field_serde {
    ($name:ident) => {
        impl serde::Serialize for $name {
            fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                serde::Serialize::serialize(&self.to_bytes_le().to_vec(), s)
            }
        }
        impl<'de> serde::Deserialize<'de> for $name {
            fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v: Vec<u8> = serde::Deserialize::deserialize(d)?;
                let arr: [u8; 32] = v
                    .try_into()
                    .map_err(|_| serde::de::Error::custom("expected 32 bytes"))?;
                $name::from_bytes_le(&arr)
                    .ok_or_else(|| serde::de::Error::custom("non-canonical field element"))
            }
        }
    };
}
field_serde!(Fq);
field_serde!(Fr);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xd24a_6001)
    }

    #[test]
    fn one_times_one() {
        assert_eq!(Fq::one() * Fq::one(), Fq::one());
        assert_eq!(Fr::one() * Fr::one(), Fr::one());
    }

    #[test]
    fn small_arithmetic() {
        let a = Fq::from_u64(7);
        let b = Fq::from_u64(6);
        assert_eq!(a * b, Fq::from_u64(42));
        assert_eq!(a + b, Fq::from_u64(13));
        assert_eq!(a - b, Fq::from_u64(1));
        assert_eq!(b - a, -Fq::from_u64(1));
        assert_eq!(a.square(), Fq::from_u64(49));
        assert_eq!(a.double(), Fq::from_u64(14));
    }

    #[test]
    fn add_wraps_modulus() {
        // (p-1) + 2 == 1
        let p_minus_1 = -Fq::one();
        assert_eq!(p_minus_1 + Fq::from_u64(2), Fq::one());
        let r_minus_1 = -Fr::one();
        assert_eq!(r_minus_1 + Fr::from_u64(2), Fr::one());
    }

    #[test]
    fn inverse_round_trip() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fq::one());
            let b = Fr::random(&mut rng);
            if b.is_zero() {
                continue;
            }
            assert_eq!(b * b.inverse().unwrap(), Fr::one());
        }
        assert!(Fq::zero().inverse().is_none());
        assert!(Fr::zero().inverse().is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fq::from_u64(3);
        let mut acc = Fq::one();
        for _ in 0..17 {
            acc *= a;
        }
        assert_eq!(a.pow(&[17]), acc);
        assert_eq!(a.pow(&[0]), Fq::one());
        assert_eq!(a.pow(&[1]), a);
    }

    #[test]
    fn fermat_exponent() {
        // a^(p-1) == 1
        let mut rng = rng();
        let a = Fq::random(&mut rng);
        let (p_minus_1, _) = crate::arith::sub_4(&Fq::MODULUS, &[1, 0, 0, 0]);
        assert_eq!(a.pow(&p_minus_1), Fq::one());
        let b = Fr::random(&mut rng);
        let (r_minus_1, _) = crate::arith::sub_4(&Fr::MODULUS, &[1, 0, 0, 0]);
        assert_eq!(b.pow(&r_minus_1), Fr::one());
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fq::random(&mut rng);
            assert_eq!(Fq::from_bytes_le(&a.to_bytes_le()).unwrap(), a);
            let b = Fr::random(&mut rng);
            assert_eq!(Fr::from_bytes_le(&b.to_bytes_le()).unwrap(), b);
        }
    }

    #[test]
    fn non_canonical_bytes_rejected() {
        let mut bytes = [0xffu8; 32];
        assert!(Fq::from_bytes_le(&bytes).is_none());
        bytes = [0u8; 32];
        bytes[0] = 1;
        assert_eq!(Fq::from_bytes_le(&bytes).unwrap(), Fq::one());
    }

    #[test]
    fn from_bytes_wide_reduces() {
        // 2^256 mod p equals R (as an integer), so from_bytes_wide of
        // [0;32] ++ [1, 0...] must equal the field element with plain
        // limbs R.
        let mut wide = [0u8; 64];
        wide[32] = 1;
        let got = Fq::from_bytes_wide(&wide);
        let expect = Fq::from_plain_limbs(Fq::R).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn fq_sqrt() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fq::random(&mut rng);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == -a);
        }
        // A quadratic non-residue must fail. -1 is a QNR mod q because
        // q ≡ 3 (mod 4).
        assert!((-Fq::one()).sqrt().is_none());
    }

    #[test]
    fn fr_root_of_unity() {
        let w = Fr::root_of_unity(3).unwrap();
        // w^8 == 1 and w^4 != 1.
        assert_eq!(w.pow(&[8]), Fr::one());
        assert_ne!(w.pow(&[4]), Fr::one());
        assert_eq!(Fr::root_of_unity(0).unwrap(), Fr::one());
        assert!(Fr::root_of_unity(29).is_none());
    }

    #[test]
    fn distributivity_randomized() {
        let mut rng = rng();
        for _ in 0..50 {
            let a = Fq::random(&mut rng);
            let b = Fq::random(&mut rng);
            let c = Fq::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!((a + b) * c, a * c + b * c);
            assert_eq!(a * b, b * a);
            assert_eq!((a - b) + b, a);
        }
    }

    #[test]
    fn from_u128_consistent() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let lo = Fq::from_u64(v as u64);
        let hi = Fq::from_u64((v >> 64) as u64);
        let two64 = Fq::from_u64(u64::MAX) + Fq::one();
        assert_eq!(Fq::from_u128(v), hi * two64 + lo);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        // Serialize through a simple serde format: use serde's test by
        // round-tripping through serde_json-like in-memory — we avoid
        // external crates, so just check the byte codec directly via the
        // Serialize impl contract (to_bytes_le is the wire format).
        assert_eq!(Fr::from_bytes_le(&a.to_bytes_le()), Some(a));
    }
}
