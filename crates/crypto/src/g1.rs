//! The G1 group of BN-254: `E(F_q): y^2 = x^3 + 3`, prime order `r`.
//!
//! This is the cyclic group `G = <g>` over which the paper instantiates
//! all of its public-key primitives ("we choose the cyclic group G by
//! using the G1 subgroup of BN-128", §VI). Points are manipulated in
//! Jacobian projective coordinates internally and exposed in affine form.

use crate::arith::{bit, bit_len};
use crate::field::{Fq, Fr};
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};
use rand::Rng;

/// A G1 point in affine coordinates. The identity is encoded by the
/// `infinity` flag (coordinates are then ignored, conventionally zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct G1Affine {
    /// The x-coordinate.
    pub x: Fq,
    /// The y-coordinate.
    pub y: Fq,
    /// Whether this is the point at infinity (group identity).
    pub infinity: bool,
}

/// A G1 point in Jacobian coordinates `(X, Y, Z)` representing the affine
/// point `(X/Z^2, Y/Z^3)`; `Z = 0` encodes the identity.
#[derive(Clone, Copy)]
pub struct G1Projective {
    x: Fq,
    y: Fq,
    z: Fq,
}

/// The curve coefficient `b = 3`.
pub fn curve_b() -> Fq {
    Fq::from_u64(3)
}

impl G1Affine {
    /// The group identity (point at infinity).
    pub fn identity() -> Self {
        Self {
            x: Fq::zero(),
            y: Fq::zero(),
            infinity: true,
        }
    }

    /// The standard generator `(1, 2)`.
    pub fn generator() -> Self {
        Self {
            x: Fq::one(),
            y: Fq::from_u64(2),
            infinity: false,
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks the curve equation `y^2 = x^3 + 3`.
    ///
    /// Because the curve has prime order, every point on the curve is in
    /// the right subgroup; no cofactor check is needed.
    pub fn is_on_curve(&self) -> bool {
        self.infinity || self.y.square() == self.x.square() * self.x + curve_b()
    }

    /// Constructs a point from affine coordinates, validating the curve
    /// equation.
    pub fn from_xy(x: Fq, y: Fq) -> Option<Self> {
        let p = Self {
            x,
            y,
            infinity: false,
        };
        p.is_on_curve().then_some(p)
    }

    /// Uncompressed 64-byte encoding: `x ‖ y` (little-endian field bytes).
    /// The identity encodes as all zeros (not a valid x for this curve, so
    /// unambiguous).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        if !self.infinity {
            out[..32].copy_from_slice(&self.x.to_bytes_le());
            out[32..].copy_from_slice(&self.y.to_bytes_le());
        }
        out
    }

    /// Parses the 64-byte encoding, validating the curve equation.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Self> {
        if bytes.iter().all(|&b| b == 0) {
            return Some(Self::identity());
        }
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..]);
        let x = Fq::from_bytes_le(&xb)?;
        let y = Fq::from_bytes_le(&yb)?;
        Self::from_xy(x, y)
    }

    /// Compressed 32-byte encoding: the x-coordinate with the parity of
    /// `y` packed into the (always-free) top bit of the 254-bit field
    /// element, and the infinity flag in the next bit.
    ///
    /// Halves the calldata of every on-chain point relative to the
    /// 64-byte form — the "what-if" analysed in the gas ablation. The
    /// paper's deployment uses uncompressed points (the EVM precompiles
    /// consume affine coordinates directly, and decompression costs an
    /// on-chain square root).
    pub fn to_bytes_compressed(&self) -> [u8; 32] {
        if self.infinity {
            let mut out = [0u8; 32];
            out[31] = 0x40;
            return out;
        }
        let mut out = self.x.to_bytes_le();
        let y_odd = self.y.to_bytes_le()[0] & 1 == 1;
        if y_odd {
            out[31] |= 0x80;
        }
        out
    }

    /// Parses the compressed encoding, recomputing `y` via a square
    /// root of `x^3 + 3` and the stored parity bit.
    pub fn from_bytes_compressed(bytes: &[u8; 32]) -> Option<Self> {
        let mut b = *bytes;
        let y_odd = b[31] & 0x80 != 0;
        let infinity = b[31] & 0x40 != 0;
        b[31] &= 0x3f;
        if infinity {
            return b
                .iter()
                .all(|&v| v & 0x3f == v && (v == 0 || v == 0x40))
                .then_some(Self::identity());
        }
        let x = Fq::from_bytes_le(&b)?;
        let y2 = x.square() * x + curve_b();
        let y = y2.sqrt()?;
        let y = if (y.to_bytes_le()[0] & 1 == 1) == y_odd {
            y
        } else {
            -y
        };
        Self::from_xy(x, y)
    }

    /// Samples a uniformly random group element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (G1Projective::generator() * Fr::random(rng)).to_affine()
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> G1Projective {
        if self.infinity {
            G1Projective::identity()
        } else {
            G1Projective {
                x: self.x,
                y: self.y,
                z: Fq::one(),
            }
        }
    }
}

impl G1Projective {
    /// The group identity.
    pub fn identity() -> Self {
        Self {
            x: Fq::one(),
            y: Fq::one(),
            z: Fq::zero(),
        }
    }

    /// The standard generator.
    pub fn generator() -> Self {
        G1Affine::generator().to_projective()
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity();
        }
        let zinv = self.z.inverse().expect("nonzero z");
        let zinv2 = zinv.square();
        G1Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }

    /// Point doubling (Jacobian, `a = 0` formulas).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        // dbl-2009-l: A = X^2, B = Y^2, C = B^2,
        // D = 2((X+B)^2 - A - C), E = 3A, F = E^2,
        // X3 = F - 2D, Y3 = E(D - X3) - 8C, Z3 = 2YZ.
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point.
    pub fn add_affine(&self, rhs: &G1Affine) -> Self {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return rhs.to_projective();
        }
        // madd-2007-bl.
        let z1z1 = self.z.square();
        let u2 = rhs.x * z1z1;
        let s2 = rhs.y * z1z1 * self.z;
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition.
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        // add-2007-bl.
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * z2z2 * rhs.z;
        let s2 = rhs.y * z1z1 * self.z;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication by a field element (double-and-add, MSB
    /// first).
    pub fn mul_scalar(&self, k: &Fr) -> Self {
        let limbs = k.to_plain_limbs();
        let n = bit_len(&limbs);
        let mut acc = Self::identity();
        for i in (0..n).rev() {
            acc = acc.double();
            if bit(&limbs, i) {
                acc = Self::add(&acc, self);
            }
        }
        acc
    }
}

impl Default for G1Projective {
    fn default() -> Self {
        Self::identity()
    }
}

impl Default for G1Affine {
    fn default() -> Self {
        Self::identity()
    }
}

impl PartialEq for G1Projective {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1^2, Y1/Z1^3) == (X2/Z2^2, Y2/Z2^3) cross-multiplied.
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}
impl Eq for G1Projective {}

impl Neg for G1Projective {
    type Output = Self;
    fn neg(self) -> Self {
        if self.is_identity() {
            self
        } else {
            Self {
                x: self.x,
                y: -self.y,
                z: self.z,
            }
        }
    }
}

impl Neg for G1Affine {
    type Output = Self;
    fn neg(self) -> Self {
        if self.infinity {
            self
        } else {
            Self {
                x: self.x,
                y: -self.y,
                infinity: false,
            }
        }
    }
}

impl Add for G1Projective {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        G1Projective::add(&self, &rhs)
    }
}

impl Add<G1Affine> for G1Projective {
    type Output = Self;
    fn add(self, rhs: G1Affine) -> Self {
        self.add_affine(&rhs)
    }
}

impl AddAssign for G1Projective {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for G1Projective {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}

impl SubAssign for G1Projective {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<Fr> for G1Projective {
    type Output = Self;
    fn mul(self, k: Fr) -> Self {
        self.mul_scalar(&k)
    }
}

impl Mul<Fr> for G1Affine {
    type Output = G1Projective;
    fn mul(self, k: Fr) -> G1Projective {
        self.to_projective().mul_scalar(&k)
    }
}

impl Sum for G1Projective {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::identity(), |a, b| a + b)
    }
}

impl fmt::Debug for G1Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "G1(inf)")
        } else {
            write!(f, "G1({:?}, {:?})", self.x, self.y)
        }
    }
}

impl fmt::Debug for G1Projective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.to_affine(), f)
    }
}

/// Multi-scalar multiplication: `Σ scalars[i] · bases[i]`.
///
/// Deliberately the straightforward per-point double-and-add; the SNARK
/// baseline's proving cost (Table I) is dominated by these MSMs, mirroring
/// the libsnark prover the paper measured against.
pub fn msm(bases: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(bases.len(), scalars.len(), "msm length mismatch");
    let mut acc = G1Projective::identity();
    for (b, s) in bases.iter().zip(scalars) {
        if s.is_zero() || b.infinity {
            continue;
        }
        acc += b.to_projective().mul_scalar(s);
    }
    acc
}

/// Windowed-bucket (Pippenger) multi-scalar multiplication:
/// `Σ scalars[i] · bases[i]`.
///
/// The batched-settlement hot path (`vpke::batch_verify_each`) folds an
/// entire block's verification equations into one MSM, so this is where
/// batching actually buys throughput: per point it costs roughly
/// `256/c` additions instead of the ~384 of double-and-add, with `c`
/// growing with the batch size. Small inputs fall back to [`msm`] —
/// bucket bookkeeping only pays for itself past a dozen points.
pub fn msm_pippenger(bases: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(bases.len(), scalars.len(), "msm length mismatch");
    let n = bases.len();
    if n < 16 {
        return msm(bases, scalars);
    }
    // Window size tuned to batch size (≈ ln n).
    let c: usize = match n {
        0..=63 => 4,
        64..=255 => 6,
        256..=2047 => 8,
        _ => 11,
    };
    let scalar_bytes: Vec<[u8; 32]> = scalars.iter().map(|s| s.to_bytes_le()).collect();
    // c-bit digit starting at bit `lo` of a little-endian 256-bit scalar.
    let digit = |bytes: &[u8; 32], lo: usize| -> usize {
        let mut v: usize = 0;
        for b in 0..c {
            let bit = lo + b;
            if bit >= 256 {
                break;
            }
            if (bytes[bit / 8] >> (bit % 8)) & 1 == 1 {
                v |= 1 << b;
            }
        }
        v
    };
    let windows = 256usize.div_ceil(c);
    let mut total = G1Projective::identity();
    for w in (0..windows).rev() {
        for _ in 0..c {
            total = total.double();
        }
        let mut buckets = vec![G1Projective::identity(); (1 << c) - 1];
        for i in 0..n {
            if bases[i].infinity {
                continue;
            }
            let d = digit(&scalar_bytes[i], w * c);
            if d != 0 {
                buckets[d - 1] = buckets[d - 1].add_affine(&bases[i]);
            }
        }
        // Standard running-sum aggregation: Σ d · bucket_d.
        let mut running = G1Projective::identity();
        let mut acc = G1Projective::identity();
        for b in buckets.iter().rev() {
            running += *b;
            acc += running;
        }
        total += acc;
    }
    total
}

/// Serde support for affine points (64-byte uncompressed encoding).
impl serde::Serialize for G1Affine {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serde::Serialize::serialize(&self.to_bytes().to_vec(), s)
    }
}
impl<'de> serde::Deserialize<'de> for G1Affine {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v: Vec<u8> = serde::Deserialize::deserialize(d)?;
        let arr: [u8; 64] = v
            .try_into()
            .map_err(|_| serde::de::Error::custom("expected 64 bytes"))?;
        G1Affine::from_bytes(&arr).ok_or_else(|| serde::de::Error::custom("invalid G1 point"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xbeef_cafe)
    }

    #[test]
    fn generator_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
        assert!(G1Affine::identity().is_on_curve());
    }

    #[test]
    fn doubling_matches_addition() {
        let g = G1Projective::generator();
        assert_eq!(g.double(), g + g);
        let g4 = g.double().double();
        assert_eq!(g4, g + g + g + g);
    }

    #[test]
    fn identity_laws() {
        let g = G1Projective::generator();
        let id = G1Projective::identity();
        assert_eq!(g + id, g);
        assert_eq!(id + g, g);
        assert_eq!(g - g, id);
        assert_eq!(id.double(), id);
        assert!(id.to_affine().is_identity());
    }

    #[test]
    fn mixed_addition_consistent() {
        let mut rng = rng();
        for _ in 0..10 {
            let p = G1Affine::random(&mut rng);
            let q = G1Affine::random(&mut rng);
            let full = p.to_projective() + q.to_projective();
            let mixed = p.to_projective().add_affine(&q);
            assert_eq!(full, mixed);
        }
        // Mixed addition degenerate cases.
        let p = G1Affine::random(&mut rng);
        assert_eq!(p.to_projective().add_affine(&p), p.to_projective().double());
        assert_eq!(
            p.to_projective().add_affine(&(-p)),
            G1Projective::identity()
        );
    }

    #[test]
    fn scalar_mul_small() {
        let g = G1Projective::generator();
        assert_eq!(g * Fr::from_u64(0), G1Projective::identity());
        assert_eq!(g * Fr::from_u64(1), g);
        assert_eq!(g * Fr::from_u64(2), g.double());
        assert_eq!(g * Fr::from_u64(5), g + g + g + g + g);
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut rng = rng();
        let g = G1Projective::generator();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(g * a + g * b, g * (a + b));
        assert_eq!((g * a) * b, g * (a * b));
    }

    #[test]
    fn order_annihilates() {
        // r * P == identity for the generator: r ≡ 0 in Fr, so use (r-1)
        // then add once.
        let g = G1Projective::generator();
        let r_minus_1 = -Fr::one();
        assert_eq!(g * r_minus_1 + g, G1Projective::identity());
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = rng();
        for _ in 0..5 {
            let p = G1Affine::random(&mut rng);
            assert_eq!(G1Affine::from_bytes(&p.to_bytes()).unwrap(), p);
        }
        let id = G1Affine::identity();
        assert_eq!(G1Affine::from_bytes(&id.to_bytes()).unwrap(), id);
    }

    #[test]
    fn compressed_round_trip() {
        let mut rng = rng();
        for _ in 0..10 {
            let p = G1Affine::random(&mut rng);
            let c = p.to_bytes_compressed();
            assert_eq!(G1Affine::from_bytes_compressed(&c), Some(p));
        }
        // The generator and its negation compress differently.
        let g = G1Affine::generator();
        assert_ne!(g.to_bytes_compressed(), (-g).to_bytes_compressed());
        assert_eq!(
            G1Affine::from_bytes_compressed(&(-g).to_bytes_compressed()),
            Some(-g)
        );
    }

    #[test]
    fn compressed_identity() {
        let id = G1Affine::identity();
        let c = id.to_bytes_compressed();
        assert_eq!(G1Affine::from_bytes_compressed(&c), Some(id));
    }

    #[test]
    fn compressed_invalid_x_rejected() {
        // x with no curve point: x = 0 gives y^2 = 3 which is a QNR for
        // this curve? Try x = 0 — if it decodes, it must satisfy the
        // curve equation; either way garbage top bits are rejected.
        let mut bytes = [0xffu8; 32];
        bytes[31] = 0x3f; // valid-ish mask but x >= p
        assert_eq!(G1Affine::from_bytes_compressed(&bytes), None);
    }

    #[test]
    fn invalid_point_rejected() {
        // (1, 3) is not on the curve.
        assert!(G1Affine::from_xy(Fq::one(), Fq::from_u64(3)).is_none());
        let mut bytes = [0u8; 64];
        bytes[0] = 1;
        bytes[32] = 3;
        assert!(G1Affine::from_bytes(&bytes).is_none());
    }

    #[test]
    fn msm_matches_naive() {
        let mut rng = rng();
        let bases: Vec<G1Affine> = (0..8).map(|_| G1Affine::random(&mut rng)).collect();
        let scalars: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let expect: G1Projective = bases
            .iter()
            .zip(&scalars)
            .map(|(b, s)| b.to_projective() * *s)
            .sum();
        assert_eq!(msm(&bases, &scalars), expect);
    }

    #[test]
    fn pippenger_matches_naive_across_sizes() {
        let mut rng = rng();
        // Cover the small-input fallback and every window size
        // (c = 4 / 6 / 8 / 11 — the larger arms would otherwise only be
        // exercised by benches CI never runs).
        for n in [1usize, 15, 16, 40, 90, 300, 2_100] {
            let mut bases: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
            let mut scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            if n > 2 {
                // Edge cases: the identity point and the zero scalar.
                bases[0] = G1Affine::identity();
                scalars[1] = Fr::zero();
            }
            assert_eq!(
                msm_pippenger(&bases, &scalars),
                msm(&bases, &scalars),
                "n = {n}"
            );
        }
    }

    #[test]
    fn negation() {
        let mut rng = rng();
        let p = G1Affine::random(&mut rng).to_projective();
        assert_eq!(p + (-p), G1Projective::identity());
        assert_eq!(-(-p), p);
    }
}
