//! The G2 group of BN-254: points on the sextic twist
//! `E'(F_q^2): y^2 = x^3 + 3/ξ` with `ξ = 9 + i`, prime order `r`.
//!
//! Only the generic zk-proof (Groth16) baseline needs G2; the Dragoon
//! protocol itself lives in G1.

use crate::arith::{bit, bit_len};
use crate::field::{Fq, Fr};
use crate::tower::Fq2;
use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Sub};
use rand::Rng;

/// A G2 point in affine coordinates over `Fq2`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct G2Affine {
    /// The x-coordinate.
    pub x: Fq2,
    /// The y-coordinate.
    pub y: Fq2,
    /// Whether this is the point at infinity.
    pub infinity: bool,
}

/// A G2 point in Jacobian coordinates.
#[derive(Clone, Copy)]
pub struct G2Projective {
    x: Fq2,
    y: Fq2,
    z: Fq2,
}

/// The twist coefficient `b' = 3/ξ = 3/(9+i)`.
pub fn twist_b() -> Fq2 {
    // Precomputed: 3 * (9+i)^{-1} mod q (see DESIGN.md constants note).
    let c0 = Fq::from_plain_limbs([
        0x3267e6dc24a138e5,
        0xb5b4c5e559dbefa3,
        0x81be18991be06ac3,
        0x2b149d40ceb8aaae,
    ])
    .expect("twist constant c0 reduced");
    let c1 = Fq::from_plain_limbs([
        0xe4a2bd0685c315d2,
        0xa74fa084e52d1852,
        0xcd2cafadeed8fdf4,
        0x009713b03af0fed4,
    ])
    .expect("twist constant c1 reduced");
    Fq2::new(c0, c1)
}

impl G2Affine {
    /// The group identity.
    pub fn identity() -> Self {
        Self {
            x: Fq2::zero(),
            y: Fq2::zero(),
            infinity: true,
        }
    }

    /// The standard alt_bn128 G2 generator.
    pub fn generator() -> Self {
        let x = Fq2::new(
            Fq::from_plain_limbs([
                0x46debd5cd992f6ed,
                0x674322d4f75edadd,
                0x426a00665e5c4479,
                0x1800deef121f1e76,
            ])
            .expect("generator constant"),
            Fq::from_plain_limbs([
                0x97e485b7aef312c2,
                0xf1aa493335a9e712,
                0x7260bfb731fb5d25,
                0x198e9393920d483a,
            ])
            .expect("generator constant"),
        );
        let y = Fq2::new(
            Fq::from_plain_limbs([
                0x4ce6cc0166fa7daa,
                0xe3d1e7690c43d37b,
                0x4aab71808dcb408f,
                0x12c85ea5db8c6deb,
            ])
            .expect("generator constant"),
            Fq::from_plain_limbs([
                0x55acdadcd122975b,
                0xbc4b313370b38ef3,
                0xec9e99ad690c3395,
                0x090689d0585ff075,
            ])
            .expect("generator constant"),
        );
        Self {
            x,
            y,
            infinity: false,
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks the twist equation `y^2 = x^3 + 3/ξ`.
    ///
    /// Note this verifies curve membership only; the twist has extra
    /// cofactor torsion, so untrusted points would additionally need a
    /// subgroup check ([`G2Affine::is_torsion_free`]).
    pub fn is_on_curve(&self) -> bool {
        self.infinity || self.y.square() == self.x.square() * self.x + twist_b()
    }

    /// Full subgroup membership check: multiplies by the group order.
    pub fn is_torsion_free(&self) -> bool {
        if self.infinity {
            return true;
        }
        // r·P == O  ⟺  (r-1)·P == -P.
        let r_minus_1 = -Fr::one();
        (self.to_projective().mul_scalar(&r_minus_1)).to_affine() == -*self
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> G2Projective {
        if self.infinity {
            G2Projective::identity()
        } else {
            G2Projective {
                x: self.x,
                y: self.y,
                z: Fq2::one(),
            }
        }
    }

    /// Samples a random G2 element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (G2Projective::generator() * Fr::random(rng)).to_affine()
    }
}

impl G2Projective {
    /// The group identity.
    pub fn identity() -> Self {
        Self {
            x: Fq2::one(),
            y: Fq2::one(),
            z: Fq2::zero(),
        }
    }

    /// The standard generator.
    pub fn generator() -> Self {
        G2Affine::generator().to_projective()
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine form.
    pub fn to_affine(&self) -> G2Affine {
        if self.is_identity() {
            return G2Affine::identity();
        }
        let zinv = self.z.inverse().expect("nonzero z");
        let zinv2 = zinv.square();
        G2Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }

    /// Point doubling (same `a = 0` Jacobian formulas as G1, over Fq2).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition.
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * z2z2 * rhs.z;
        let s2 = rhs.y * z1z1 * self.z;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication.
    pub fn mul_scalar(&self, k: &Fr) -> Self {
        let limbs = k.to_plain_limbs();
        let n = bit_len(&limbs);
        let mut acc = Self::identity();
        for i in (0..n).rev() {
            acc = acc.double();
            if bit(&limbs, i) {
                acc = Self::add(&acc, self);
            }
        }
        acc
    }
}

impl PartialEq for G2Projective {
    fn eq(&self, other: &Self) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}
impl Eq for G2Projective {}

impl Neg for G2Affine {
    type Output = Self;
    fn neg(self) -> Self {
        if self.infinity {
            self
        } else {
            Self {
                x: self.x,
                y: -self.y,
                infinity: false,
            }
        }
    }
}

impl Neg for G2Projective {
    type Output = Self;
    fn neg(self) -> Self {
        if self.is_identity() {
            self
        } else {
            Self {
                x: self.x,
                y: -self.y,
                z: self.z,
            }
        }
    }
}

impl Add for G2Projective {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        G2Projective::add(&self, &rhs)
    }
}
impl AddAssign for G2Projective {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl Sub for G2Projective {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}
impl Mul<Fr> for G2Projective {
    type Output = Self;
    fn mul(self, k: Fr) -> Self {
        self.mul_scalar(&k)
    }
}
impl Mul<Fr> for G2Affine {
    type Output = G2Projective;
    fn mul(self, k: Fr) -> G2Projective {
        self.to_projective().mul_scalar(&k)
    }
}

impl fmt::Debug for G2Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "G2(inf)")
        } else {
            write!(f, "G2({:?}, {:?})", self.x, self.y)
        }
    }
}

impl fmt::Debug for G2Projective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.to_affine(), f)
    }
}

/// Multi-scalar multiplication over G2.
pub fn msm_g2(bases: &[G2Affine], scalars: &[Fr]) -> G2Projective {
    assert_eq!(bases.len(), scalars.len(), "msm length mismatch");
    let mut acc = G2Projective::identity();
    for (b, s) in bases.iter().zip(scalars) {
        if s.is_zero() || b.infinity {
            continue;
        }
        acc += b.to_projective().mul_scalar(s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x6222)
    }

    #[test]
    fn generator_on_curve_and_in_subgroup() {
        let g = G2Affine::generator();
        assert!(g.is_on_curve());
        assert!(g.is_torsion_free());
    }

    #[test]
    fn group_laws() {
        let g = G2Projective::generator();
        let id = G2Projective::identity();
        assert_eq!(g + id, g);
        assert_eq!(g.double(), g + g);
        assert_eq!(g - g, id);
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(g * a + g * b, g * (a + b));
    }

    #[test]
    fn order_annihilates() {
        let g = G2Projective::generator();
        let r_minus_1 = -Fr::one();
        assert_eq!(g * r_minus_1 + g, G2Projective::identity());
    }

    #[test]
    fn affine_round_trip() {
        let mut rng = rng();
        let p = G2Affine::random(&mut rng);
        assert!(p.is_on_curve());
        assert_eq!(p.to_projective().to_affine(), p);
    }
}
