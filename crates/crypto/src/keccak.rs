//! Keccak-256 as used by Ethereum (the original Keccak padding `0x01`,
//! *not* NIST SHA3's `0x06`).
//!
//! The paper instantiates its hash function / random oracle with
//! `keccak256`, matching the EVM's native hash; implementing it here keeps
//! the gas model (`dragoon-chain`) and the Fiat–Shamir transcripts
//! byte-compatible with what the deployed contract would compute.

const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// The Keccak-f\[1600\] permutation over a 25-lane state.
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for rc in RC {
        // θ
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // χ
        for y in 0..5 {
            let row = [
                state[5 * y],
                state[5 * y + 1],
                state[5 * y + 2],
                state[5 * y + 3],
                state[5 * y + 4],
            ];
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ ((!row[(x + 1) % 5]) & row[(x + 2) % 5]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// Incremental Keccak-256 hasher (rate 1088 bits / 136 bytes).
#[derive(Clone)]
pub struct Keccak256 {
    state: [u64; 25],
    buf: [u8; 136],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    const RATE: usize = 136;

    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: [0; 25],
            buf: [0; 136],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        while !data.is_empty() {
            let take = (Self::RATE - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == Self::RATE {
                self.absorb_block();
            }
        }
        self
    }

    fn absorb_block(&mut self) {
        for i in 0..Self::RATE / 8 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&self.buf[8 * i..8 * i + 8]);
            self.state[i] ^= u64::from_le_bytes(w);
        }
        keccak_f1600(&mut self.state);
        self.buf_len = 0;
    }

    /// Finalizes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Keccak (pre-NIST) pad10*1 with domain byte 0x01.
        self.buf[self.buf_len..].fill(0);
        self.buf[self.buf_len] = 0x01;
        self.buf[Self::RATE - 1] |= 0x80;
        self.absorb_block();
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&self.state[i].to_le_bytes());
        }
        out
    }
}

/// One-shot Keccak-256.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

/// Convenience: hash the concatenation of several byte slices, as the
/// paper's `H(a ‖ b ‖ …)` notation.
pub fn keccak256_concat(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Keccak256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input() {
        // Well-known Ethereum constant: keccak256("") =
        // c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc() {
        // keccak256("abc") — classic test vector.
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn ethereum_function_selector() {
        // keccak256("transfer(address,uint256)") starts with a9059cbb —
        // the ubiquitous ERC-20 selector.
        let d = keccak256(b"transfer(address,uint256)");
        assert_eq!(hex(&d[..4]), "a9059cbb");
    }

    #[test]
    fn known_ethereum_vectors() {
        // keccak256("testing") — widely used Solidity test vector.
        assert_eq!(
            hex(&keccak256(b"testing")),
            "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02"
        );
        // keccak256("hello") — another ubiquitous vector.
        assert_eq!(
            hex(&keccak256(b"hello")),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = keccak256(&data);
        let mut h = Keccak256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
        assert_eq!(keccak256_concat(&[&data[..100], &data[100..]]), oneshot);
    }

    #[test]
    fn rate_boundary_lengths() {
        // Hash inputs of length 135, 136, 137 — around the sponge rate.
        for len in [135usize, 136, 137, 272] {
            let data = vec![0x5au8; len];
            let a = keccak256(&data);
            let mut h = Keccak256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), a, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(keccak256(b"dragoon"), keccak256(b"dragooN"));
        assert_ne!(keccak256(b""), keccak256(b"\x00"));
    }
}
