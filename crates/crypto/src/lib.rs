//! # dragoon-crypto
//!
//! The cryptographic substrate of the Dragoon reproduction — every
//! primitive the paper instantiates (§V-C, §VI), implemented from scratch:
//!
//! * [`field`] — the BN-254 base/scalar prime fields in Montgomery form.
//! * [`g1`] — the G1 group (`y^2 = x^3 + 3`) over which all of Dragoon's
//!   own primitives live.
//! * [`tower`], [`g2`], [`pairing`] — the Fq12 tower, twist group and
//!   optimal ate pairing, needed only by the generic zk-SNARK baseline.
//! * [`keccak`] — Keccak-256, the paper's hash / random oracle and the
//!   EVM-compatible digest for the gas model.
//! * [`ro`] — Fiat–Shamir transcript utilities over the random oracle.
//! * [`commitment`] — the folklore `H(msg ‖ key)` commitment.
//! * [`elgamal`] — exponential ElGamal with short-range decryption
//!   (brute force and baby-step giant-step).
//! * [`vpke`] — verifiable decryption: the Schnorr/Chaum–Pedersen variant
//!   of §V-C with Fiat–Shamir, the building block PoQoEA reduces to.
//! * [`precomp`] — windowed fixed-base tables and the keyed
//!   [`precomp::ProofCache`] the async proving service shares across its
//!   worker pool.

pub mod arith;
pub mod commitment;
pub mod elgamal;
pub mod field;
pub mod g1;
pub mod g2;
pub mod keccak;
pub mod pairing;
pub mod precomp;
pub mod ro;
pub mod tower;
pub mod vpke;

pub use commitment::{Commitment, CommitmentKey};
pub use elgamal::{Ciphertext, DecryptionKey, EncryptionKey, KeyPair};
pub use field::{Fq, Fr};
pub use g1::{G1Affine, G1Projective};
pub use keccak::{keccak256, keccak256_concat, Keccak256};
pub use precomp::{CacheStats, FixedBaseTable, ProofCache};
pub use vpke::{DecryptionProof, DecryptionStatement};
