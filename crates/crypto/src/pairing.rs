//! The optimal ate pairing `e : G1 × G2 → F_q^12` on BN-254.
//!
//! Implementation strategy: the G2 input is embedded into the full
//! extension field `E(F_q^12)` via the sextic-twist untwisting map
//! `ψ(x', y') = (x'·w^2, y'·w^3)`, and a textbook affine Miller loop runs
//! entirely over `F_q^12` coordinates. This sacrifices the usual
//! projective/line-coefficient micro-optimizations for straight-line
//! auditability; the resulting ~10 ms pairing is exactly the performance
//! class the paper reports for on-chain SNARK verification (Table II), so
//! the baseline comparison is faithful.
//!
//! Pairing identity used by the Miller loop (BN optimal ate):
//! `e(P, Q) = f_{6u+2, Q}(P) · l_{[6u+2]Q, πQ}(P) · l_{[6u+2]Q+πQ, -π²Q}(P)`
//! raised to `(q^12 - 1)/r`.

use crate::field::Fq;
#[cfg(test)]
use crate::field::Fr;
use crate::g1::G1Affine;
use crate::g2::G2Affine;
use crate::tower::{Fq12, Fq2, Fq6};

/// `6u + 2` for the BN parameter `u = 4965661367192848881` — the ate
/// pairing loop count (65 bits).
const ATE_LOOP: [u64; 2] = [0x9d797039be763ba8, 0x1];

/// The "hard part" exponent `(q^4 - q^2 + 1)/r` of the final
/// exponentiation, as little-endian limbs (761 bits).
const HARD_EXP: [u64; 12] = [
    0xe81bb482ccdf42b1,
    0x5abf5cc4f49c36d4,
    0xf1154e7e1da014fd,
    0xdcc7b44c87cdbacf,
    0xaaa441e3954bcf8a,
    0x6b887d56d5095f23,
    0x79581e16f3fd90c6,
    0x3b1b1355d189227d,
    0x4e529a5861876f6b,
    0x6c0eb522d5b12278,
    0x331ec15183177faf,
    0x01baaa710b0759ad,
];

/// A point on `E(F_q^12)` in affine coordinates (identity flagged).
#[derive(Clone, Copy, PartialEq, Eq)]
struct Ext12Point {
    x: Fq12,
    y: Fq12,
    infinity: bool,
}

impl Ext12Point {
    fn identity() -> Self {
        Self {
            x: Fq12::zero(),
            y: Fq12::zero(),
            infinity: true,
        }
    }

    fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }

    /// Coordinate-wise `q`-power Frobenius (the endomorphism `π`).
    fn frobenius(&self) -> Self {
        if self.infinity {
            return *self;
        }
        Self {
            x: self.x.pow(&Fq::MODULUS),
            y: self.y.pow(&Fq::MODULUS),
            infinity: false,
        }
    }
}

/// Embeds a G1 point into `E(F_q^12)` (trivial inclusion).
fn embed_g1(p: &G1Affine) -> Ext12Point {
    if p.infinity {
        return Ext12Point::identity();
    }
    let lift = |c: Fq| {
        Fq12::new(
            Fq6::new(Fq2::from_base(c), Fq2::zero(), Fq2::zero()),
            Fq6::zero(),
        )
    };
    Ext12Point {
        x: lift(p.x),
        y: lift(p.y),
        infinity: false,
    }
}

/// Untwists a G2 point into `E(F_q^12)`: `(x', y') ↦ (x'·w^2, y'·w^3)`.
///
/// With the tower `w^2 = v`, `x'·w^2` has `Fq6` coefficient `(0, x', 0)`
/// and `y'·w^3 = (y'·v)·w` has w-coefficient `(0, y', 0)`.
fn untwist_g2(q: &G2Affine) -> Ext12Point {
    if q.infinity {
        return Ext12Point::identity();
    }
    Ext12Point {
        x: Fq12::new(Fq6::new(Fq2::zero(), q.x, Fq2::zero()), Fq6::zero()),
        y: Fq12::new(Fq6::zero(), Fq6::new(Fq2::zero(), q.y, Fq2::zero())),
        infinity: false,
    }
}

/// Chord-or-tangent line through `r` and `s`, evaluated at `p`, and the
/// resulting sum `r + s`. Returns `(line_value, r + s)`.
fn line_and_add(r: &Ext12Point, s: &Ext12Point, p: &Ext12Point) -> (Fq12, Ext12Point) {
    debug_assert!(!p.infinity);
    if r.infinity {
        return (Fq12::one(), *s);
    }
    if s.infinity {
        return (Fq12::one(), *r);
    }
    if r.x == s.x && r.y == s.y.conj_neg_check() {
        // Vertical line: l(P) = x_P - x_R; sum is the identity.
        return (p.x - r.x, Ext12Point::identity());
    }
    let lambda = if r.x == s.x {
        // Tangent: λ = 3x^2 / 2y.
        let three_x2 = r.x.square() * Fq12::from_small(3);
        let two_y = r.y + r.y;
        three_x2 * two_y.inverse().expect("2y != 0 for non-2-torsion")
    } else {
        (s.y - r.y) * (s.x - r.x).inverse().expect("distinct x")
    };
    let x3 = lambda.square() - r.x - s.x;
    let y3 = lambda * (r.x - x3) - r.y;
    let line = p.y - r.y - lambda * (p.x - r.x);
    (
        line,
        Ext12Point {
            x: x3,
            y: y3,
            infinity: false,
        },
    )
}

/// Helper trait-free extensions for `Fq12` used by the Miller loop.
trait Fq12Ext {
    fn from_small(v: u64) -> Fq12;
    fn conj_neg_check(&self) -> Fq12;
}
impl Fq12Ext for Fq12 {
    fn from_small(v: u64) -> Fq12 {
        Fq12::new(
            Fq6::new(Fq2::from_base(Fq::from_u64(v)), Fq2::zero(), Fq2::zero()),
            Fq6::zero(),
        )
    }
    /// Returns the negation (used to detect `s == -r` by `r.y == -s.y`).
    fn conj_neg_check(&self) -> Fq12 {
        -*self
    }
}

/// The Miller function `f_{ATE_LOOP, Q}(P)` with the two extra
/// Frobenius line evaluations of the BN optimal ate pairing.
fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fq12 {
    if p.infinity || q.infinity {
        return Fq12::one();
    }
    let pe = embed_g1(p);
    let qe = untwist_g2(q);
    let mut f = Fq12::one();
    let mut r = qe;
    let n = crate::arith::bit_len(&ATE_LOOP);
    for i in (0..n - 1).rev() {
        // f <- f^2 * l_{R,R}(P); R <- 2R.
        let (line, r2) = line_and_add(&r, &r, &pe);
        f = f.square() * line;
        r = r2;
        if crate::arith::bit(&ATE_LOOP, i) {
            let (line, ra) = line_and_add(&r, &qe, &pe);
            f *= line;
            r = ra;
        }
    }
    // The two final addition steps with π(Q) and -π²(Q).
    let q1 = qe.frobenius();
    let q2 = q1.frobenius().neg();
    let (line, r1) = line_and_add(&r, &q1, &pe);
    f *= line;
    let (line, _r2) = line_and_add(&r1, &q2, &pe);
    f *= line;
    f
}

/// The final exponentiation `f^((q^12 - 1)/r)`, split as
/// `(q^6 - 1) · (q^2 + 1) · (q^4 - q^2 + 1)/r`.
fn final_exponentiation(f: &Fq12) -> Fq12 {
    // Easy part 1: f^(q^6 - 1) = conj(f) * f^-1.
    let f1 = f.conjugate() * f.inverse().expect("nonzero Miller value");
    // Easy part 2: f1^(q^2 + 1) = f1^(q^2) * f1 — exponentiate by q twice.
    let f1_q = f1.pow(&Fq::MODULUS);
    let f1_q2 = f1_q.pow(&Fq::MODULUS);
    let f2 = f1_q2 * f1;
    // Hard part.
    f2.pow(&HARD_EXP)
}

/// The optimal ate pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Fq12 {
    final_exponentiation(&miller_loop(p, q))
}

/// Product of pairings `Π e(P_i, Q_i)` with a single shared final
/// exponentiation — the operation at the heart of Groth16 verification.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Fq12 {
    let mut f = Fq12::one();
    for (p, q) in pairs {
        f *= miller_loop(p, q);
    }
    final_exponentiation(&f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Projective;
    use crate::g2::G2Projective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9a19)
    }

    #[test]
    fn non_degenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert!(!e.is_one());
        assert!(!e.is_zero());
        // e has order r: e^r == 1 — check via e^(r-1) * e == 1.
        let r_minus_1 = (-Fr::one()).to_plain_limbs();
        assert!((e.pow(&r_minus_1) * e).is_one());
    }

    #[test]
    fn identity_inputs() {
        assert!(pairing(&G1Affine::identity(), &G2Affine::generator()).is_one());
        assert!(pairing(&G1Affine::generator(), &G2Affine::identity()).is_one());
    }

    #[test]
    fn bilinear_in_g1() {
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let g1 = G1Projective::generator();
        let g2 = G2Affine::generator();
        let lhs = pairing(&(g1 * a).to_affine(), &g2);
        let rhs = pairing(&g1.to_affine(), &g2).pow(&a.to_plain_limbs());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_in_g2() {
        let mut rng = rng();
        let b = Fr::random(&mut rng);
        let g1 = G1Affine::generator();
        let g2 = G2Projective::generator();
        let lhs = pairing(&g1, &(g2 * b).to_affine());
        let rhs = pairing(&g1, &g2.to_affine()).pow(&b.to_plain_limbs());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn swap_scalars() {
        // e(aP, bQ) == e(bP, aQ).
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let lhs = pairing(&(g1 * a).to_affine(), &(g2 * b).to_affine());
        let rhs = pairing(&(g1 * b).to_affine(), &(g2 * a).to_affine());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn additive_in_g1() {
        let mut rng = rng();
        let p1 = crate::g1::G1Affine::random(&mut rng);
        let p2 = crate::g1::G1Affine::random(&mut rng);
        let q = G2Affine::generator();
        let sum = (p1.to_projective() + p2.to_projective()).to_affine();
        assert_eq!(pairing(&sum, &q), pairing(&p1, &q) * pairing(&p2, &q));
    }

    #[test]
    fn multi_pairing_matches_product() {
        let mut rng = rng();
        let p1 = crate::g1::G1Affine::random(&mut rng);
        let p2 = crate::g1::G1Affine::random(&mut rng);
        let q1 = G2Affine::random(&mut rng);
        let q2 = G2Affine::random(&mut rng);
        let prod = pairing(&p1, &q1) * pairing(&p2, &q2);
        assert_eq!(multi_pairing(&[(p1, q1), (p2, q2)]), prod);
    }

    #[test]
    fn pairing_check_style() {
        // e(aG1, G2) * e(-G1, aG2) == 1 — the Groth16-style product check.
        let mut rng = rng();
        let a = Fr::random(&mut rng);
        let g1 = G1Projective::generator();
        let g2 = G2Projective::generator();
        let res = multi_pairing(&[
            ((g1 * a).to_affine(), G2Affine::generator()),
            ((-g1).to_affine(), (g2 * a).to_affine()),
        ]);
        assert!(res.is_one());
    }
}
