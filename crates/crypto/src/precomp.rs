//! Fixed-base precomputation and the keyed proof-precomputation cache.
//!
//! Every proof object on the marketplace hot path — ElGamal encryption,
//! VPKE proving, PoQoEA quality proofs — spends its time in scalar
//! multiplications against two kinds of bases: the group generator `g`
//! (commitment randomness, claim points, public keys) and a requester's
//! encryption key `h` (the `h^ρ` term of every ciphertext). Both bases
//! repeat across thousands of proofs, so a windowed fixed-base table
//! ([`FixedBaseTable`]) turns each multiplication from ~256 doublings +
//! ~128 additions into at most 63 additions and no doublings.
//!
//! * [`generator_table`] — a process-wide table for `g`, built once.
//! * [`ProofCache`] — a keyed cache of per-base tables (one per
//!   requester encryption key), shared by the proving service's worker
//!   pool. Hit/miss counters feed `ProvingStats`; the admission cap
//!   bounds memory. Lookups build missing tables *under the lock* so a
//!   miss is counted exactly once per distinct key regardless of thread
//!   interleaving — the cache statistics stay deterministic across
//!   `DRAGOON_THREADS` values.
//!
//! Table-based multiplication returns the same group element as
//! [`G1Projective::mul_scalar`] (asserted by unit tests), and every
//! caller normalizes through `to_affine()`, so switching a code path to
//! the table changes no serialized bytes — goldens are unaffected.

use crate::field::Fr;
use crate::g1::{G1Affine, G1Projective};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Window width in bits. 4 divides the 64-bit limb evenly, keeps the
/// table at 64 windows × 15 entries (~92 KiB per base) and caps a
/// multiplication at 63 additions.
const WINDOW_BITS: usize = 4;
/// Nibbles in a 256-bit scalar.
const WINDOWS: usize = 256 / WINDOW_BITS;
/// Nonzero digits per window.
const ENTRIES: usize = (1 << WINDOW_BITS) - 1;

/// A windowed fixed-base multiplication table: for window `w` and digit
/// `d ∈ [1, 15]`, entry `w·15 + (d-1)` holds `d · 2^{4w} · base`.
pub struct FixedBaseTable {
    entries: Vec<G1Projective>,
}

impl FixedBaseTable {
    /// Precomputes the table for one base point.
    pub fn new(base: &G1Affine) -> Self {
        let mut entries = Vec::with_capacity(WINDOWS * ENTRIES);
        let mut window_base = base.to_projective();
        for _ in 0..WINDOWS {
            let mut acc = G1Projective::identity();
            for _ in 0..ENTRIES {
                acc += window_base;
                entries.push(acc);
            }
            // Advance to the next window's base: ×2^WINDOW_BITS.
            for _ in 0..WINDOW_BITS {
                window_base = window_base.double();
            }
        }
        Self { entries }
    }

    /// Multiplies the table's base by `k`, skipping zero nibbles — small
    /// scalars (claim points `g^m`, fold counters) cost one or two
    /// additions.
    pub fn mul(&self, k: &Fr) -> G1Projective {
        let limbs = k.to_plain_limbs();
        let mut acc = G1Projective::identity();
        for (li, limb) in limbs.iter().enumerate() {
            let mut limb = *limb;
            let mut w = li * (64 / WINDOW_BITS);
            while limb != 0 {
                let d = (limb & 0xf) as usize;
                if d != 0 {
                    acc += self.entries[w * ENTRIES + (d - 1)];
                }
                limb >>= WINDOW_BITS;
                w += 1;
            }
        }
        acc
    }
}

/// The process-wide fixed-base table for the group generator `g`.
pub fn generator_table() -> &'static FixedBaseTable {
    static TABLE: OnceLock<FixedBaseTable> = OnceLock::new();
    TABLE.get_or_init(|| FixedBaseTable::new(&G1Affine::generator()))
}

/// Multiplies the generator by `k` through the process-wide table.
pub fn mul_generator(k: &Fr) -> G1Projective {
    generator_table().mul(k)
}

/// A snapshot of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a table.
    pub hits: u64,
    /// Lookups that built (or, past the cap, bypassed) a table — one
    /// per distinct admitted key, thread-count independent under the cap.
    pub misses: u64,
    /// Tables currently resident.
    pub entries: usize,
}

/// A keyed cache of fixed-base tables, one per base point (in the
/// marketplace: one per requester encryption key). Shared across the
/// proving service's worker threads; cold (first-use) table builds are
/// the "setup" cost the cold-vs-prewarmed bench measures.
pub struct ProofCache {
    tables: Mutex<HashMap<[u8; 64], Arc<FixedBaseTable>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    cap: usize,
}

impl ProofCache {
    /// Default admission cap: bounds resident tables to ~47 MiB while
    /// comfortably covering every test and golden scenario, so the
    /// hit/miss counters those assert on are exact.
    pub const DEFAULT_CAP: usize = 512;

    /// A cache with the default admission cap.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }

    /// A cache admitting at most `cap` tables; further distinct keys are
    /// computed without caching (each such lookup counts as a miss, and
    /// which keys win admission can then depend on thread timing — size
    /// the cap above the key population when stats must be exact).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            tables: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cap,
        }
    }

    /// The table for `base`, building and admitting it on first use.
    /// Builds happen under the cache lock: concurrent first lookups of
    /// one key serialize, exactly one records the miss.
    pub fn table_for(&self, base: &G1Affine) -> Arc<FixedBaseTable> {
        let key = base.to_bytes();
        let mut tables = self.tables.lock().expect("proof cache poisoned");
        if let Some(table) = tables.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(table);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(FixedBaseTable::new(base));
        if tables.len() < self.cap {
            tables.insert(key, Arc::clone(&table));
        }
        table
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.tables.lock().expect("proof cache poisoned").len(),
        }
    }
}

impl Default for ProofCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_matches_naive_multiplication() {
        let mut rng = StdRng::seed_from_u64(0x7ab1e);
        let base = (G1Projective::generator() * Fr::random(&mut rng)).to_affine();
        let table = FixedBaseTable::new(&base);
        for _ in 0..8 {
            let k = Fr::random(&mut rng);
            assert_eq!(table.mul(&k), base.to_projective().mul_scalar(&k));
        }
    }

    #[test]
    fn table_handles_edge_scalars() {
        let table = generator_table();
        let g = G1Projective::generator();
        assert!(table.mul(&Fr::zero()).is_identity());
        assert_eq!(table.mul(&Fr::one()), g);
        for m in [2u64, 3, 15, 16, 17, 255, 1 << 20] {
            let k = Fr::from_u64(m);
            assert_eq!(table.mul(&k), g.mul_scalar(&k), "m = {m}");
        }
        assert_eq!(table.mul(&-Fr::one()), -g);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut rng = StdRng::seed_from_u64(0xcac4e);
        let cache = ProofCache::new();
        let b1 = (G1Projective::generator() * Fr::random(&mut rng)).to_affine();
        let b2 = (G1Projective::generator() * Fr::random(&mut rng)).to_affine();
        cache.table_for(&b1);
        cache.table_for(&b1);
        cache.table_for(&b2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn cache_cap_bypasses_but_still_computes() {
        let mut rng = StdRng::seed_from_u64(0xca9);
        let cache = ProofCache::with_capacity(1);
        let b1 = (G1Projective::generator() * Fr::random(&mut rng)).to_affine();
        let b2 = (G1Projective::generator() * Fr::random(&mut rng)).to_affine();
        let k = Fr::random(&mut rng);
        cache.table_for(&b1);
        let t2 = cache.table_for(&b2);
        assert_eq!(t2.mul(&k), b2.to_projective().mul_scalar(&k));
        assert_eq!(cache.stats().entries, 1, "cap admits only the first");
    }
}
