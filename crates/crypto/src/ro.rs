//! Random-oracle utilities: a byte-oriented Fiat–Shamir transcript over
//! Keccak-256, plus hash-to-scalar.
//!
//! The paper models `H` as a global programmable random oracle (§III) and
//! uses it both for commitments and for the Fiat–Shamir challenges of the
//! VPKE proofs (`C = H(A ‖ B ‖ g ‖ h ‖ c1 ‖ c2 ‖ g^m)`, §V-C). The
//! [`Transcript`] type makes such concatenations explicit and
//! domain-separated.

use crate::field::Fr;
use crate::g1::G1Affine;
use crate::keccak::Keccak256;

/// A running Fiat–Shamir transcript. Each absorbed item is
/// length-prefixed so concatenations are injective, and the whole
/// transcript is domain-separated by a label.
#[derive(Clone)]
pub struct Transcript {
    hasher: Keccak256,
}

impl Transcript {
    /// Creates a transcript under a domain-separation label.
    pub fn new(label: &[u8]) -> Self {
        let mut hasher = Keccak256::new();
        hasher.update(&(label.len() as u64).to_le_bytes());
        hasher.update(label);
        Self { hasher }
    }

    /// Absorbs raw bytes (length-prefixed).
    pub fn absorb_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.hasher.update(&(bytes.len() as u64).to_le_bytes());
        self.hasher.update(bytes);
        self
    }

    /// Absorbs a G1 point (uncompressed encoding).
    pub fn absorb_point(&mut self, p: &G1Affine) -> &mut Self {
        self.absorb_bytes(&p.to_bytes())
    }

    /// Absorbs a scalar.
    pub fn absorb_scalar(&mut self, s: &Fr) -> &mut Self {
        self.absorb_bytes(&s.to_bytes_le())
    }

    /// Absorbs a u64.
    pub fn absorb_u64(&mut self, v: u64) -> &mut Self {
        self.absorb_bytes(&v.to_le_bytes())
    }

    /// Squeezes the challenge scalar, consuming the transcript.
    pub fn challenge_scalar(self) -> Fr {
        let digest = self.hasher.finalize();
        Fr::from_bytes_le_reduced(&digest)
    }

    /// Squeezes a 32-byte digest, consuming the transcript.
    pub fn challenge_bytes(self) -> [u8; 32] {
        self.hasher.finalize()
    }
}

/// Hashes arbitrary bytes to a scalar (one-shot).
pub fn hash_to_scalar(label: &[u8], data: &[u8]) -> Fr {
    let mut t = Transcript::new(label);
    t.absorb_bytes(data);
    t.challenge_scalar()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut t1 = Transcript::new(b"test");
        t1.absorb_bytes(b"hello");
        let mut t2 = Transcript::new(b"test");
        t2.absorb_bytes(b"hello");
        assert_eq!(t1.challenge_scalar(), t2.challenge_scalar());
    }

    #[test]
    fn label_separates_domains() {
        let mut t1 = Transcript::new(b"domain-a");
        t1.absorb_bytes(b"x");
        let mut t2 = Transcript::new(b"domain-b");
        t2.absorb_bytes(b"x");
        assert_ne!(t1.challenge_scalar(), t2.challenge_scalar());
    }

    #[test]
    fn length_prefix_is_injective() {
        // ("ab", "c") must differ from ("a", "bc").
        let mut t1 = Transcript::new(b"t");
        t1.absorb_bytes(b"ab").absorb_bytes(b"c");
        let mut t2 = Transcript::new(b"t");
        t2.absorb_bytes(b"a").absorb_bytes(b"bc");
        assert_ne!(t1.challenge_bytes(), t2.challenge_bytes());
    }

    #[test]
    fn absorb_order_matters() {
        let mut t1 = Transcript::new(b"t");
        t1.absorb_u64(1).absorb_u64(2);
        let mut t2 = Transcript::new(b"t");
        t2.absorb_u64(2).absorb_u64(1);
        assert_ne!(t1.challenge_scalar(), t2.challenge_scalar());
    }

    #[test]
    fn points_and_scalars_absorb() {
        let mut t = Transcript::new(b"t");
        t.absorb_point(&G1Affine::generator())
            .absorb_scalar(&Fr::from_u64(42));
        // Must be non-trivially different from the empty transcript.
        assert_ne!(
            t.challenge_scalar(),
            Transcript::new(b"t").challenge_scalar()
        );
    }

    #[test]
    fn hash_to_scalar_deterministic() {
        assert_eq!(hash_to_scalar(b"l", b"data"), hash_to_scalar(b"l", b"data"));
        assert_ne!(hash_to_scalar(b"l", b"data"), hash_to_scalar(b"l", b"datb"));
    }
}
