//! The BN-254 extension-field tower used by the pairing:
//!
//! * `Fq2  = Fq[i]  / (i^2 + 1)`
//! * `Fq6  = Fq2[v] / (v^3 - ξ)` with `ξ = 9 + i`
//! * `Fq12 = Fq6[w] / (w^2 - v)`
//!
//! The tower only serves the *generic zk-proof baseline* (the Groth16
//! verifier needs a pairing); Dragoon's own primitives live entirely in
//! G1. Operations favour clarity over micro-optimization — the paper's
//! comparison only needs the verifier to land in the milliseconds range.

use crate::field::Fq;
use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use rand::Rng;

/// Quadratic extension `Fq2 = Fq[i]/(i^2+1)`; elements are `c0 + c1·i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fq2 {
    /// Constant coefficient.
    pub c0: Fq,
    /// Coefficient of `i`.
    pub c1: Fq,
}

impl Fq2 {
    /// Constructs `c0 + c1·i`.
    pub const fn new(c0: Fq, c1: Fq) -> Self {
        Self { c0, c1 }
    }

    /// Additive identity.
    pub fn zero() -> Self {
        Self::new(Fq::zero(), Fq::zero())
    }

    /// Multiplicative identity.
    pub fn one() -> Self {
        Self::new(Fq::one(), Fq::zero())
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Embeds a base-field element.
    pub fn from_base(c: Fq) -> Self {
        Self::new(c, Fq::zero())
    }

    /// The non-residue `ξ = 9 + i` that defines `Fq6`.
    pub fn xi() -> Self {
        Self::new(Fq::from_u64(9), Fq::one())
    }

    /// Squaring.
    pub fn square(&self) -> Self {
        // (a + bi)^2 = (a+b)(a-b) + 2ab i.
        let ab = self.c0 * self.c1;
        Self::new((self.c0 + self.c1) * (self.c0 - self.c1), ab + ab)
    }

    /// Doubling.
    pub fn double(&self) -> Self {
        *self + *self
    }

    /// Multiplies by a base-field scalar.
    pub fn scale(&self, k: Fq) -> Self {
        Self::new(self.c0 * k, self.c1 * k)
    }

    /// Conjugate `a - bi`.
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// Multiplicative inverse.
    pub fn inverse(&self) -> Option<Self> {
        // (a + bi)^-1 = (a - bi)/(a^2 + b^2).
        let norm = self.c0.square() + self.c1.square();
        let ninv = norm.inverse()?;
        Some(Self::new(self.c0 * ninv, -(self.c1 * ninv)))
    }

    /// Samples a random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq::random(rng), Fq::random(rng))
    }
}

impl Add for Fq2 {
    type Output = Self;
    fn add(self, r: Self) -> Self {
        Self::new(self.c0 + r.c0, self.c1 + r.c1)
    }
}
impl Sub for Fq2 {
    type Output = Self;
    fn sub(self, r: Self) -> Self {
        Self::new(self.c0 - r.c0, self.c1 - r.c1)
    }
}
impl Neg for Fq2 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}
impl Mul for Fq2 {
    type Output = Self;
    fn mul(self, r: Self) -> Self {
        // Karatsuba: (a+bi)(c+di) = ac - bd + ((a+b)(c+d) - ac - bd) i.
        let ac = self.c0 * r.c0;
        let bd = self.c1 * r.c1;
        Self::new(ac - bd, (self.c0 + self.c1) * (r.c0 + r.c1) - ac - bd)
    }
}
impl AddAssign for Fq2 {
    fn add_assign(&mut self, r: Self) {
        *self = *self + r;
    }
}
impl SubAssign for Fq2 {
    fn sub_assign(&mut self, r: Self) {
        *self = *self - r;
    }
}
impl MulAssign for Fq2 {
    fn mul_assign(&mut self, r: Self) {
        *self = *self * r;
    }
}

impl fmt::Debug for Fq2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?} + {:?}·i)", self.c0, self.c1)
    }
}

/// Multiplies an `Fq2` element by the non-residue `ξ = 9 + i`.
fn mul_by_xi(a: Fq2) -> Fq2 {
    // (c0 + c1 i)(9 + i) = 9c0 - c1 + (c0 + 9c1) i.
    let nine = Fq::from_u64(9);
    Fq2::new(a.c0 * nine - a.c1, a.c0 + a.c1 * nine)
}

/// Cubic extension `Fq6 = Fq2[v]/(v^3 - ξ)`; elements are
/// `c0 + c1·v + c2·v^2`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fq6 {
    /// Constant coefficient.
    pub c0: Fq2,
    /// Coefficient of `v`.
    pub c1: Fq2,
    /// Coefficient of `v^2`.
    pub c2: Fq2,
}

impl Fq6 {
    /// Constructs from coefficients.
    pub const fn new(c0: Fq2, c1: Fq2, c2: Fq2) -> Self {
        Self { c0, c1, c2 }
    }

    /// Additive identity.
    pub fn zero() -> Self {
        Self::new(Fq2::zero(), Fq2::zero(), Fq2::zero())
    }

    /// Multiplicative identity.
    pub fn one() -> Self {
        Self::new(Fq2::one(), Fq2::zero(), Fq2::zero())
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    /// Squaring (via general multiplication; clarity over speed).
    pub fn square(&self) -> Self {
        *self * *self
    }

    /// Multiplies by `v` (the degree shift with ξ-reduction).
    pub fn mul_by_v(&self) -> Self {
        Self::new(mul_by_xi(self.c2), self.c0, self.c1)
    }

    /// Multiplicative inverse.
    pub fn inverse(&self) -> Option<Self> {
        // Standard formula (e.g. Lidl–Niederreiter / IETF pairing drafts):
        // for A = a + b v + c v^2 over v^3 = ξ:
        //   t0 = a^2 - ξ b c
        //   t1 = ξ c^2 - a b
        //   t2 = b^2 - a c
        //   Δ  = a t0 + ξ (c t1 + b t2)
        //   A^-1 = (t0 + t1 v + t2 v^2) / Δ
        let (a, b, c) = (self.c0, self.c1, self.c2);
        let t0 = a.square() - mul_by_xi(b * c);
        let t1 = mul_by_xi(c.square()) - a * b;
        let t2 = b.square() - a * c;
        let delta = a * t0 + mul_by_xi(c * t1 + b * t2);
        let dinv = delta.inverse()?;
        Some(Self::new(t0 * dinv, t1 * dinv, t2 * dinv))
    }

    /// Samples a random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq2::random(rng), Fq2::random(rng), Fq2::random(rng))
    }
}

impl Add for Fq6 {
    type Output = Self;
    fn add(self, r: Self) -> Self {
        Self::new(self.c0 + r.c0, self.c1 + r.c1, self.c2 + r.c2)
    }
}
impl Sub for Fq6 {
    type Output = Self;
    fn sub(self, r: Self) -> Self {
        Self::new(self.c0 - r.c0, self.c1 - r.c1, self.c2 - r.c2)
    }
}
impl Neg for Fq6 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1, -self.c2)
    }
}
impl Mul for Fq6 {
    type Output = Self;
    fn mul(self, r: Self) -> Self {
        // Schoolbook with v^3 = ξ reduction.
        let a = self;
        let b = r;
        let v0 = a.c0 * b.c0;
        let v1 = a.c1 * b.c1;
        let v2 = a.c2 * b.c2;
        let c0 = v0 + mul_by_xi((a.c1 + a.c2) * (b.c1 + b.c2) - v1 - v2);
        let c1 = (a.c0 + a.c1) * (b.c0 + b.c1) - v0 - v1 + mul_by_xi(v2);
        let c2 = (a.c0 + a.c2) * (b.c0 + b.c2) - v0 - v2 + v1;
        Self::new(c0, c1, c2)
    }
}
impl AddAssign for Fq6 {
    fn add_assign(&mut self, r: Self) {
        *self = *self + r;
    }
}
impl SubAssign for Fq6 {
    fn sub_assign(&mut self, r: Self) {
        *self = *self - r;
    }
}
impl MulAssign for Fq6 {
    fn mul_assign(&mut self, r: Self) {
        *self = *self * r;
    }
}

impl fmt::Debug for Fq6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?}, {:?}]", self.c0, self.c1, self.c2)
    }
}

/// The full extension `Fq12 = Fq6[w]/(w^2 - v)`; elements are `c0 + c1·w`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fq12 {
    /// Constant coefficient.
    pub c0: Fq6,
    /// Coefficient of `w`.
    pub c1: Fq6,
}

impl Fq12 {
    /// Constructs from coefficients.
    pub const fn new(c0: Fq6, c1: Fq6) -> Self {
        Self { c0, c1 }
    }

    /// Additive identity.
    pub fn zero() -> Self {
        Self::new(Fq6::zero(), Fq6::zero())
    }

    /// Multiplicative identity.
    pub fn one() -> Self {
        Self::new(Fq6::one(), Fq6::zero())
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Whether this is one.
    pub fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// Squaring.
    pub fn square(&self) -> Self {
        // (a + bw)^2 = a^2 + b^2 v + 2ab w.
        let ab = self.c0 * self.c1;
        Self::new(self.c0.square() + self.c1.square().mul_by_v(), ab + ab)
    }

    /// The conjugate `a - bw`, which equals `f^(q^6)` — the "unitary
    /// inverse" for elements in the cyclotomic subgroup.
    pub fn conjugate(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// Multiplicative inverse.
    pub fn inverse(&self) -> Option<Self> {
        // (a + bw)^-1 = (a - bw)/(a^2 - b^2 v).
        let norm = self.c0.square() - self.c1.square().mul_by_v();
        let ninv = norm.inverse()?;
        Some(Self::new(self.c0 * ninv, -(self.c1 * ninv)))
    }

    /// Exponentiation by little-endian limbs (square-and-multiply).
    pub fn pow(&self, exp: &[u64]) -> Self {
        let n = crate::arith::bit_len(exp);
        if n == 0 {
            return Self::one();
        }
        let mut acc = *self;
        for i in (0..n - 1).rev() {
            acc = acc.square();
            if crate::arith::bit(exp, i) {
                acc *= *self;
            }
        }
        acc
    }

    /// Samples a random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq6::random(rng), Fq6::random(rng))
    }
}

impl Add for Fq12 {
    type Output = Self;
    fn add(self, r: Self) -> Self {
        Self::new(self.c0 + r.c0, self.c1 + r.c1)
    }
}
impl Sub for Fq12 {
    type Output = Self;
    fn sub(self, r: Self) -> Self {
        Self::new(self.c0 - r.c0, self.c1 - r.c1)
    }
}
impl Neg for Fq12 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}
impl Mul for Fq12 {
    type Output = Self;
    fn mul(self, r: Self) -> Self {
        // Karatsuba over w^2 = v.
        let v0 = self.c0 * r.c0;
        let v1 = self.c1 * r.c1;
        Self::new(
            v0 + v1.mul_by_v(),
            (self.c0 + self.c1) * (r.c0 + r.c1) - v0 - v1,
        )
    }
}
impl AddAssign for Fq12 {
    fn add_assign(&mut self, r: Self) {
        *self = *self + r;
    }
}
impl SubAssign for Fq12 {
    fn sub_assign(&mut self, r: Self) {
        *self = *self - r;
    }
}
impl MulAssign for Fq12 {
    fn mul_assign(&mut self, r: Self) {
        *self = *self * r;
    }
}

impl fmt::Debug for Fq12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fq12({:?} + {:?}·w)", self.c0, self.c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x7041)
    }

    #[test]
    fn fq2_i_squared_is_minus_one() {
        let i = Fq2::new(Fq::zero(), Fq::one());
        assert_eq!(i.square(), -Fq2::one());
        assert_eq!(i * i * i * i, Fq2::one());
    }

    #[test]
    fn fq2_field_axioms() {
        let mut rng = rng();
        for _ in 0..20 {
            let a = Fq2::random(&mut rng);
            let b = Fq2::random(&mut rng);
            let c = Fq2::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq2::one());
            }
        }
        assert!(Fq2::zero().inverse().is_none());
    }

    #[test]
    fn fq6_v_cubed_is_xi() {
        let v = Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero());
        let xi_elem = Fq6::new(Fq2::xi(), Fq2::zero(), Fq2::zero());
        assert_eq!(v * v * v, xi_elem);
        // mul_by_v is multiplication by v.
        let mut rng = rng();
        let a = Fq6::random(&mut rng);
        assert_eq!(a.mul_by_v(), a * v);
    }

    #[test]
    fn fq6_field_axioms() {
        let mut rng = rng();
        for _ in 0..10 {
            let a = Fq6::random(&mut rng);
            let b = Fq6::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq6::one());
            }
            assert_eq!((a + b) - b, a);
        }
    }

    #[test]
    fn fq12_w_squared_is_v() {
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        let v12 = Fq12::new(Fq6::new(Fq2::zero(), Fq2::one(), Fq2::zero()), Fq6::zero());
        assert_eq!(w * w, v12);
        // w^6 = v^3 = xi.
        let xi12 = Fq12::new(Fq6::new(Fq2::xi(), Fq2::zero(), Fq2::zero()), Fq6::zero());
        assert_eq!(w.pow(&[6]), xi12);
    }

    #[test]
    fn fq12_field_axioms() {
        let mut rng = rng();
        for _ in 0..5 {
            let a = Fq12::random(&mut rng);
            let b = Fq12::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq12::one());
            }
        }
    }

    #[test]
    fn fq12_pow_composes() {
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        assert_eq!(a.pow(&[5]) * a.pow(&[7]), a.pow(&[12]));
        assert_eq!(a.pow(&[0]), Fq12::one());
        assert_eq!(a.pow(&[3]), a * a * a);
    }

    #[test]
    fn conjugate_is_q6_frobenius() {
        // For any a, conj(a) * a has zero w-coefficient component in the
        // norm sense: conj(a)*a = norm ∈ Fq6 embedded… sanity: conj is an
        // involution and multiplicative.
        let mut rng = rng();
        let a = Fq12::random(&mut rng);
        let b = Fq12::random(&mut rng);
        assert_eq!(a.conjugate().conjugate(), a);
        assert_eq!((a * b).conjugate(), a.conjugate() * b.conjugate());
    }
}
