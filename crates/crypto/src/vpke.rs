//! VPKE — verifiable decryption for exponential ElGamal (§V-C).
//!
//! The prover (the requester, who holds `k`) shows that a ciphertext
//! `(c1, c2)` decrypts to a claimed plaintext, via a Schnorr-style proof
//! for the Diffie–Hellman tuple `(g, h, c1, c2/g^m)` made non-interactive
//! with Fiat–Shamir in the random-oracle model:
//!
//! * `ProvePKE_k((c1, c2))`: run `Dec_k` to get `m` (or the raw group
//!   element `g^m` when out of range); sample `x ← Fr`; compute
//!   `A = c1^x`, `B = g^x`, `C = H(A ‖ B ‖ g ‖ h ‖ c1 ‖ c2 ‖ g^m)` and
//!   `Z = x + kC`; the proof is `π = (A, B, Z)`.
//! * `VerifyPKE_h(M, (c1, c2), π)`: recompute `C'` and accept iff
//!   `g^{M·C'} · c1^Z = A · c2^{C'}`  and  `g^Z = B · h^{C'}`.
//!
//! Both in-range (integer) and out-of-range (group element) claims hash
//! and verify against the same point `M = g^m`, exactly matching the two
//! branches of the paper's `VerifyPKE`.

use crate::elgamal::{
    Ciphertext, Decrypted, DecryptionKey, EncryptionKey, KeyPair, PlaintextRange,
};
use crate::field::Fr;
use crate::g1::{G1Affine, G1Projective};
use crate::precomp::mul_generator;
use crate::ro::Transcript;
use rand::Rng;

/// Domain-separation label for the VPKE Fiat–Shamir transcript.
const VPKE_DOMAIN: &[u8] = b"dragoon/vpke/v1";

/// The claimed decryption result carried alongside a proof.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum PlaintextClaim {
    /// The plaintext `m`, claimed to lie in the question's range.
    InRange(u64),
    /// The raw group element `g^m` for an out-of-range plaintext.
    OutOfRange(G1Affine),
}

impl PlaintextClaim {
    /// The group element `M = g^m` this claim denotes.
    pub fn to_point(&self) -> G1Affine {
        match self {
            PlaintextClaim::InRange(m) => mul_generator(&Fr::from_u64(*m)).to_affine(),
            PlaintextClaim::OutOfRange(p) => *p,
        }
    }

    /// Builds the claim from a decryption outcome.
    pub fn from_decrypted(d: &Decrypted) -> Self {
        match d {
            Decrypted::InRange(m) => PlaintextClaim::InRange(*m),
            Decrypted::OutOfRange(p) => PlaintextClaim::OutOfRange(*p),
        }
    }
}

/// A verifiable-decryption statement: "ciphertext `ct` under public key
/// `ek` decrypts to `claim`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecryptionStatement {
    /// The public encryption key `h`.
    pub ek: EncryptionKey,
    /// The ciphertext.
    pub ct: Ciphertext,
    /// The claimed plaintext.
    pub claim: PlaintextClaim,
}

/// The proof `π = (A, B, Z)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct DecryptionProof {
    /// `A = c1^x`.
    pub a: G1Affine,
    /// `B = g^x`.
    pub b: G1Affine,
    /// `Z = x + kC`.
    pub z: Fr,
}

/// Computes the Fiat–Shamir challenge
/// `C = H(A ‖ B ‖ g ‖ h ‖ c1 ‖ c2 ‖ M)`.
fn challenge(
    a: &G1Affine,
    b: &G1Affine,
    ek: &EncryptionKey,
    ct: &Ciphertext,
    m_point: &G1Affine,
) -> Fr {
    let mut t = Transcript::new(VPKE_DOMAIN);
    t.absorb_point(a)
        .absorb_point(b)
        .absorb_point(&G1Affine::generator())
        .absorb_point(&ek.0)
        .absorb_point(&ct.c1)
        .absorb_point(&ct.c2)
        .absorb_point(m_point);
    t.challenge_scalar()
}

/// `ProvePKE_k(c)`: decrypts and proves, returning the claim and proof.
pub fn prove<R: Rng + ?Sized>(
    dk: &DecryptionKey,
    ct: &Ciphertext,
    range: &PlaintextRange,
    rng: &mut R,
) -> (PlaintextClaim, DecryptionProof) {
    prove_with_key(&KeyPair::from_secret(dk.0), ct, range, rng)
}

/// [`prove`] with the full key pair, so the public key `h` is not
/// re-derived from the secret on every proof — the hot-path entry point
/// the proving service's evaluate jobs use (a PoQoEA proof calls this
/// once per gold standard).
pub fn prove_with_key<R: Rng + ?Sized>(
    kp: &KeyPair,
    ct: &Ciphertext,
    range: &PlaintextRange,
    rng: &mut R,
) -> (PlaintextClaim, DecryptionProof) {
    let decrypted = kp.dk.decrypt(ct, range);
    let claim = PlaintextClaim::from_decrypted(&decrypted);
    let proof = prove_claim_with_key(kp, ct, &claim, rng);
    (claim, proof)
}

/// Produces a proof for an already-computed claim (must be the true
/// decryption, or the proof will not verify).
pub fn prove_claim<R: Rng + ?Sized>(
    dk: &DecryptionKey,
    ct: &Ciphertext,
    claim: &PlaintextClaim,
    rng: &mut R,
) -> DecryptionProof {
    prove_claim_with_key(&KeyPair::from_secret(dk.0), ct, claim, rng)
}

/// [`prove_claim`] with the full key pair (no per-call `g^k`).
pub fn prove_claim_with_key<R: Rng + ?Sized>(
    kp: &KeyPair,
    ct: &Ciphertext,
    claim: &PlaintextClaim,
    rng: &mut R,
) -> DecryptionProof {
    let x = Fr::random(rng);
    let a = (ct.c1 * x).to_affine();
    let b = mul_generator(&x).to_affine();
    let c = challenge(&a, &b, &kp.ek, ct, &claim.to_point());
    let z = x + kp.dk.0 * c;
    DecryptionProof { a, b, z }
}

/// `VerifyPKE_h(M, c, π)`: checks both verification equations.
pub fn verify(stmt: &DecryptionStatement, proof: &DecryptionProof) -> bool {
    let m_point = stmt.claim.to_point();
    let c = challenge(&proof.a, &proof.b, &stmt.ek, &stmt.ct, &m_point);
    let g = G1Projective::generator();
    // Equation 1: M^C · c1^Z == A · c2^C  (additively:
    // C·M + Z·c1 == A + C·c2).
    let lhs1 = m_point * c + stmt.ct.c1 * proof.z;
    let rhs1 = proof.a.to_projective() + stmt.ct.c2 * c;
    if lhs1 != rhs1 {
        return false;
    }
    // Equation 2: g^Z == B · h^C.
    let lhs2 = g * proof.z;
    let rhs2 = proof.b.to_projective() + stmt.ek.0 * c;
    lhs2 == rhs2
}

/// The zero-knowledge simulator (programmable random-oracle style):
/// given a challenge `c`, produces `(A, B, Z)` satisfying both
/// verification equations for the statement *without* the secret key.
///
/// In the ROM the simulator would program `H` to return `c` on the
/// corresponding query; here it is exposed so tests can check that
/// simulated transcripts are equation-valid and distributed like real
/// ones — the "special zero-knowledge" property PoQoEA relies on.
pub fn simulate_with_challenge<R: Rng + ?Sized>(
    stmt: &DecryptionStatement,
    c: Fr,
    rng: &mut R,
) -> DecryptionProof {
    let z = Fr::random(rng);
    let g = G1Projective::generator();
    let m_point = stmt.claim.to_point();
    // Solve equation 1 for A: A = C·M + Z·c1 - C·c2.
    let a = (m_point * c + stmt.ct.c1 * z - stmt.ct.c2 * c).to_affine();
    // Solve equation 2 for B: B = Z·g - C·h.
    let b = (g * z - stmt.ek.0 * c).to_affine();
    DecryptionProof { a, b, z }
}

/// Batch verification of many VPKE proofs with random linear
/// combination: sample weights `ρ_i` and check the two aggregated
/// equations
///
/// `Σ ρ_i·(C_i·M_i + Z_i·c1_i − A_i − C_i·c2_i) = O` and
/// `Σ ρ_i·(Z_i·g − B_i − C_i·h_i) = O`.
///
/// If any single proof is invalid, the aggregate check fails except with
/// probability `1/r` over the weights. Used by verifiers that process
/// whole batches of rejections (e.g. an off-chain auditor replaying a
/// task's evaluation transcript); benchmarked in the ablation suite.
pub fn batch_verify<R: Rng + ?Sized>(
    items: &[(DecryptionStatement, DecryptionProof)],
    rng: &mut R,
) -> bool {
    if items.is_empty() {
        return true;
    }
    let g = G1Projective::generator();
    let mut agg1 = G1Projective::identity();
    let mut agg2 = G1Projective::identity();
    for (stmt, proof) in items {
        let rho = Fr::random(rng);
        let m_point = stmt.claim.to_point();
        let c = challenge(&proof.a, &proof.b, &stmt.ek, &stmt.ct, &m_point);
        // ρ·(C·M + Z·c1 − A − C·c2).
        agg1 += m_point * (c * rho) + stmt.ct.c1 * (proof.z * rho)
            - proof.a.to_projective() * rho
            - stmt.ct.c2 * (c * rho);
        // ρ·(Z·g − B − C·h).
        agg2 += g * (proof.z * rho) - proof.b.to_projective() * rho - stmt.ek.0 * (c * rho);
    }
    agg1.is_identity() && agg2.is_identity()
}

/// Domain-separation label for deterministic batch-verification weights.
const VPKE_BATCH_DOMAIN: &[u8] = b"dragoon/vpke/batch/v1";

/// Derives the random-linear-combination weights for a batch by
/// Fiat–Shamir over the whole batch transcript: `ρ_i = H(batch ‖ i)`.
///
/// Weights must be unpredictable to whoever supplied the proofs; hashing
/// every statement and proof into the transcript achieves that without a
/// caller-provided RNG, so an on-chain (deterministic) verifier can use
/// the batched path.
fn batch_weights(
    items: &[(DecryptionStatement, DecryptionProof)],
    claim_points: &[G1Affine],
) -> Vec<Fr> {
    let mut t = Transcript::new(VPKE_BATCH_DOMAIN);
    for ((stmt, proof), m_point) in items.iter().zip(claim_points) {
        // Tag the claim variant: `InRange(m)` and `OutOfRange(g^m)`
        // denote the same point but are different claims.
        let tag = match stmt.claim {
            PlaintextClaim::InRange(_) => 0,
            PlaintextClaim::OutOfRange(_) => 1,
        };
        t.absorb_u64(tag)
            .absorb_point(&stmt.ek.0)
            .absorb_point(&stmt.ct.c1)
            .absorb_point(&stmt.ct.c2)
            .absorb_point(m_point)
            .absorb_point(&proof.a)
            .absorb_point(&proof.b)
            .absorb_scalar(&proof.z);
    }
    (0..items.len())
        .map(|i| {
            let mut ti = t.clone();
            ti.absorb_u64(i as u64);
            ti.challenge_scalar()
        })
        .collect()
}

/// Accumulator for the folded batch equation: (base, scalar) pairs for
/// one MSM, with every item's `g` coefficient summed into a single term.
struct FoldedMsm {
    bases: Vec<G1Affine>,
    scalars: Vec<Fr>,
    g_coeff: Fr,
}

impl FoldedMsm {
    fn with_capacity(items: usize) -> Self {
        Self {
            bases: Vec::with_capacity(6 * items + 1),
            scalars: Vec::with_capacity(6 * items + 1),
            g_coeff: Fr::zero(),
        }
    }

    /// One item's contribution. With fold weight `μ` for the second
    /// verification equation, item `i` contributes
    ///
    /// `ρ_i·(C_i·M_i + Z_i·c1_i − A_i − C_i·c2_i) + μρ_i·(Z_i·g − B_i − C_i·h_i)`.
    fn push(
        &mut self,
        stmt: &DecryptionStatement,
        proof: &DecryptionProof,
        m_point: G1Affine,
        c: Fr,
        rho: Fr,
        mu: Fr,
    ) {
        let rc = rho * c;
        self.bases.push(m_point);
        self.scalars.push(rc);
        self.bases.push(stmt.ct.c1);
        self.scalars.push(rho * proof.z);
        self.bases.push(proof.a);
        self.scalars.push(-rho);
        self.bases.push(stmt.ct.c2);
        self.scalars.push(-rc);
        self.bases.push(proof.b);
        self.scalars.push(-(mu * rho));
        self.bases.push(stmt.ek.0);
        self.scalars.push(-(mu * rc));
        self.g_coeff += mu * rho * proof.z;
    }

    /// Evaluates the fold; `true` iff it sums to the identity.
    fn holds(mut self) -> bool {
        self.bases.push(G1Affine::generator());
        self.scalars.push(self.g_coeff);
        crate::g1::msm_pippenger(&self.bases, &self.scalars).is_identity()
    }
}

/// Whether the folded batch equation holds over the items at `idx`.
fn aggregate_holds(
    items: &[(DecryptionStatement, DecryptionProof)],
    claim_points: &[G1Affine],
    challenges: &[Fr],
    weights: &[Fr],
    mu: Fr,
    idx: &[usize],
) -> bool {
    let mut fold = FoldedMsm::with_capacity(idx.len());
    for &i in idx {
        let (stmt, proof) = &items[i];
        fold.push(stmt, proof, claim_points[i], challenges[i], weights[i], mu);
    }
    fold.holds()
}

/// Per-item batch verification: returns one verdict per proof, matching
/// what [`verify`] would return for each, but paying one multi-scalar
/// multiplication for the whole batch in the common all-valid case.
///
/// Weights are derived deterministically from the batch transcript (no
/// RNG), so the result is reproducible — this is the settlement path the
/// marketplace engine dispatches a block's worth of PoQoEA/VPKE checks
/// through. When the folded equation fails, the batch is bisected to
/// isolate the invalid proofs, with single-item subsets checked by
/// [`verify`] directly.
///
/// Soundness caveat (shared by every random-linear-combination batch
/// verifier, e.g. batched ed25519): a subset whose hash-derived weighted
/// errors cancel would be accepted wholesale. Constructing such a batch
/// requires grinding the Fiat–Shamir weights — a random-oracle hardness
/// assumption of the same strength the VPKE proofs themselves rest on —
/// so verdicts agree with per-proof verification except with negligible
/// adversarial probability, and always agree on all-valid batches
/// (valid items satisfy every subset fold identically).
pub fn batch_verify_each(items: &[(DecryptionStatement, DecryptionProof)]) -> Vec<bool> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // Materialize each claim's group element once: `InRange(m)` costs a
    // scalar multiplication per conversion, and the point is needed by
    // the weights, the challenges and every fold.
    let claim_points: Vec<G1Affine> = items.iter().map(|(s, _)| s.claim.to_point()).collect();
    let weights = batch_weights(items, &claim_points);
    let challenges: Vec<Fr> = items
        .iter()
        .zip(&claim_points)
        .map(|((stmt, proof), m_point)| challenge(&proof.a, &proof.b, &stmt.ek, &stmt.ct, m_point))
        .collect();
    // Fold weight for the second verification equation.
    let mut t = Transcript::new(VPKE_BATCH_DOMAIN);
    t.absorb_bytes(b"fold");
    for w in &weights {
        t.absorb_scalar(w);
    }
    let mu = t.challenge_scalar();

    let mut verdicts = vec![true; n];
    let mut stack: Vec<Vec<usize>> = vec![(0..n).collect()];
    while let Some(idx) = stack.pop() {
        if idx.len() == 1 {
            let (stmt, proof) = &items[idx[0]];
            // The Fiat–Shamir challenge was already derived at entry;
            // checking the equations under it is exactly `verify`.
            verdicts[idx[0]] = verify_equations(stmt, proof, challenges[idx[0]]);
            continue;
        }
        if aggregate_holds(items, &claim_points, &challenges, &weights, mu, &idx) {
            continue;
        }
        let (lo, hi) = idx.split_at(idx.len() / 2);
        stack.push(lo.to_vec());
        stack.push(hi.to_vec());
    }
    verdicts
}

/// Runs [`batch_verify_each`] over independent chunks in parallel with
/// scoped OS threads (no external deps), returning one verdict vector
/// per chunk, in chunk order.
///
/// Block settlement is embarrassingly parallel across HIT instances:
/// each instance's queued proofs form one chunk, and verdicts are
/// per-item facts (`batch_verify_each` guarantees every verdict equals
/// the individual [`verify`] result), so any partitioning — including
/// the previous single concatenated batch — yields identical verdicts.
/// Small workloads (or single-core hosts) fall back to sequential
/// verification; thread fan-out only pays for itself once the block
/// carries a few dozen EC-heavy proof checks.
pub fn par_batch_verify_chunks(
    chunks: &[&[(DecryptionStatement, DecryptionProof)]],
) -> Vec<Vec<bool>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    par_batch_verify_chunks_with(chunks, threads)
}

/// [`par_batch_verify_chunks`] with an explicit thread budget instead of
/// the host's available parallelism — callers thread their configured
/// count (e.g. `DRAGOON_THREADS` / `MarketConfig`) through here. Verdicts
/// are identical for every thread count, including `1`.
pub fn par_batch_verify_chunks_with(
    chunks: &[&[(DecryptionStatement, DecryptionProof)]],
    threads: usize,
) -> Vec<Vec<bool>> {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let threads = threads.max(1).min(chunks.len());
    if threads <= 1 || total < 32 {
        return chunks.iter().map(|c| batch_verify_each(c)).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let mut verdicts: Vec<Vec<bool>> = vec![Vec::new(); chunks.len()];
    std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    // Work-stealing over chunk indices: chunk sizes are
                    // skewed (one busy instance can dominate a block),
                    // so static striping would idle most threads.
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= chunks.len() {
                            break;
                        }
                        done.push((i, batch_verify_each(chunks[i])));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, v) in handle.join().expect("verification thread panicked") {
                verdicts[i] = v;
            }
        }
    });
    verdicts
}

/// Checks only the two algebraic verification equations under an
/// explicitly supplied challenge (used to validate simulated proofs).
pub fn verify_equations(stmt: &DecryptionStatement, proof: &DecryptionProof, c: Fr) -> bool {
    let m_point = stmt.claim.to_point();
    let lhs1 = m_point * c + stmt.ct.c1 * proof.z;
    let rhs1 = proof.a.to_projective() + stmt.ct.c2 * c;
    let lhs2 = G1Projective::generator() * proof.z;
    let rhs2 = proof.b.to_projective() + stmt.ek.0 * c;
    lhs1 == rhs1 && lhs2 == rhs2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x4b4e)
    }

    fn setup() -> (StdRng, KeyPair, PlaintextRange) {
        let mut rng = rng();
        let kp = KeyPair::generate(&mut rng);
        (rng, kp, PlaintextRange::new(0, 3))
    }

    #[test]
    fn completeness_in_range() {
        let (mut rng, kp, range) = setup();
        for m in 0..=3 {
            let ct = kp.ek.encrypt(m, &mut rng);
            let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
            assert_eq!(claim, PlaintextClaim::InRange(m));
            let stmt = DecryptionStatement {
                ek: kp.ek,
                ct,
                claim,
            };
            assert!(verify(&stmt, &proof));
        }
    }

    #[test]
    fn completeness_out_of_range() {
        let (mut rng, kp, range) = setup();
        let ct = kp.ek.encrypt(77, &mut rng);
        let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
        assert!(matches!(claim, PlaintextClaim::OutOfRange(_)));
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct,
            claim,
        };
        assert!(verify(&stmt, &proof));
    }

    #[test]
    fn soundness_wrong_plaintext_rejected() {
        let (mut rng, kp, range) = setup();
        let ct = kp.ek.encrypt(2, &mut rng);
        let (_, proof) = prove(&kp.dk, &ct, &range, &mut rng);
        // Claiming a different plaintext with the honest proof must fail.
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct,
            claim: PlaintextClaim::InRange(1),
        };
        assert!(!verify(&stmt, &proof));
    }

    #[test]
    fn soundness_forged_proof_rejected() {
        let (mut rng, kp, range) = setup();
        let ct = kp.ek.encrypt(2, &mut rng);
        let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct,
            claim,
        };
        // Mutate each proof component.
        let mut bad = proof;
        bad.z += Fr::one();
        assert!(!verify(&stmt, &bad));
        let mut bad = proof;
        bad.a = G1Affine::generator();
        assert!(!verify(&stmt, &bad));
        let mut bad = proof;
        bad.b = G1Affine::generator();
        assert!(!verify(&stmt, &bad));
    }

    #[test]
    fn proof_bound_to_ciphertext() {
        let (mut rng, kp, range) = setup();
        let ct1 = kp.ek.encrypt(2, &mut rng);
        let ct2 = kp.ek.encrypt(2, &mut rng);
        let (claim, proof) = prove(&kp.dk, &ct1, &range, &mut rng);
        // Same plaintext, different ciphertext: proof must not transfer.
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct: ct2,
            claim,
        };
        assert!(!verify(&stmt, &proof));
    }

    #[test]
    fn proof_bound_to_key() {
        let (mut rng, kp, range) = setup();
        let other = KeyPair::generate(&mut rng);
        let ct = kp.ek.encrypt(1, &mut rng);
        let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
        let stmt = DecryptionStatement {
            ek: other.ek,
            ct,
            claim,
        };
        assert!(!verify(&stmt, &proof));
    }

    #[test]
    fn cheating_prover_cannot_claim_in_range_value() {
        // The requester cannot prove that an encryption of 2 decrypts to 0
        // even by generating a fresh (honestly structured) proof for it.
        let (mut rng, kp, _range) = setup();
        let ct = kp.ek.encrypt(2, &mut rng);
        let bogus_claim = PlaintextClaim::InRange(0);
        let forged = prove_claim(&kp.dk, &ct, &bogus_claim, &mut rng);
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct,
            claim: bogus_claim,
        };
        assert!(!verify(&stmt, &forged));
    }

    #[test]
    fn zero_knowledge_simulator_satisfies_equations() {
        let (mut rng, kp, _range) = setup();
        let ct = kp.ek.encrypt(1, &mut rng);
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct,
            claim: PlaintextClaim::InRange(1),
        };
        for _ in 0..5 {
            let c = Fr::random(&mut rng);
            let sim = simulate_with_challenge(&stmt, c, &mut rng);
            assert!(verify_equations(&stmt, &sim, c));
        }
    }

    #[test]
    fn simulator_even_for_false_statements() {
        // Special ZK: the simulator produces equation-valid transcripts
        // even for false claims — the proof leaks nothing beyond the
        // claim's validity (which the RO challenge enforces).
        let (mut rng, kp, _range) = setup();
        let ct = kp.ek.encrypt(1, &mut rng);
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct,
            claim: PlaintextClaim::InRange(0), // false!
        };
        let c = Fr::random(&mut rng);
        let sim = simulate_with_challenge(&stmt, c, &mut rng);
        assert!(verify_equations(&stmt, &sim, c));
    }

    #[test]
    fn batch_verify_accepts_honest_batch() {
        let (mut rng, kp, range) = setup();
        let mut items = Vec::new();
        for m in 0..=3 {
            let ct = kp.ek.encrypt(m, &mut rng);
            let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
            items.push((
                DecryptionStatement {
                    ek: kp.ek,
                    ct,
                    claim,
                },
                proof,
            ));
        }
        assert!(batch_verify(&items, &mut rng));
        assert!(batch_verify(&[], &mut rng), "empty batch is vacuous");
    }

    #[test]
    fn batch_verify_rejects_one_bad_proof() {
        let (mut rng, kp, range) = setup();
        let mut items = Vec::new();
        for m in 0..=3 {
            let ct = kp.ek.encrypt(m, &mut rng);
            let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
            items.push((
                DecryptionStatement {
                    ek: kp.ek,
                    ct,
                    claim,
                },
                proof,
            ));
        }
        // Corrupt a single proof in the middle.
        items[2].1.z += Fr::one();
        assert!(!batch_verify(&items, &mut rng));
        // Or a single claim.
        items[2].1.z -= Fr::one();
        items[1].0.claim = PlaintextClaim::InRange(3);
        assert!(!batch_verify(&items, &mut rng));
    }

    #[test]
    fn batch_verify_matches_individual() {
        let (mut rng, kp, range) = setup();
        for m in 0..=3 {
            let ct = kp.ek.encrypt(m, &mut rng);
            let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
            let stmt = DecryptionStatement {
                ek: kp.ek,
                ct,
                claim,
            };
            assert_eq!(
                verify(&stmt, &proof),
                batch_verify(&[(stmt, proof)], &mut rng)
            );
        }
    }

    #[test]
    fn batch_verify_each_matches_individual_verdicts() {
        let (mut rng, kp, range) = setup();
        let other = KeyPair::generate(&mut rng);
        let mut items = Vec::new();
        for m in 0..24u64 {
            let kp = if m % 5 == 0 { &other } else { &kp };
            let ct = kp.ek.encrypt(m % 4, &mut rng);
            let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
            items.push((
                DecryptionStatement {
                    ek: kp.ek,
                    ct,
                    claim,
                },
                proof,
            ));
        }
        // Corrupt a scattering of proofs and claims.
        items[3].1.z += Fr::one();
        items[11].0.claim = PlaintextClaim::InRange(2); // true plaintext is 3
        items[17].1.a = G1Affine::generator();
        let expected: Vec<bool> = items.iter().map(|(s, p)| verify(s, p)).collect();
        assert_eq!(batch_verify_each(&items), expected);
        assert_eq!(expected.iter().filter(|ok| !**ok).count(), 3);
    }

    #[test]
    fn batch_verify_each_all_valid_and_all_invalid() {
        let (mut rng, kp, range) = setup();
        let mut items = Vec::new();
        for m in 0..8u64 {
            let ct = kp.ek.encrypt(m % 4, &mut rng);
            let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
            items.push((
                DecryptionStatement {
                    ek: kp.ek,
                    ct,
                    claim,
                },
                proof,
            ));
        }
        assert!(batch_verify_each(&items).iter().all(|&ok| ok));
        for (_, p) in items.iter_mut() {
            p.z += Fr::one();
        }
        assert!(batch_verify_each(&items).iter().all(|&ok| !ok));
        assert!(batch_verify_each(&[]).is_empty());
    }

    #[test]
    fn batch_verify_each_is_deterministic() {
        let (mut rng, kp, range) = setup();
        let mut items = Vec::new();
        for m in 0..5u64 {
            let ct = kp.ek.encrypt(m % 4, &mut rng);
            let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
            items.push((
                DecryptionStatement {
                    ek: kp.ek,
                    ct,
                    claim,
                },
                proof,
            ));
        }
        items[2].1.z += Fr::one();
        assert_eq!(batch_verify_each(&items), batch_verify_each(&items));
    }

    #[test]
    fn par_batch_verify_chunks_matches_sequential() {
        let (mut rng, kp, range) = setup();
        // Skewed chunk sizes (1, 7, 23, 2, 40) force the work-stealing
        // path past the sequential-fallback threshold, with corruption
        // scattered across chunks.
        let mut chunks: Vec<Vec<(DecryptionStatement, DecryptionProof)>> = Vec::new();
        for (ci, n) in [1usize, 7, 23, 2, 40].into_iter().enumerate() {
            let mut chunk = Vec::new();
            for i in 0..n {
                let ct = kp.ek.encrypt((i % 3) as u64, &mut rng);
                let (claim, mut proof) = prove(&kp.dk, &ct, &range, &mut rng);
                if (ci + i) % 5 == 0 {
                    proof.z += Fr::one();
                }
                chunk.push((
                    DecryptionStatement {
                        ek: kp.ek,
                        ct,
                        claim,
                    },
                    proof,
                ));
            }
            chunks.push(chunk);
        }
        let refs: Vec<&[(DecryptionStatement, DecryptionProof)]> =
            chunks.iter().map(Vec::as_slice).collect();
        let par = par_batch_verify_chunks(&refs);
        let seq: Vec<Vec<bool>> = chunks.iter().map(|c| batch_verify_each(c)).collect();
        assert_eq!(par, seq, "parallel fan-out must not change verdicts");
        let individual: Vec<Vec<bool>> = chunks
            .iter()
            .map(|c| c.iter().map(|(s, p)| verify(s, p)).collect())
            .collect();
        assert_eq!(par, individual, "and verdicts equal per-proof verify");
        // Some of the corrupted proofs actually failed.
        assert!(par.iter().flatten().any(|&ok| !ok));
        // An explicit thread budget — the configurable path the registry
        // uses — is verdict-identical at every count, including 1.
        for threads in [1usize, 2, 3, 16] {
            assert_eq!(
                par_batch_verify_chunks_with(&refs, threads),
                seq,
                "thread budget {threads} must not change verdicts"
            );
        }
    }

    #[test]
    fn serde_proof_round_trip_bytes() {
        let (mut rng, kp, range) = setup();
        let ct = kp.ek.encrypt(3, &mut rng);
        let (claim, proof) = prove(&kp.dk, &ct, &range, &mut rng);
        // The proof's components survive a bytes round trip.
        let a2 = G1Affine::from_bytes(&proof.a.to_bytes()).unwrap();
        let z2 = Fr::from_bytes_le(&proof.z.to_bytes_le()).unwrap();
        assert_eq!(a2, proof.a);
        assert_eq!(z2, proof.z);
        let stmt = DecryptionStatement {
            ek: kp.ek,
            ct,
            claim,
        };
        assert!(verify(&stmt, &proof));
    }
}
