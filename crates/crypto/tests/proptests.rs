//! Property-based tests of the cryptographic substrate: field axioms,
//! group laws, encoding round trips, and scheme-level properties under
//! randomized inputs.

use dragoon_crypto::elgamal::{discrete_log_bsgs, Decrypted, KeyPair, PlaintextRange};
use dragoon_crypto::g1::{G1Affine, G1Projective};
use dragoon_crypto::keccak::keccak256;
use dragoon_crypto::vpke::{self, PlaintextClaim};
use dragoon_crypto::{Fq, Fr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fr(seed: u64) -> Fr {
    Fr::random(&mut StdRng::seed_from_u64(seed))
}

fn fq(seed: u64) -> Fq {
    Fq::random(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------------- Field axioms over random elements ----------------

    #[test]
    fn fq_ring_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (fq(a), fq(b), fq(c));
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!(x * (y * z), (x * y) * z);
        prop_assert_eq!(x * (y + z), x * y + x * z);
        prop_assert_eq!(x + (-x), Fq::zero());
        prop_assert_eq!(x * Fq::one(), x);
        prop_assert_eq!(x * Fq::zero(), Fq::zero());
    }

    #[test]
    fn fq_inversion_and_sqrt(a in any::<u64>()) {
        let x = fq(a);
        if !x.is_zero() {
            let inv = x.inverse().unwrap();
            prop_assert_eq!(x * inv, Fq::one());
            prop_assert_eq!(inv.inverse().unwrap(), x);
        }
        let sq = x.square();
        let root = sq.sqrt().expect("squares have roots");
        prop_assert!(root == x || root == -x);
    }

    #[test]
    fn fr_bytes_round_trip(a in any::<u64>()) {
        let x = fr(a);
        prop_assert_eq!(Fr::from_bytes_le(&x.to_bytes_le()), Some(x));
        // Wide reduction agrees on already-reduced values.
        prop_assert_eq!(Fr::from_bytes_le_reduced(&x.to_bytes_le()), x);
    }

    #[test]
    fn fq_pow_homomorphism(a in any::<u64>(), e1 in 0u64..50, e2 in 0u64..50) {
        let x = fq(a);
        prop_assert_eq!(x.pow(&[e1]) * x.pow(&[e2]), x.pow(&[e1 + e2]));
        prop_assert_eq!(x.pow(&[e1]).pow(&[e2]), x.pow(&[e1 * e2]));
    }

    // ---------------- Group laws ----------------

    #[test]
    fn g1_group_laws(a in any::<u64>(), b in any::<u64>()) {
        let (ka, kb) = (fr(a), fr(b));
        let g = G1Projective::generator();
        let p = g * ka;
        let q = g * kb;
        prop_assert_eq!(p + q, q + p);
        prop_assert_eq!(p - p, G1Projective::identity());
        prop_assert_eq!(g * ka + g * kb, g * (ka + kb));
        prop_assert_eq!((g * ka) * kb, g * (ka * kb));
        // Affine round trip preserves the point.
        prop_assert_eq!(p.to_affine().to_projective(), p);
        prop_assert!(p.to_affine().is_on_curve());
    }

    #[test]
    fn g1_serialization_round_trip(a in any::<u64>()) {
        let p = (G1Projective::generator() * fr(a)).to_affine();
        prop_assert_eq!(G1Affine::from_bytes(&p.to_bytes()), Some(p));
    }

    // ---------------- Keccak ----------------

    #[test]
    fn keccak_deterministic_and_sensitive(data in any::<Vec<u8>>()) {
        let d1 = keccak256(&data);
        prop_assert_eq!(d1, keccak256(&data));
        let mut flipped = data.clone();
        if let Some(b) = flipped.first_mut() {
            *b ^= 1;
            prop_assert_ne!(d1, keccak256(&flipped));
        }
    }

    // ---------------- ElGamal ----------------

    #[test]
    fn elgamal_homomorphism(m1 in 0u64..50, m2 in 0u64..50, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 100);
        let ct1 = kp.ek.encrypt(m1, &mut rng);
        let ct2 = kp.ek.encrypt(m2, &mut rng);
        let sum = ct1.homomorphic_add(&ct2);
        prop_assert_eq!(kp.dk.decrypt(&sum, &range), Decrypted::InRange(m1 + m2));
    }

    #[test]
    fn bsgs_solves_random_dlogs(m in 0u64..10_000) {
        let target = (G1Projective::generator() * Fr::from_u64(m)).to_affine();
        prop_assert_eq!(discrete_log_bsgs(&target, 10_000), Some(m));
    }

    // ---------------- VPKE ----------------

    #[test]
    fn vpke_out_of_range_claims_verify(m in 100u64..200, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 10);
        let ct = kp.ek.encrypt(m, &mut rng);
        let (claim, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
        prop_assert!(matches!(claim, PlaintextClaim::OutOfRange(_)));
        let stmt = vpke::DecryptionStatement { ek: kp.ek, ct, claim };
        prop_assert!(vpke::verify(&stmt, &proof));
    }

    #[test]
    fn vpke_batch_of_random_sizes(n in 1usize..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KeyPair::generate(&mut rng);
        let range = PlaintextRange::new(0, 3);
        let mut items = Vec::new();
        for m in 0..n as u64 {
            let ct = kp.ek.encrypt(m % 4, &mut rng);
            let (claim, proof) = vpke::prove(&kp.dk, &ct, &range, &mut rng);
            items.push((vpke::DecryptionStatement { ek: kp.ek, ct, claim }, proof));
        }
        prop_assert!(vpke::batch_verify(&items, &mut rng));
        // Corrupt the last item.
        let last = items.len() - 1;
        items[last].1.z += Fr::one();
        prop_assert!(!vpke::batch_verify(&items, &mut rng));
    }
}
