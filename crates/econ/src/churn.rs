//! Seeded worker churn: the pool gains and loses workers over a long
//! horizon.
//!
//! The paper's worker pool is fixed for the lifetime of a task; a market
//! running thousands of HITs over thousands of blocks is not. The
//! [`ChurnProcess`] drives arrivals and departures from its **own**
//! deterministic RNG stream (derived from the market seed), so the churn
//! pattern is reproducible and independent of how much randomness agent
//! behaviour consumes — and therefore identical at every executor thread
//! count.
//!
//! Departure semantics are defined by the engine: a departed worker
//! stops committing and stops revealing, so its outstanding commitments
//! settle as `⊥` (no-reveal) and the escrowed shares flow back to the
//! requesters — churn can never strand coins in escrow, which
//! `tests/contention.rs` pins under front-running.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the churn process.
#[derive(Clone, Copy, Debug)]
pub struct ChurnParams {
    /// Probability a new worker joins the pool in any given block
    /// (evaluated up to `max_events_per_block` times).
    pub join_rate: f64,
    /// Probability *some* active worker departs in any given block
    /// (evaluated up to `max_events_per_block` times; the victim is
    /// drawn uniformly).
    pub depart_rate: f64,
    /// Arrival/departure draws per block (bounds burstiness).
    pub max_events_per_block: usize,
    /// Departures never shrink the active pool below this.
    pub min_pool: usize,
    /// Arrivals never grow the pool beyond this.
    pub max_pool: usize,
}

impl Default for ChurnParams {
    fn default() -> Self {
        Self {
            join_rate: 0.25,
            depart_rate: 0.2,
            max_events_per_block: 2,
            min_pool: 8,
            max_pool: 4_096,
        }
    }
}

/// One block's churn decision.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnDecision {
    /// Workers to add to the pool this block.
    pub joins: usize,
    /// Positions (into the caller's *current* active-worker list, applied
    /// in order with removal) of workers departing this block.
    pub departs: Vec<usize>,
}

/// The seeded churn process.
#[derive(Clone, Debug)]
pub struct ChurnProcess {
    params: ChurnParams,
    rng: StdRng,
    joined: usize,
    departed: usize,
}

impl ChurnProcess {
    /// A churn process with its own RNG stream derived from `seed`.
    pub fn new(seed: u64, params: ChurnParams) -> Self {
        Self {
            params,
            // Domain-separated from the engine's behaviour stream.
            rng: StdRng::seed_from_u64(seed ^ 0xC0A2_15EA_5EED_0001),
            joined: 0,
            departed: 0,
        }
    }

    /// Lifetime counters `(joined, departed)`.
    pub fn totals(&self) -> (usize, usize) {
        (self.joined, self.departed)
    }

    /// Decides this block's churn against an `active` pool size. The
    /// returned depart positions index the caller's active list as it
    /// shrinks (apply in order, removing as you go).
    pub fn step(&mut self, active: usize) -> ChurnDecision {
        let mut decision = ChurnDecision::default();
        let mut remaining = active;
        for _ in 0..self.params.max_events_per_block {
            if remaining > self.params.min_pool && self.rng.gen::<f64>() < self.params.depart_rate {
                decision.departs.push(self.rng.gen_range(0..remaining));
                remaining -= 1;
            }
        }
        for _ in 0..self.params.max_events_per_block {
            if remaining + decision.joins < self.params.max_pool
                && self.rng.gen::<f64>() < self.params.join_rate
            {
                decision.joins += 1;
            }
        }
        self.joined += decision.joins;
        self.departed += decision.departs.len();
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_pattern() {
        let params = ChurnParams::default();
        let mut a = ChurnProcess::new(7, params);
        let mut b = ChurnProcess::new(7, params);
        for active in [20usize, 19, 25, 30, 12] {
            assert_eq!(a.step(active), b.step(active));
        }
        assert_eq!(a.totals(), b.totals());
    }

    #[test]
    fn pool_bounds_hold() {
        let mut churn = ChurnProcess::new(
            3,
            ChurnParams {
                join_rate: 1.0,
                depart_rate: 1.0,
                max_events_per_block: 4,
                min_pool: 5,
                max_pool: 6,
            },
        );
        // At the floor nothing departs; at the cap nothing joins.
        let d = churn.step(5);
        assert!(d.departs.is_empty());
        assert_eq!(d.joins, 1, "one join reaches the cap of 6");
        let d = churn.step(6);
        assert_eq!(d.departs.len(), 1, "above the floor departures fire");
        for pos in &d.departs {
            assert!(*pos < 6);
        }
    }

    #[test]
    fn depart_positions_index_a_shrinking_list() {
        let mut churn = ChurnProcess::new(
            11,
            ChurnParams {
                join_rate: 0.0,
                depart_rate: 1.0,
                max_events_per_block: 3,
                min_pool: 0,
                max_pool: 100,
            },
        );
        let d = churn.step(10);
        assert_eq!(d.departs.len(), 3);
        // Each pick must be valid against the list as it shrinks.
        let mut remaining = 10;
        for pos in &d.departs {
            assert!(*pos < remaining);
            remaining -= 1;
        }
    }
}
