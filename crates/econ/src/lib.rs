//! # dragoon-econ
//!
//! The market-economics subsystem: the first layer of **cross-HIT
//! state** in the stack. Everything below it — contract, chain,
//! protocol — models one HIT instance at a time; everything here
//! persists *across* instances and feeds back into the next one:
//!
//! * [`reputation::ReputationBook`] — per-worker quality scores
//!   accumulated from settlement receipts, decaying per block; gates
//!   commit eligibility and orders worker selection.
//! * [`pricing::PricingEngine`] — each new HIT's budget `B` set from
//!   observed fill rates and settlement latency over a sliding window of
//!   recent blocks (fed by [`dragoon_chain::BlockObservation`]).
//! * [`churn::ChurnProcess`] — seeded, deterministic worker
//!   arrivals/departures over a long horizon.
//! * [`policy::AgentPolicy`] — pluggable adversary strategies:
//!   golden-withholding requester cartels ([`policy::CartelPolicy`]) and
//!   reputation-farming sybil workers ([`policy::SybilFarmPolicy`]),
//!   with extraction metrics in the [`report::EconReport`].
//!
//! The [`EconEngine`] bundles the four into the runtime the
//! `dragoon-sim` marketplace engine drives at its block boundaries.
//! Every input is derived from committed chain state (settlement
//! receipts, block observations, event flows), and churn draws from its
//! own seeded RNG stream, so the whole layer is bit-deterministic across
//! runs *and* across executor thread counts.

pub mod churn;
pub mod policy;
pub mod pricing;
pub mod report;
pub mod reputation;

pub use churn::{ChurnDecision, ChurnParams, ChurnProcess};
pub use policy::{AgentPolicy, CartelPolicy, HonestPolicy, SybilFarmPolicy, WorkerCtx};
pub use pricing::{PricingEngine, PricingParams};
pub use report::EconReport;
pub use reputation::{ReputationBook, ReputationParams};

use dragoon_chain::BlockObservation;
use dragoon_contract::{Settlement, SettlementReceipt};
use dragoon_ledger::Address;
use dragoon_protocol::WorkerBehavior;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything that configures the econ layer of a market run. Disabled
/// by default; `..EconConfig::default()` keeps existing scenarios
/// byte-identical.
#[derive(Clone, Debug)]
pub struct EconConfig {
    /// Master switch; when false the engine skips the layer entirely.
    pub enabled: bool,
    /// Reputation dynamics (always on when the layer is enabled).
    pub reputation: ReputationParams,
    /// Dynamic pricing of `B` (`None` keeps the scenario's fixed budget).
    pub pricing: Option<PricingParams>,
    /// Worker churn (`None` keeps the pool fixed).
    pub churn: Option<ChurnParams>,
    /// Whether workers decline HITs paying under their reservation wage
    /// (deterministic per-worker wages spread around the base reward —
    /// the supply elasticity dynamic pricing needs to converge against).
    pub reservation_wages: bool,
    /// The first `cartel_requesters` requesters run `requester_policy`.
    pub cartel_requesters: usize,
    /// The first `sybil_workers` pool workers run `worker_policy`.
    pub sybil_workers: usize,
    /// The strategy cartel requesters follow.
    pub requester_policy: Arc<dyn AgentPolicy>,
    /// The strategy sybil workers follow.
    pub worker_policy: Arc<dyn AgentPolicy>,
}

impl Default for EconConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            reputation: ReputationParams::default(),
            pricing: None,
            churn: None,
            reservation_wages: false,
            cartel_requesters: 0,
            sybil_workers: 0,
            requester_policy: Arc::new(CartelPolicy),
            worker_policy: Arc::new(SybilFarmPolicy::default()),
        }
    }
}

impl EconConfig {
    /// A passive configuration: reputation is tracked and reported but
    /// influences nothing (no gating, no ordering, no pricing, no churn,
    /// no adversaries). A run under `observe_only` is **byte-identical**
    /// to an econ-disabled run — the differential the
    /// `marketplace_throughput` bench uses to price the layer's
    /// bookkeeping overhead.
    pub fn observe_only() -> Self {
        Self {
            enabled: true,
            reputation: ReputationParams {
                order_by_score: false,
                gate_commits: false,
                ..ReputationParams::default()
            },
            ..Self::default()
        }
    }
}

/// A worker's commit-slot decision for one HIT.
#[derive(Clone, Debug)]
pub enum JoinDecision {
    /// Join, with a policy-chosen behaviour (`None` = the worker's pool
    /// default).
    Join(Option<WorkerBehavior>),
    /// Barred by the reputation gate.
    Gated,
    /// Declined: the reward is below the worker's reservation wage.
    Declined,
}

/// Accumulated adversary/flow metrics (engine-internal).
#[derive(Clone, Debug, Default)]
struct EconMetrics {
    gated_commits: u64,
    declined_commits: u64,
    goldens_withheld: u64,
    cartel_rejections: u64,
    cartel_refunds: u128,
    honest_refunds: u128,
    honest_paid: u128,
    honest_paid_count: u64,
    honest_rejected: u64,
    sybil_paid: u128,
    sybil_paid_count: u64,
    sybil_rejected: u64,
}

/// The econ runtime a marketplace engine drives: reputation, pricing,
/// churn, adversary classification and metrics, behind block-boundary
/// hooks.
#[derive(Clone, Debug)]
pub struct EconEngine {
    config: EconConfig,
    reputation: ReputationBook,
    pricing: Option<PricingEngine>,
    churn: Option<ChurnProcess>,
    cartel: BTreeSet<Address>,
    sybils: BTreeSet<Address>,
    /// Deterministic per-worker reservation wages (coins per task).
    wages: BTreeMap<Address, u128>,
    /// The chain's block gas cap — the congestion reference the pricing
    /// controller reads [`BlockObservation`]s against.
    block_gas_limit: Option<u64>,
    metrics: EconMetrics,
}

impl EconEngine {
    /// Builds the runtime for a market whose scenario-default budget is
    /// `default_budget` (the pricing controller's opening price) and
    /// whose chain runs under `block_gas_limit` (the congestion
    /// reference for [`EconEngine::observe_block`]; `None` = uncapped,
    /// never congested). `seed` derives the churn process's own RNG
    /// stream.
    pub fn for_market(
        config: EconConfig,
        seed: u64,
        default_budget: u128,
        block_gas_limit: Option<u64>,
    ) -> Self {
        let pricing = config
            .pricing
            .map(|p| PricingEngine::new(p, default_budget));
        let churn = config.churn.map(|p| ChurnProcess::new(seed, p));
        Self {
            reputation: ReputationBook::new(config.reputation),
            pricing,
            churn,
            cartel: BTreeSet::new(),
            sybils: BTreeSet::new(),
            wages: BTreeMap::new(),
            metrics: EconMetrics::default(),
            block_gas_limit,
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EconConfig {
        &self.config
    }

    /// Read access to the reputation book.
    pub fn reputation(&self) -> &ReputationBook {
        &self.reputation
    }

    /// Read access to the pricing controller.
    pub fn pricing(&self) -> Option<&PricingEngine> {
        self.pricing.as_ref()
    }

    /// Classifies requester `index` at pool construction.
    pub fn register_requester(&mut self, index: usize, addr: Address) {
        if index < self.config.cartel_requesters {
            self.cartel.insert(addr);
        }
    }

    /// Classifies worker `index` (initial pool position or churn-arrival
    /// sequence number) and fixes its deterministic reservation wage as
    /// a spread around `base_reward`.
    pub fn register_worker(&mut self, index: usize, addr: Address, base_reward: u128) {
        if index < self.config.sybil_workers {
            self.sybils.insert(addr);
        }
        // Wages spread deterministically over [0.6, 1.4] × base reward.
        let factor = 60 + (index as u128).wrapping_mul(37) % 81;
        self.wages.insert(addr, base_reward * factor / 100);
    }

    /// Whether `addr` is a cartel requester.
    pub fn is_cartel(&self, addr: &Address) -> bool {
        self.cartel.contains(addr)
    }

    /// Whether `addr` is a sybil worker.
    pub fn is_sybil(&self, addr: &Address) -> bool {
        self.sybils.contains(addr)
    }

    /// The θ requester `index` publishes for a task with `golds` gold
    /// standards (cartel members consult their policy).
    pub fn theta_for(&self, index: usize, golds: usize, default: u64) -> u64 {
        if index < self.config.cartel_requesters {
            self.config.requester_policy.theta(golds, default)
        } else {
            default
        }
    }

    /// The budget the next published HIT freezes (the dynamic price, or
    /// the scenario default when pricing is off).
    pub fn next_budget(&self, default: u128) -> u128 {
        self.pricing.as_ref().map_or(default, PricingEngine::price)
    }

    /// Whether commit-slot candidates are ordered by reputation.
    pub fn orders_by_score(&self) -> bool {
        self.config.reputation.order_by_score
    }

    /// Sorts `(pool index, address)` candidates by decayed score,
    /// highest first (no-op unless ordering is enabled).
    pub fn rank(&self, candidates: &mut [(usize, Address)], round: u64) {
        if self.config.reputation.order_by_score {
            self.reputation.rank(candidates, round);
        }
    }

    /// One worker's commit decision for a HIT paying `reward` per
    /// worker.
    pub fn join_decision(&mut self, addr: &Address, reward: u128, round: u64) -> JoinDecision {
        if !self.reputation.eligible(addr, round) {
            self.metrics.gated_commits += 1;
            return JoinDecision::Gated;
        }
        if self.config.reservation_wages {
            if let Some(&wage) = self.wages.get(addr) {
                if reward < wage {
                    self.metrics.declined_commits += 1;
                    return JoinDecision::Declined;
                }
            }
        }
        if self.sybils.contains(addr) {
            let ctx = WorkerCtx {
                score: self.reputation.score(addr, round),
                reward,
                round,
            };
            return JoinDecision::Join(self.config.worker_policy.worker_behavior(&ctx));
        }
        JoinDecision::Join(None)
    }

    /// Whether requester `addr` withholds its golden opening given
    /// `rejectable` rejectable reveals. Counts the withholding.
    pub fn withholds_golden(&mut self, addr: &Address, rejectable: usize) -> bool {
        if self.cartel.contains(addr) && self.config.requester_policy.withholds_golden(rejectable) {
            self.metrics.goldens_withheld += 1;
            true
        } else {
            false
        }
    }

    /// Absorbs one settled HIT's receipts: feeds the reputation book and
    /// the per-class payout metrics.
    pub fn on_settled_hit(
        &mut self,
        requester: &Address,
        receipts: &[SettlementReceipt],
        round: u64,
    ) {
        let cartel_hit = self.cartel.contains(requester);
        for receipt in receipts {
            self.reputation.observe(receipt, round);
            let sybil = self.sybils.contains(&receipt.worker);
            match &receipt.outcome {
                Settlement::Paid => {
                    if sybil {
                        self.metrics.sybil_paid += receipt.amount;
                        self.metrics.sybil_paid_count += 1;
                    } else {
                        self.metrics.honest_paid += receipt.amount;
                        self.metrics.honest_paid_count += 1;
                    }
                }
                Settlement::Rejected(reason) => {
                    if sybil {
                        self.metrics.sybil_rejected += 1;
                    } else {
                        self.metrics.honest_rejected += 1;
                    }
                    use dragoon_contract::RejectReason;
                    if cartel_hit && !matches!(reason, RejectReason::NoReveal) {
                        self.metrics.cartel_rejections += 1;
                    }
                }
            }
        }
    }

    /// Records an escrow refund flowing back to `requester`.
    pub fn note_refund(&mut self, requester: &Address, amount: u128) {
        if self.cartel.contains(requester) {
            self.metrics.cartel_refunds += amount;
        } else {
            self.metrics.honest_refunds += amount;
        }
    }

    /// Block boundary: feeds the pricing controller with the chain's
    /// [`BlockObservation`] (the congestion signal — gas used against
    /// the cap) plus the market-level fill outcomes and settlement
    /// latencies of the block.
    pub fn observe_block(
        &mut self,
        observation: &BlockObservation,
        filled: usize,
        cancelled: usize,
        latencies: &[u64],
    ) {
        if let Some(p) = &mut self.pricing {
            let congested = self.block_gas_limit.is_some_and(|limit| {
                observation.gas_used as f64 >= limit as f64 * p.params().congestion_utilization
            });
            p.observe_block(filled, cancelled, latencies, congested);
        }
    }

    /// Block boundary: the churn decision against `active` pool workers
    /// (empty when churn is off).
    pub fn churn_step(&mut self, active: usize) -> ChurnDecision {
        self.churn
            .as_mut()
            .map(|c| c.step(active))
            .unwrap_or_default()
    }

    /// Assembles the end-of-run report at `round`.
    pub fn report(&self, round: u64) -> EconReport {
        let (rep_mean, rep_min, rep_max) = self.reputation.stats(round);
        let (price_final, price_min_seen, price_max_seen, adjustments, fill, filled, unfilled) =
            match &self.pricing {
                Some(p) => {
                    let (lo, hi) = p.price_range_seen();
                    let (f, c) = p.totals();
                    (
                        p.price(),
                        lo,
                        hi,
                        p.adjustments(),
                        p.fill_rate().unwrap_or(-1.0),
                        f,
                        c,
                    )
                }
                None => (0, 0, 0, 0, -1.0, 0, 0),
            };
        let (workers_joined, workers_departed) =
            self.churn.as_ref().map_or((0, 0), ChurnProcess::totals);
        EconReport {
            rep_tracked: self.reputation.tracked(),
            rep_receipts: self.reputation.observed(),
            rep_decay_violations: self.reputation.decay_violations(),
            rep_mean,
            rep_min,
            rep_max,
            gated_commits: self.metrics.gated_commits,
            declined_commits: self.metrics.declined_commits,
            price_final,
            price_min_seen,
            price_max_seen,
            price_adjustments: adjustments,
            fill_rate_recent: fill,
            hits_filled: filled,
            hits_unfilled: unfilled,
            workers_joined,
            workers_departed,
            goldens_withheld: self.metrics.goldens_withheld,
            cartel_rejections: self.metrics.cartel_rejections,
            cartel_refunds: self.metrics.cartel_refunds,
            honest_refunds: self.metrics.honest_refunds,
            honest_paid: self.metrics.honest_paid,
            honest_paid_count: self.metrics.honest_paid_count,
            honest_rejected: self.metrics.honest_rejected,
            sybil_paid: self.metrics.sybil_paid,
            sybil_paid_count: self.metrics.sybil_paid_count,
            sybil_rejected: self.metrics.sybil_rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_contract::RejectReason;

    fn receipt(worker: Address, outcome: Settlement, amount: u128) -> SettlementReceipt {
        SettlementReceipt {
            worker,
            outcome,
            amount,
        }
    }

    fn full_config() -> EconConfig {
        EconConfig {
            enabled: true,
            pricing: Some(PricingParams::default()),
            churn: Some(ChurnParams::default()),
            reservation_wages: true,
            cartel_requesters: 1,
            sybil_workers: 2,
            ..EconConfig::default()
        }
    }

    #[test]
    fn classification_and_metrics_split_by_class() {
        let mut e = EconEngine::for_market(full_config(), 7, 3_000, Some(30_000_000));
        let cartel_req = Address::from_byte(0xd0);
        let honest_req = Address::from_byte(0xd1);
        e.register_requester(0, cartel_req);
        e.register_requester(1, honest_req);
        let sybil = Address::from_byte(1);
        let honest = Address::from_byte(9);
        e.register_worker(0, sybil, 1_000);
        e.register_worker(5, honest, 1_000);
        assert!(e.is_cartel(&cartel_req) && !e.is_cartel(&honest_req));
        assert!(e.is_sybil(&sybil) && !e.is_sybil(&honest));
        e.on_settled_hit(
            &cartel_req,
            &[
                receipt(sybil, Settlement::Paid, 500),
                receipt(
                    honest,
                    Settlement::Rejected(RejectReason::LowQuality { chi: 1 }),
                    0,
                ),
            ],
            10,
        );
        e.note_refund(&cartel_req, 500);
        e.note_refund(&honest_req, 100);
        let r = e.report(10);
        assert_eq!(r.sybil_paid, 500);
        assert_eq!(r.honest_rejected, 1);
        assert_eq!(r.cartel_rejections, 1);
        assert_eq!(r.cartel_refunds, 500);
        assert_eq!(r.honest_refunds, 100);
        assert_eq!(r.rep_receipts, 2);
    }

    #[test]
    fn wage_gate_and_reputation_gate_count() {
        let mut e = EconEngine::for_market(full_config(), 7, 3_000, Some(30_000_000));
        let w = Address::from_byte(8);
        e.register_worker(7, w, 1_000); // wage = 1000 * (60 + 7*37 % 81)/100
        let wage = 1_000 * (60 + 7 * 37 % 81) / 100;
        assert!(matches!(
            e.join_decision(&w, wage, 1),
            JoinDecision::Join(None)
        ));
        assert!(matches!(
            e.join_decision(&w, wage - 1, 1),
            JoinDecision::Declined
        ));
        // Crash the reputation below the floor: gated.
        for _ in 0..3 {
            e.on_settled_hit(
                &Address::from_byte(0xd1),
                &[receipt(
                    w,
                    Settlement::Rejected(RejectReason::LowQuality { chi: 0 }),
                    0,
                )],
                1,
            );
        }
        assert!(matches!(e.join_decision(&w, wage, 1), JoinDecision::Gated));
        let r = e.report(1);
        assert_eq!(r.declined_commits, 1);
        assert_eq!(r.gated_commits, 1);
    }

    #[test]
    fn observe_only_influences_nothing() {
        let mut e = EconEngine::for_market(EconConfig::observe_only(), 1, 3_000, None);
        let w = Address::from_byte(3);
        e.register_worker(0, w, 1_000);
        assert!(!e.is_sybil(&w));
        assert!(!e.orders_by_score());
        // Even a terrible history neither gates nor declines.
        for _ in 0..5 {
            e.on_settled_hit(
                &Address::from_byte(0xd1),
                &[receipt(
                    w,
                    Settlement::Rejected(RejectReason::LowQuality { chi: 0 }),
                    0,
                )],
                1,
            );
        }
        assert!(matches!(
            e.join_decision(&w, 1, 1),
            JoinDecision::Join(None)
        ));
        assert_eq!(e.next_budget(42), 42);
        assert_eq!(e.churn_step(10), ChurnDecision::default());
        assert!(!e.withholds_golden(&Address::from_byte(0xd0), 0));
    }
}
