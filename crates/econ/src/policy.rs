//! Pluggable agent strategies: the extension point adversarial market
//! scenarios hang off.
//!
//! The marketplace engine consults one [`AgentPolicy`] per adversary
//! class at its decision points — workload shaping at publish time,
//! session behaviour at commit time, and the golden-opening decision in
//! the evaluate phase. Honest agents use [`HonestPolicy`] (every hook is
//! a default); the two built-in adversaries are:
//!
//! * [`CartelPolicy`] — a **golden-withholding requester cartel**: its
//!   members publish with the strictest provable threshold (`Θ = |G|`,
//!   so any gold miss is rejectable), evaluate every reveal *off-chain
//!   first*, and open the gold standards only when at least one
//!   rejection will land. A HIT whose workers all pass keeps its golds
//!   secret (nothing on-chain ever reveals them) and settles through the
//!   deadline backstop — the cartel reuses the same hidden standards
//!   across its HITs while clawing back every rejectable share.
//! * [`SybilFarmPolicy`] — **reputation-farming sybil workers**: many
//!   coordinated identities that work diligently while their reputation
//!   is below a farming target, then switch to zero-effort (random-bot)
//!   submissions on HITs whose per-worker reward crosses a defection
//!   threshold, riding the farmed score back into commit slots while it
//!   lasts.

use dragoon_core::workload::AnswerModel;
use dragoon_protocol::WorkerBehavior;
use std::fmt;

/// What a worker-side policy sees when deciding a session.
#[derive(Clone, Debug)]
pub struct WorkerCtx {
    /// The worker's decayed reputation score.
    pub score: f64,
    /// The per-worker reward (`B/K`) of the HIT under consideration.
    pub reward: u128,
    /// The current round.
    pub round: u64,
}

/// A pluggable agent strategy. Every hook has an honest default, so an
/// implementation overrides only the decisions its adversary bends.
pub trait AgentPolicy: fmt::Debug + Send + Sync {
    /// A short label for reports.
    fn name(&self) -> &'static str;

    /// Worker-side: the behaviour this session runs; `None` keeps the
    /// worker's default behaviour from the pool mix.
    fn worker_behavior(&self, _ctx: &WorkerCtx) -> Option<WorkerBehavior> {
        None
    }

    /// Requester-side: the quality threshold published for a task with
    /// `golds` gold standards (the honest default keeps the scenario's).
    fn theta(&self, _golds: usize, default: u64) -> u64 {
        default
    }

    /// Requester-side: whether to withhold the golden opening given that
    /// `rejectable` of the revealed submissions could be rejected.
    fn withholds_golden(&self, _rejectable: usize) -> bool {
        false
    }
}

/// The protocol-faithful default: every hook keeps the honest choice.
#[derive(Clone, Copy, Debug, Default)]
pub struct HonestPolicy;

impl AgentPolicy for HonestPolicy {
    fn name(&self) -> &'static str {
        "honest"
    }
}

/// The golden-withholding requester cartel (see the module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct CartelPolicy;

impl AgentPolicy for CartelPolicy {
    fn name(&self) -> &'static str {
        "golden_withholding_cartel"
    }

    /// Maximal strictness: any missed gold standard is provably below
    /// threshold.
    fn theta(&self, golds: usize, default: u64) -> u64 {
        default.max(golds as u64)
    }

    /// Open the golds only when a rejection will actually land.
    fn withholds_golden(&self, rejectable: usize) -> bool {
        rejectable == 0
    }
}

/// Reputation-farming sybil workers (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct SybilFarmPolicy {
    /// Farm (work diligently) until the score reaches this target.
    pub farm_score: f64,
    /// Defect only on HITs paying at least this per-worker reward;
    /// cheaper HITs keep getting diligent work (they are the farm).
    pub defect_reward: u128,
    /// Accuracy of the farming phase.
    pub farm_accuracy: f64,
}

impl Default for SybilFarmPolicy {
    fn default() -> Self {
        Self {
            farm_score: 2.0,
            defect_reward: 800,
            farm_accuracy: 0.97,
        }
    }
}

impl AgentPolicy for SybilFarmPolicy {
    fn name(&self) -> &'static str {
        "sybil_farm"
    }

    fn worker_behavior(&self, ctx: &WorkerCtx) -> Option<WorkerBehavior> {
        if ctx.score >= self.farm_score && ctx.reward >= self.defect_reward {
            // Farmed enough: spend the reputation on zero-effort work
            // where the payout is worth it.
            Some(WorkerBehavior::Honest(AnswerModel::RandomBot))
        } else {
            Some(WorkerBehavior::Honest(AnswerModel::Diligent {
                accuracy: self.farm_accuracy,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartel_publishes_strict_and_withholds_when_clean() {
        let p = CartelPolicy;
        assert_eq!(p.theta(3, 2), 3, "θ is pushed to |G|");
        assert_eq!(p.theta(3, 5), 5, "an already stricter θ is kept");
        assert!(p.withholds_golden(0));
        assert!(!p.withholds_golden(1));
        assert!(HonestPolicy.theta(3, 2) == 2 && !HonestPolicy.withholds_golden(0));
    }

    #[test]
    fn sybils_farm_low_and_defect_high() {
        let p = SybilFarmPolicy::default();
        let farm = p.worker_behavior(&WorkerCtx {
            score: 0.0,
            reward: 10_000,
            round: 1,
        });
        assert!(matches!(
            farm,
            Some(WorkerBehavior::Honest(AnswerModel::Diligent { .. }))
        ));
        let defect = p.worker_behavior(&WorkerCtx {
            score: 5.0,
            reward: 10_000,
            round: 1,
        });
        assert!(matches!(
            defect,
            Some(WorkerBehavior::Honest(AnswerModel::RandomBot))
        ));
        // High score but low reward keeps farming.
        let cheap = p.worker_behavior(&WorkerCtx {
            score: 5.0,
            reward: 10,
            round: 1,
        });
        assert!(matches!(
            cheap,
            Some(WorkerBehavior::Honest(AnswerModel::Diligent { .. }))
        ));
    }
}
