//! Dynamic task pricing: the budget `B` of each newly published HIT set
//! from observed fill rates and settlement latency over a sliding window
//! of recent blocks.
//!
//! The paper fixes `B` per task; a marketplace cannot — worker supply is
//! elastic (reservation wages, churn), so a fixed price either overpays
//! or leaves tasks unfilled. The [`PricingEngine`] is a deliberately
//! simple multiplicative controller driven at each block boundary with
//! the block's fill outcomes (commit phases that closed vs. tasks that
//! cancelled unfilled), settlement latencies, and the chain-congestion
//! verdict the econ engine derives from the block's
//! [`dragoon_chain::BlockObservation`] against the gas cap. When the
//! windowed fill rate falls below target it raises the price (unless
//! the chain is congested — unfilled tasks then signal carried-over
//! transactions, not a wage shortage); when the market clears
//! comfortably (high fill, low latency) it walks the price back down.
//! All arithmetic is a deterministic function of chain state, so prices
//! are reproducible across runs and executor thread counts.

use std::collections::VecDeque;

/// Tuning knobs of the pricing controller.
#[derive(Clone, Copy, Debug)]
pub struct PricingParams {
    /// Opening price (`0` = the scenario's default budget).
    pub initial: u128,
    /// Hard price floor.
    pub min: u128,
    /// Hard price ceiling.
    pub max: u128,
    /// Target windowed fill rate (filled / (filled + cancelled)).
    pub target_fill: f64,
    /// Relative price raise applied when fill undershoots the target.
    pub raise: f64,
    /// Relative price cut applied when the market clears at target and
    /// settlement latency stays under `latency_slack_blocks`.
    pub cut: f64,
    /// Latency (blocks, publish → settle) above which the controller
    /// stops cutting even at full fill — a congested market is not
    /// overpaying.
    pub latency_slack_blocks: f64,
    /// Sliding-window length in observed fill outcomes.
    pub window: usize,
    /// Gas utilization (block gas used / block gas limit) above which
    /// the chain counts as congested: the controller then holds the
    /// price instead of raising, because unfilled tasks under
    /// congestion signal carried-over transactions, not a wage shortage.
    pub congestion_utilization: f64,
}

impl Default for PricingParams {
    fn default() -> Self {
        Self {
            initial: 0,
            min: 600,
            max: 24_000,
            target_fill: 0.9,
            raise: 0.10,
            cut: 0.02,
            latency_slack_blocks: 30.0,
            window: 24,
            congestion_utilization: 0.85,
        }
    }
}

/// One fill outcome: a HIT either filled its commit quota or cancelled
/// unfilled.
#[derive(Clone, Copy, Debug)]
enum FillOutcome {
    Filled,
    Cancelled,
}

/// The dynamic-pricing controller.
#[derive(Clone, Debug)]
pub struct PricingEngine {
    params: PricingParams,
    price: u128,
    outcomes: VecDeque<FillOutcome>,
    latencies: VecDeque<u64>,
    price_min_seen: u128,
    price_max_seen: u128,
    filled: u64,
    cancelled: u64,
    adjustments: u64,
}

impl PricingEngine {
    /// A controller opening at `params.initial` (or `default_budget`).
    pub fn new(params: PricingParams, default_budget: u128) -> Self {
        let open = if params.initial > 0 {
            params.initial
        } else {
            default_budget
        };
        let price = open.clamp(params.min, params.max);
        Self {
            params,
            price,
            outcomes: VecDeque::new(),
            latencies: VecDeque::new(),
            price_min_seen: price,
            price_max_seen: price,
            filled: 0,
            cancelled: 0,
            adjustments: 0,
        }
    }

    /// The price the next published HIT freezes as its budget `B`.
    pub fn price(&self) -> u128 {
        self.price
    }

    /// The parameters in force.
    pub fn params(&self) -> &PricingParams {
        &self.params
    }

    /// Extremes the controller visited.
    pub fn price_range_seen(&self) -> (u128, u128) {
        (self.price_min_seen, self.price_max_seen)
    }

    /// Lifetime fill counters `(filled, cancelled)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.filled, self.cancelled)
    }

    /// Price adjustments applied.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The windowed fill rate, if any outcome has been observed.
    pub fn fill_rate(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        let filled = self
            .outcomes
            .iter()
            .filter(|o| matches!(o, FillOutcome::Filled))
            .count();
        Some(filled as f64 / self.outcomes.len() as f64)
    }

    /// The windowed mean settlement latency in blocks.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        Some(self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64)
    }

    fn push_window<T>(window: &mut VecDeque<T>, cap: usize, item: T) {
        window.push_back(item);
        while window.len() > cap {
            window.pop_front();
        }
    }

    /// Absorbs one block boundary's outcomes: `filled` commit phases
    /// closed, `cancelled` tasks expired unfilled, `latencies` are the
    /// publish→settle latencies of HITs that settled this block, and
    /// `congested` is the chain-level congestion verdict (derived from
    /// the block's [`dragoon_chain::BlockObservation`] against the gas
    /// cap). Adjusts the price when the block carried any fill signal —
    /// except upward under congestion, where unfilled tasks signal
    /// carried-over transactions rather than a wage shortage.
    pub fn observe_block(
        &mut self,
        filled: usize,
        cancelled: usize,
        latencies: &[u64],
        congested: bool,
    ) {
        for _ in 0..filled {
            Self::push_window(&mut self.outcomes, self.params.window, FillOutcome::Filled);
        }
        for _ in 0..cancelled {
            Self::push_window(
                &mut self.outcomes,
                self.params.window,
                FillOutcome::Cancelled,
            );
        }
        for &l in latencies {
            Self::push_window(&mut self.latencies, self.params.window, l);
        }
        self.filled += filled as u64;
        self.cancelled += cancelled as u64;
        if filled + cancelled == 0 {
            return; // no fresh signal, hold the price
        }
        let Some(fill) = self.fill_rate() else {
            return;
        };
        let next = if fill < self.params.target_fill {
            if congested {
                // Unfilled under a congested chain: commits may simply
                // be carried over by the gas cap — hold, don't overpay.
                self.price
            } else {
                // Undershooting: workers are declining the wage — raise B.
                (self.price as f64 * (1.0 + self.params.raise)).round() as u128
            }
        } else if self
            .mean_latency()
            .is_none_or(|l| l <= self.params.latency_slack_blocks)
        {
            // Market clears with slack: walk the price back down.
            (self.price as f64 * (1.0 - self.params.cut)).round() as u128
        } else {
            self.price
        };
        let next = next.clamp(self.params.min, self.params.max);
        if next != self.price {
            self.adjustments += 1;
            self.price = next;
            self.price_min_seen = self.price_min_seen.min(next);
            self.price_max_seen = self.price_max_seen.max(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PricingEngine {
        PricingEngine::new(
            PricingParams {
                min: 100,
                max: 10_000,
                ..PricingParams::default()
            },
            1_000,
        )
    }

    #[test]
    fn undershooting_fill_raises_the_price() {
        let mut e = engine();
        let p0 = e.price();
        e.observe_block(0, 3, &[], false);
        assert!(e.price() > p0, "cancellations must raise B");
        assert_eq!(e.fill_rate(), Some(0.0));
    }

    #[test]
    fn clearing_market_walks_the_price_down() {
        let mut e = engine();
        let p0 = e.price();
        for _ in 0..30 {
            e.observe_block(2, 0, &[4], false);
        }
        assert!(e.price() < p0, "a clearing market must cut B");
        assert!(e.price() >= 100, "floor holds");
    }

    #[test]
    fn congestion_blocks_the_cut() {
        let mut e = engine();
        let p0 = e.price();
        e.observe_block(5, 0, &[500], false);
        assert_eq!(e.price(), p0, "high latency at full fill holds price");
    }

    #[test]
    fn chain_congestion_blocks_the_raise() {
        let mut e = engine();
        let p0 = e.price();
        // Unfilled tasks under a congested chain are a carry-over
        // symptom, not a wage signal: the price holds.
        e.observe_block(0, 3, &[], true);
        assert_eq!(e.price(), p0);
        // The same signal on an uncongested chain raises.
        e.observe_block(0, 3, &[], false);
        assert!(e.price() > p0);
    }

    #[test]
    fn price_stays_clamped() {
        let mut e = engine();
        for _ in 0..200 {
            e.observe_block(0, 4, &[], false);
        }
        assert_eq!(e.price(), 10_000, "ceiling holds under pure undershoot");
        assert_eq!(e.price_range_seen().1, 10_000);
    }

    #[test]
    fn no_signal_holds_the_price() {
        let mut e = engine();
        let p0 = e.price();
        e.observe_block(0, 0, &[9], false);
        assert_eq!(e.price(), p0);
        assert_eq!(e.adjustments(), 0);
    }
}
