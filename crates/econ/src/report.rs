//! The serializable outcome of the econ layer: reputation, pricing,
//! churn and adversary-extraction aggregates, with hand-rolled JSON (the
//! compat serde is derive-only).

/// Aggregates the econ layer reports at the end of a market run. All
/// values derive deterministically from chain state, so two runs of the
/// same seeded scenario — at any executor thread count — produce
/// byte-identical [`EconReport::to_json`] strings (pinned by
/// `tests/econ.rs`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EconReport {
    /// Workers with a non-neutral reputation history.
    pub rep_tracked: usize,
    /// Settlement receipts absorbed by the book.
    pub rep_receipts: u64,
    /// Backwards-clock reputation reads (a score read at a round before
    /// the entry was last updated). Always 0 on a healthy run.
    pub rep_decay_violations: u64,
    /// Mean decayed score at the end of the run.
    pub rep_mean: f64,
    /// Minimum decayed score.
    pub rep_min: f64,
    /// Maximum decayed score.
    pub rep_max: f64,
    /// Commit attempts blocked by the reputation gate.
    pub gated_commits: u64,
    /// Commit attempts declined over the reservation wage.
    pub declined_commits: u64,
    /// The price the controller ended on (0 = pricing disabled).
    pub price_final: u128,
    /// Lowest price visited.
    pub price_min_seen: u128,
    /// Highest price visited.
    pub price_max_seen: u128,
    /// Price adjustments applied.
    pub price_adjustments: u64,
    /// Windowed fill rate at the end of the run (-1 = no signal).
    pub fill_rate_recent: f64,
    /// Lifetime filled commit phases observed by the controller.
    pub hits_filled: u64,
    /// Lifetime unfilled cancellations observed by the controller.
    pub hits_unfilled: u64,
    /// Workers that joined the pool through churn.
    pub workers_joined: usize,
    /// Workers that departed the pool through churn.
    pub workers_departed: usize,
    /// Goldens withheld by cartel requesters (kept secret off-chain).
    pub goldens_withheld: u64,
    /// Proof-backed rejections landed on cartel-owned HITs.
    pub cartel_rejections: u64,
    /// Escrow refunded to cartel requesters at settlement.
    pub cartel_refunds: u128,
    /// Escrow refunded to honest requesters at settlement.
    pub honest_refunds: u128,
    /// Coins paid to honest (non-sybil) workers.
    pub honest_paid: u128,
    /// Honest worker payments.
    pub honest_paid_count: u64,
    /// Honest worker rejections (any reason).
    pub honest_rejected: u64,
    /// Coins paid to sybil workers.
    pub sybil_paid: u128,
    /// Sybil worker payments.
    pub sybil_paid_count: u64,
    /// Sybil worker rejections (any reason).
    pub sybil_rejected: u64,
}

fn push_kv(s: &mut String, key: &str, value: &str) {
    if !s.ends_with('{') {
        s.push(',');
    }
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(value);
}

impl EconReport {
    /// Compact single-object JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(640);
        s.push('{');
        push_kv(&mut s, "rep_tracked", &self.rep_tracked.to_string());
        push_kv(&mut s, "rep_receipts", &self.rep_receipts.to_string());
        push_kv(
            &mut s,
            "rep_decay_violations",
            &self.rep_decay_violations.to_string(),
        );
        push_kv(&mut s, "rep_mean", &format!("{:.3}", self.rep_mean));
        push_kv(&mut s, "rep_min", &format!("{:.3}", self.rep_min));
        push_kv(&mut s, "rep_max", &format!("{:.3}", self.rep_max));
        push_kv(&mut s, "gated_commits", &self.gated_commits.to_string());
        push_kv(
            &mut s,
            "declined_commits",
            &self.declined_commits.to_string(),
        );
        push_kv(&mut s, "price_final", &self.price_final.to_string());
        push_kv(&mut s, "price_min_seen", &self.price_min_seen.to_string());
        push_kv(&mut s, "price_max_seen", &self.price_max_seen.to_string());
        push_kv(
            &mut s,
            "price_adjustments",
            &self.price_adjustments.to_string(),
        );
        push_kv(
            &mut s,
            "fill_rate_recent",
            &format!("{:.3}", self.fill_rate_recent),
        );
        push_kv(&mut s, "hits_filled", &self.hits_filled.to_string());
        push_kv(&mut s, "hits_unfilled", &self.hits_unfilled.to_string());
        push_kv(&mut s, "workers_joined", &self.workers_joined.to_string());
        push_kv(
            &mut s,
            "workers_departed",
            &self.workers_departed.to_string(),
        );
        push_kv(
            &mut s,
            "goldens_withheld",
            &self.goldens_withheld.to_string(),
        );
        push_kv(
            &mut s,
            "cartel_rejections",
            &self.cartel_rejections.to_string(),
        );
        push_kv(&mut s, "cartel_refunds", &self.cartel_refunds.to_string());
        push_kv(&mut s, "honest_refunds", &self.honest_refunds.to_string());
        push_kv(&mut s, "honest_paid", &self.honest_paid.to_string());
        push_kv(
            &mut s,
            "honest_paid_count",
            &self.honest_paid_count.to_string(),
        );
        push_kv(&mut s, "honest_rejected", &self.honest_rejected.to_string());
        push_kv(&mut s, "sybil_paid", &self.sybil_paid.to_string());
        push_kv(
            &mut s,
            "sybil_paid_count",
            &self.sybil_paid_count.to_string(),
        );
        push_kv(&mut s, "sybil_rejected", &self.sybil_rejected.to_string());
        s.push('}');
        s
    }

    /// A human-oriented multi-line summary for examples and logs.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rep:    {} workers tracked over {} receipts (mean {:.2}, min {:.2}, max {:.2}); \
             {} commits gated, {} declined over wage\n",
            self.rep_tracked,
            self.rep_receipts,
            self.rep_mean,
            self.rep_min,
            self.rep_max,
            self.gated_commits,
            self.declined_commits,
        ));
        if self.price_final > 0 {
            out.push_str(&format!(
                "price:  B ended at {} (saw {}..{}, {} adjustments), fill rate {:.0}% \
                 ({} filled / {} unfilled lifetime)\n",
                self.price_final,
                self.price_min_seen,
                self.price_max_seen,
                self.price_adjustments,
                self.fill_rate_recent * 100.0,
                self.hits_filled,
                self.hits_unfilled,
            ));
        }
        if self.workers_joined + self.workers_departed > 0 {
            out.push_str(&format!(
                "churn:  {} workers joined, {} departed\n",
                self.workers_joined, self.workers_departed,
            ));
        }
        out.push_str(&format!(
            "payout: honest workers {} coins over {} payments ({} rejected); \
             sybils {} coins over {} payments ({} rejected)\n",
            self.honest_paid,
            self.honest_paid_count,
            self.honest_rejected,
            self.sybil_paid,
            self.sybil_paid_count,
            self.sybil_rejected,
        ));
        if self.cartel_refunds + self.goldens_withheld as u128 + self.cartel_rejections as u128 > 0
        {
            out.push_str(&format!(
                "cartel: {} rejections landed, {} coins clawed back, {} goldens withheld \
                 (honest requesters refunded {})\n",
                self.cartel_rejections,
                self.cartel_refunds,
                self.goldens_withheld,
                self.honest_refunds,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = EconReport {
            rep_tracked: 3,
            price_final: 1200,
            fill_rate_recent: 0.875,
            ..EconReport::default()
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rep_tracked\":3"));
        assert!(json.contains("\"price_final\":1200"));
        assert!(json.contains("\"fill_rate_recent\":0.875"));
        assert!(!json.contains(",,"));
    }
}
