//! The serializable outcome of the econ layer: reputation, pricing,
//! churn and adversary-extraction aggregates, with hand-rolled JSON (the
//! compat serde is derive-only).

/// Aggregates the econ layer reports at the end of a market run. All
/// values derive deterministically from chain state, so two runs of the
/// same seeded scenario — at any executor thread count — produce
/// byte-identical [`EconReport::to_json`] strings (pinned by
/// `tests/econ.rs`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EconReport {
    /// Workers with a non-neutral reputation history.
    pub rep_tracked: usize,
    /// Settlement receipts absorbed by the book.
    pub rep_receipts: u64,
    /// Backwards-clock reputation reads (a score read at a round before
    /// the entry was last updated). Always 0 on a healthy run.
    pub rep_decay_violations: u64,
    /// Mean decayed score at the end of the run.
    pub rep_mean: f64,
    /// Minimum decayed score.
    pub rep_min: f64,
    /// Maximum decayed score.
    pub rep_max: f64,
    /// Commit attempts blocked by the reputation gate.
    pub gated_commits: u64,
    /// Commit attempts declined over the reservation wage.
    pub declined_commits: u64,
    /// The price the controller ended on (0 = pricing disabled).
    pub price_final: u128,
    /// Lowest price visited.
    pub price_min_seen: u128,
    /// Highest price visited.
    pub price_max_seen: u128,
    /// Price adjustments applied.
    pub price_adjustments: u64,
    /// Windowed fill rate at the end of the run (-1 = no signal).
    pub fill_rate_recent: f64,
    /// Lifetime filled commit phases observed by the controller.
    pub hits_filled: u64,
    /// Lifetime unfilled cancellations observed by the controller.
    pub hits_unfilled: u64,
    /// Workers that joined the pool through churn.
    pub workers_joined: usize,
    /// Workers that departed the pool through churn.
    pub workers_departed: usize,
    /// Goldens withheld by cartel requesters (kept secret off-chain).
    pub goldens_withheld: u64,
    /// Proof-backed rejections landed on cartel-owned HITs.
    pub cartel_rejections: u64,
    /// Escrow refunded to cartel requesters at settlement.
    pub cartel_refunds: u128,
    /// Escrow refunded to honest requesters at settlement.
    pub honest_refunds: u128,
    /// Coins paid to honest (non-sybil) workers.
    pub honest_paid: u128,
    /// Honest worker payments.
    pub honest_paid_count: u64,
    /// Honest worker rejections (any reason).
    pub honest_rejected: u64,
    /// Coins paid to sybil workers.
    pub sybil_paid: u128,
    /// Sybil worker payments.
    pub sybil_paid_count: u64,
    /// Sybil worker rejections (any reason).
    pub sybil_rejected: u64,
}

impl EconReport {
    /// The econ counters as one registry [`dragoon_trace::MetricSet`]
    /// (`econ_*` names); [`EconReport::to_json`] is a thin view over
    /// this set, byte-identical to the historical serialization.
    pub fn metric_set(&self) -> dragoon_trace::MetricSet {
        dragoon_trace::MetricSet::new("econ")
            .gauge(
                "rep_tracked",
                "econ_rep_tracked_workers",
                self.rep_tracked as u64,
            )
            .counter("rep_receipts", "econ_rep_receipts_total", self.rep_receipts)
            .counter(
                "rep_decay_violations",
                "econ_rep_decay_violations_total",
                self.rep_decay_violations,
            )
            .gauge_f("rep_mean", "econ_rep_mean_score", self.rep_mean, 3)
            .gauge_f("rep_min", "econ_rep_min_score", self.rep_min, 3)
            .gauge_f("rep_max", "econ_rep_max_score", self.rep_max, 3)
            .counter(
                "gated_commits",
                "econ_gated_commits_total",
                self.gated_commits,
            )
            .counter(
                "declined_commits",
                "econ_declined_commits_total",
                self.declined_commits,
            )
            .gauge(
                "price_final",
                "econ_price_final_coins",
                self.price_final as i128,
            )
            .gauge(
                "price_min_seen",
                "econ_price_min_seen_coins",
                self.price_min_seen as i128,
            )
            .gauge(
                "price_max_seen",
                "econ_price_max_seen_coins",
                self.price_max_seen as i128,
            )
            .counter(
                "price_adjustments",
                "econ_price_adjustments_total",
                self.price_adjustments,
            )
            .gauge_f(
                "fill_rate_recent",
                "econ_fill_rate_recent_ratio",
                self.fill_rate_recent,
                3,
            )
            .counter("hits_filled", "econ_hits_filled_total", self.hits_filled)
            .counter(
                "hits_unfilled",
                "econ_hits_unfilled_total",
                self.hits_unfilled,
            )
            .counter(
                "workers_joined",
                "econ_workers_joined_total",
                self.workers_joined as u64,
            )
            .counter(
                "workers_departed",
                "econ_workers_departed_total",
                self.workers_departed as u64,
            )
            .counter(
                "goldens_withheld",
                "econ_goldens_withheld_total",
                self.goldens_withheld,
            )
            .counter(
                "cartel_rejections",
                "econ_cartel_rejections_total",
                self.cartel_rejections,
            )
            .counter(
                "cartel_refunds",
                "econ_cartel_refunds_coins_total",
                self.cartel_refunds as i128,
            )
            .counter(
                "honest_refunds",
                "econ_honest_refunds_coins_total",
                self.honest_refunds as i128,
            )
            .counter(
                "honest_paid",
                "econ_honest_paid_coins_total",
                self.honest_paid as i128,
            )
            .counter(
                "honest_paid_count",
                "econ_honest_paid_total",
                self.honest_paid_count,
            )
            .counter(
                "honest_rejected",
                "econ_honest_rejected_total",
                self.honest_rejected,
            )
            .counter(
                "sybil_paid",
                "econ_sybil_paid_coins_total",
                self.sybil_paid as i128,
            )
            .counter(
                "sybil_paid_count",
                "econ_sybil_paid_total",
                self.sybil_paid_count,
            )
            .counter(
                "sybil_rejected",
                "econ_sybil_rejected_total",
                self.sybil_rejected,
            )
    }

    /// One compact JSON object — a thin view over
    /// [`EconReport::metric_set`], byte-identical to the historical
    /// hand-rolled serialization (pinned by the unit test below and the
    /// econ goldens).
    pub fn to_json(&self) -> String {
        self.metric_set().to_json_object()
    }

    /// A human-oriented multi-line summary for examples and logs.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rep:    {} workers tracked over {} receipts (mean {:.2}, min {:.2}, max {:.2}); \
             {} commits gated, {} declined over wage\n",
            self.rep_tracked,
            self.rep_receipts,
            self.rep_mean,
            self.rep_min,
            self.rep_max,
            self.gated_commits,
            self.declined_commits,
        ));
        if self.price_final > 0 {
            out.push_str(&format!(
                "price:  B ended at {} (saw {}..{}, {} adjustments), fill rate {:.0}% \
                 ({} filled / {} unfilled lifetime)\n",
                self.price_final,
                self.price_min_seen,
                self.price_max_seen,
                self.price_adjustments,
                self.fill_rate_recent * 100.0,
                self.hits_filled,
                self.hits_unfilled,
            ));
        }
        if self.workers_joined + self.workers_departed > 0 {
            out.push_str(&format!(
                "churn:  {} workers joined, {} departed\n",
                self.workers_joined, self.workers_departed,
            ));
        }
        out.push_str(&format!(
            "payout: honest workers {} coins over {} payments ({} rejected); \
             sybils {} coins over {} payments ({} rejected)\n",
            self.honest_paid,
            self.honest_paid_count,
            self.honest_rejected,
            self.sybil_paid,
            self.sybil_paid_count,
            self.sybil_rejected,
        ));
        if self.cartel_refunds + self.goldens_withheld as u128 + self.cartel_rejections as u128 > 0
        {
            out.push_str(&format!(
                "cartel: {} rejections landed, {} coins clawed back, {} goldens withheld \
                 (honest requesters refunded {})\n",
                self.cartel_rejections,
                self.cartel_refunds,
                self.goldens_withheld,
                self.honest_refunds,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = EconReport {
            rep_tracked: 3,
            price_final: 1200,
            fill_rate_recent: 0.875,
            ..EconReport::default()
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rep_tracked\":3"));
        assert!(json.contains("\"price_final\":1200"));
        assert!(json.contains("\"fill_rate_recent\":0.875"));
        assert!(!json.contains(",,"));
    }
}
