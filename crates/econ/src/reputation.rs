//! Cross-HIT worker reputation: a decaying per-worker score fed by
//! settlement receipts.
//!
//! Nothing in the contract layer persists across HIT instances — each
//! `C_hit` settles and closes. The [`ReputationBook`] is the first piece
//! of cross-instance state: every settlement receipt a HIT emits
//! ([`dragoon_contract::SettlementReceipt`]) moves its worker's score
//! (paid up, rejected or defaulted down), scores decay multiplicatively
//! per block toward neutral, and the marketplace engine consults the
//! book to *gate* commit eligibility and to *order* worker selection —
//! high-reputation workers get first claim on fresh commit slots.
//!
//! Scores are plain `f64`s updated by a deterministic sequence of
//! operations derived from chain state, so two runs of the same seeded
//! market — at any executor thread count — produce bit-identical books.

use dragoon_contract::{RejectReason, Settlement, SettlementReceipt};
use dragoon_ledger::Address;
use std::collections::BTreeMap;

/// Tuning knobs of the reputation dynamics.
#[derive(Clone, Copy, Debug)]
pub struct ReputationParams {
    /// Per-block multiplicative decay toward the neutral score 0
    /// (`0.995` ≈ a half-life of ~140 blocks).
    pub decay: f64,
    /// Score delta for a paid settlement.
    pub paid_delta: f64,
    /// Score delta for a proof-backed rejection (low quality or out of
    /// range) — the strongest negative signal.
    pub rejected_delta: f64,
    /// Score delta for a commit-without-reveal default.
    pub no_reveal_delta: f64,
    /// Workers whose decayed score sits below this floor are barred from
    /// committing to new HITs (when gating is enabled).
    pub commit_floor: f64,
    /// Whether the engine orders commit-slot candidates by score
    /// (highest first) instead of the default rotation.
    pub order_by_score: bool,
    /// Whether the engine enforces `commit_floor`.
    pub gate_commits: bool,
}

impl Default for ReputationParams {
    fn default() -> Self {
        Self {
            decay: 0.995,
            paid_delta: 1.0,
            rejected_delta: -2.5,
            no_reveal_delta: -1.5,
            commit_floor: -3.0,
            order_by_score: true,
            gate_commits: true,
        }
    }
}

/// One worker's reputation entry.
#[derive(Clone, Copy, Debug)]
struct RepEntry {
    /// Score at `as_of` (decay is applied lazily on read).
    score: f64,
    /// The round the score was last brought current.
    as_of: u64,
}

/// The cross-HIT reputation book.
#[derive(Clone, Debug)]
pub struct ReputationBook {
    params: ReputationParams,
    scores: BTreeMap<Address, RepEntry>,
    /// Receipts absorbed (for reporting).
    observed: u64,
    /// Reads at a round earlier than the entry's `as_of` — the round
    /// clock is monotone, so this can never happen on a healthy run.
    /// Debug builds assert it; release builds count it here (a `Cell`
    /// because scoring is a read path) instead of silently treating the
    /// backwards read as `dt = 0`. Always 0.
    decay_violations: std::cell::Cell<u64>,
}

impl ReputationBook {
    /// An empty book.
    pub fn new(params: ReputationParams) -> Self {
        Self {
            params,
            scores: BTreeMap::new(),
            observed: 0,
            decay_violations: std::cell::Cell::new(0),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &ReputationParams {
        &self.params
    }

    /// Brings `entry` current to `round` under lazy decay.
    fn decayed(&self, entry: &RepEntry, round: u64) -> f64 {
        debug_assert!(
            round >= entry.as_of,
            "reputation read at round {round} before the entry's as_of {}",
            entry.as_of
        );
        let dt = match round.checked_sub(entry.as_of) {
            Some(dt) => dt,
            None => {
                self.decay_violations.set(self.decay_violations.get() + 1);
                dragoon_trace::counter_inc("econ_rep_decay_violations_total");
                0
            }
        };
        entry.score * self.params.decay.powi(dt.min(i32::MAX as u64) as i32)
    }

    /// Backwards-clock reads observed so far (see `decay_violations`).
    pub fn decay_violations(&self) -> u64 {
        self.decay_violations.get()
    }

    /// The decayed score of `worker` at `round` (0 for unknown workers —
    /// newcomers start neutral).
    pub fn score(&self, worker: &Address, round: u64) -> f64 {
        self.scores
            .get(worker)
            .map_or(0.0, |e| self.decayed(e, round))
    }

    /// Whether `worker` may commit to a new HIT at `round` (always true
    /// when gating is disabled).
    pub fn eligible(&self, worker: &Address, round: u64) -> bool {
        !self.params.gate_commits || self.score(worker, round) >= self.params.commit_floor
    }

    /// Absorbs one settlement receipt at `round`.
    pub fn observe(&mut self, receipt: &SettlementReceipt, round: u64) {
        let delta = match &receipt.outcome {
            Settlement::Paid => self.params.paid_delta,
            Settlement::Rejected(RejectReason::NoReveal) => self.params.no_reveal_delta,
            Settlement::Rejected(_) => self.params.rejected_delta,
        };
        let current = self.score(&receipt.worker, round);
        self.scores.insert(
            receipt.worker,
            RepEntry {
                score: current + delta,
                as_of: round,
            },
        );
        self.observed += 1;
    }

    /// Sorts worker indices by decayed score, highest first; ties break
    /// on the index so the order is total and deterministic. Scores are
    /// computed once per candidate (not per comparison) — at churn-scale
    /// pools this runs every block over the whole roster.
    pub fn rank(&self, candidates: &mut [(usize, Address)], round: u64) {
        let mut scored: Vec<(f64, usize, Address)> = candidates
            .iter()
            .map(|&(i, a)| (self.score(&a, round), i, a))
            .collect();
        scored.sort_by(|(sa, ia, _), (sb, ib, _)| sb.total_cmp(sa).then(ia.cmp(ib)));
        for (slot, (_, i, a)) in candidates.iter_mut().zip(scored) {
            *slot = (i, a);
        }
    }

    /// Number of workers with a non-neutral history.
    pub fn tracked(&self) -> usize {
        self.scores.len()
    }

    /// Receipts absorbed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// `(mean, min, max)` of the decayed scores at `round` (zeros when
    /// the book is empty).
    pub fn stats(&self, round: u64) -> (f64, f64, f64) {
        if self.scores.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for entry in self.scores.values() {
            let s = self.decayed(entry, round);
            sum += s;
            min = min.min(s);
            max = max.max(s);
        }
        (sum / self.scores.len() as f64, min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receipt(worker: Address, outcome: Settlement) -> SettlementReceipt {
        SettlementReceipt {
            worker,
            outcome,
            amount: 0,
        }
    }

    #[test]
    fn scores_accumulate_and_decay() {
        let mut book = ReputationBook::new(ReputationParams::default());
        let w = Address::from_byte(1);
        book.observe(&receipt(w, Settlement::Paid), 10);
        assert_eq!(book.score(&w, 10), 1.0);
        book.observe(&receipt(w, Settlement::Paid), 10);
        assert_eq!(book.score(&w, 10), 2.0);
        // Decay pulls toward neutral without crossing it.
        let later = book.score(&w, 300);
        assert!(later > 0.0 && later < 2.0);
    }

    #[test]
    fn rejections_gate_commits() {
        let mut book = ReputationBook::new(ReputationParams::default());
        let w = Address::from_byte(2);
        assert!(book.eligible(&w, 0), "newcomers start eligible");
        for _ in 0..2 {
            book.observe(
                &receipt(w, Settlement::Rejected(RejectReason::LowQuality { chi: 0 })),
                5,
            );
        }
        assert!(book.score(&w, 5) <= -3.0);
        assert!(!book.eligible(&w, 5));
        // Decay eventually rehabilitates.
        assert!(book.eligible(&w, 5 + 2_000));
    }

    #[test]
    fn ranking_is_total_and_deterministic() {
        let mut book = ReputationBook::new(ReputationParams::default());
        let a = Address::from_byte(1);
        let b = Address::from_byte(2);
        book.observe(&receipt(b, Settlement::Paid), 1);
        let mut order = vec![(0, a), (1, b)];
        book.rank(&mut order, 1);
        assert_eq!(order[0].1, b, "higher score ranks first");
        // Equal scores tie-break on index.
        let c = Address::from_byte(3);
        let mut order = vec![(1, c), (0, a)];
        book.rank(&mut order, 1);
        assert_eq!(order[0].0, 0);
    }
}
