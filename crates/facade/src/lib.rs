//! # dragoon
//!
//! Workspace facade crate: re-exports every layer of the Dragoon
//! reproduction so integration tests and examples can depend on a single
//! package. The layers, bottom to top:
//!
//! * [`dragoon_crypto`] — BN-254 fields/groups, Keccak, ElGamal, VPKE.
//! * [`dragoon_core`] — the HIT task model, quality function, PoQoEA.
//! * [`dragoon_ledger`] — the cryptocurrency ledger functionality `L`.
//! * [`dragoon_chain`] — the simulated round-based chain with gas
//!   metering, mempool scheduling and block gas limits.
//! * [`dragoon_contract`] — the HIT contract `C_hit` and the
//!   multi-instance [`dragoon_contract::HitRegistry`].
//! * [`dragoon_protocol`] — the Π_hit clients, driver and ideal
//!   functionality.
//! * [`dragoon_zkp`] — the generic Groth16 zk-SNARK baseline.
//! * [`dragoon_econ`] — the market-economics subsystem: cross-HIT
//!   reputation, dynamic pricing, churn and adversary policies.
//! * [`dragoon_sim`] — the concurrent multi-HIT marketplace engine.
//! * [`dragoon_net`] — the deterministic multi-node network simulation:
//!   gossip, link faults, partitions, forks and reorg-capable replicas.
//! * [`dragoon_trace`] — unified observability: deterministic span/event
//!   stream, metrics registry with Prometheus export, wall-clock phase
//!   profiler with Chrome `trace_event` export.

pub use dragoon_chain as chain;
pub use dragoon_contract as contract;
pub use dragoon_core as core;
pub use dragoon_crypto as crypto;
pub use dragoon_econ as econ;
pub use dragoon_ledger as ledger;
pub use dragoon_net as net;
pub use dragoon_protocol as protocol;
pub use dragoon_sim as sim;
pub use dragoon_trace as trace;
pub use dragoon_zkp as zkp;
