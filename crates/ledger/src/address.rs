//! Ethereum-style 20-byte account addresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 20-byte account identifier, as in Ethereum.
///
/// Parties (the requester, workers) and contract instances are all
/// addressed uniformly. The paper assumes an implicit registration
/// authority granting identities (§IV footnote); here identities simply
/// exist as addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address.
    pub const ZERO: Address = Address([0u8; 20]);

    /// A test helper: an address whose last byte is `b` and rest zero.
    pub fn from_byte(b: u8) -> Self {
        let mut a = [0u8; 20];
        a[19] = b;
        Address(a)
    }

    /// Derives an address from arbitrary seed bytes (keccak-style
    /// truncation is performed by the caller when cryptographic derivation
    /// matters; this helper just spreads the seed).
    pub fn from_seed(seed: u64) -> Self {
        let mut a = [0u8; 20];
        a[12..].copy_from_slice(&seed.to_be_bytes());
        Address(a)
    }

    /// Derives a fresh contract address from a deployer and nonce
    /// (simplified CREATE semantics).
    pub fn contract_address(deployer: &Address, nonce: u64) -> Self {
        let digest = dragoon_crypto_keccak(&[&deployer.0[..], &nonce.to_be_bytes()[..]]);
        let mut a = [0u8; 20];
        a.copy_from_slice(&digest[12..]);
        Address(a)
    }
}

// A tiny local keccak shim to avoid a circular dependency: the ledger
// crate must stay independent of dragoon-crypto, so contract-address
// derivation uses a simple FNV-style mix instead of real keccak. The
// derivation only needs uniqueness within a simulation, not cryptographic
// strength.
fn dragoon_crypto_keccak(parts: &[&[u8]]) -> [u8; 32] {
    let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
    let mut h2: u128 = 0x51b28bed3f5e2fca5a2bdcbcd38a7d5b;
    for part in parts {
        for &b in *part {
            h ^= b as u128;
            h = h.wrapping_mul(0x0000000001000000000000000000013b);
            h2 = h2.rotate_left(9) ^ h;
        }
    }
    let mut out = [0u8; 32];
    out[..16].copy_from_slice(&h.to_be_bytes());
    out[16..].copy_from_slice(&h2.to_be_bytes());
    out
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviated form: 0x1234..ab.
        write!(
            f,
            "0x{:02x}{:02x}..{:02x}",
            self.0[0], self.0[1], self.0[19]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_from_byte() {
        assert_eq!(Address::ZERO.0, [0u8; 20]);
        let a = Address::from_byte(7);
        assert_eq!(a.0[19], 7);
        assert_ne!(a, Address::ZERO);
    }

    #[test]
    fn from_seed_unique() {
        assert_ne!(Address::from_seed(1), Address::from_seed(2));
        assert_eq!(Address::from_seed(42), Address::from_seed(42));
    }

    #[test]
    fn contract_addresses_unique_per_nonce() {
        let d = Address::from_byte(1);
        let c0 = Address::contract_address(&d, 0);
        let c1 = Address::contract_address(&d, 1);
        assert_ne!(c0, c1);
        let d2 = Address::from_byte(2);
        assert_ne!(Address::contract_address(&d2, 0), c0);
    }

    #[test]
    fn display_formats() {
        let a = Address::from_byte(0xab);
        let s = format!("{a}");
        assert!(s.starts_with("0x"));
        assert!(s.ends_with("ab"));
        assert_eq!(s.len(), 42);
    }
}
