//! The transactional state journal: undo-log revert atomicity without
//! whole-state clones.
//!
//! The chain originally provided revert-on-error atomicity by cloning the
//! full contract + ledger before every transaction. With a registry
//! hosting thousands of HIT instances that clone became the dominant
//! simulation cost — every transaction paid for all the state it *didn't*
//! touch. The journal inverts the cost model: state components record an
//! undo entry for each mutation a transaction performs, and a revert
//! replays those entries in LIFO order. Only state actually touched by a
//! transaction pays any cost; a transaction that fails a guard check
//! before mutating anything reverts for free.
//!
//! Two pieces:
//!
//! * [`StateJournal<U>`] — the reusable undo log. Each journaled
//!   component picks its own undo-record type `U` (a prior balance, a
//!   boxed instance snapshot, a created-id marker, …) and appends
//!   records as it mutates. Recording is **off** outside a transaction,
//!   so non-transactional mutations (genesis minting, clock ticks) cost
//!   nothing and leak nothing.
//! * [`Journaled`] — the transaction boundary every chain-hosted state
//!   component implements. The chain brackets each transaction with
//!   [`Journaled::begin_tx`] and exactly one of [`Journaled::commit_tx`]
//!   / [`Journaled::rollback_tx`]; the gas-capped block path uses the
//!   same bracket to roll a *successful* transaction back out of an
//!   overfull block.
//! * [`TouchSet<K>`] — the touched-entry record the optimistic parallel
//!   block executor builds its conflict detection on: while the undo log
//!   captures writes, the touch set additionally captures *reads*, and
//!   keeps the two apart ([`TouchRecord`]) so the executor can let
//!   read-only sharing commute while any write-involved overlap forces a
//!   re-execution of the groups involved.

use std::cell::RefCell;
use std::collections::BTreeSet;

/// A state component that can bracket mutations into revertible
/// transactions.
///
/// Contract: calls come in strict `begin_tx` → (`commit_tx` |
/// `rollback_tx`) pairs; nesting is not supported (the chain's
/// internal-call mechanism shares the *outer* transaction's journal, as
/// EVM sub-calls share the outer transaction's revert scope).
pub trait Journaled {
    /// Starts recording undo information for subsequent mutations.
    fn begin_tx(&mut self);
    /// Ends the transaction keeping its mutations; discards the undo log.
    fn commit_tx(&mut self);
    /// Ends the transaction reverting every mutation recorded since
    /// [`Journaled::begin_tx`], in LIFO order.
    fn rollback_tx(&mut self);
}

/// The keys one execution group observed, with reads and writes kept
/// apart. Produced by [`TouchSet::take`]; consumed by the parallel block
/// executor's conflict validation: two groups whose records overlap only
/// in reads commute, while an overlap that involves a write on either
/// side makes the optimistic result order-sensitive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TouchRecord<K: Ord> {
    /// Keys observed without being written.
    pub reads: BTreeSet<K>,
    /// Keys written (a read-modify-write counts as a write).
    pub writes: BTreeSet<K>,
    /// Keys *debited*: mutated only by commutative bounded subtractions
    /// (escrow freezes). Two groups debiting the same key commute — their
    /// deltas sum at merge, subject to the executor's overdraft check —
    /// while a debit against a read or write on the other side is still
    /// order-sensitive.
    pub debits: BTreeSet<K>,
}

impl<K: Ord> Default for TouchRecord<K> {
    fn default() -> Self {
        Self {
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
            debits: BTreeSet::new(),
        }
    }
}

impl<K: Ord + Copy> TouchRecord<K> {
    /// Every key touched — read, written or debited.
    pub fn all(&self) -> impl Iterator<Item = K> + '_ {
        self.reads
            .union(&self.writes)
            .chain(self.debits.difference(&self.writes))
            .copied()
    }

    /// Whether `key` was touched at all.
    pub fn contains(&self, key: &K) -> bool {
        self.reads.contains(key) || self.writes.contains(key) || self.debits.contains(key)
    }

    /// Whether this record and `other` have an order-sensitive overlap:
    /// a key written by one side and touched (read, written or debited)
    /// by the other, or a key debited by one side and read by the other.
    /// Read-read overlaps commute and do not count; **debit-debit
    /// overlaps commute too** — the deltas sum — provided the executor's
    /// overdraft check holds, which it verifies separately.
    pub fn conflicts_with(&self, other: &Self) -> bool {
        !self.writes.is_disjoint(&other.writes)
            || !self.writes.is_disjoint(&other.reads)
            || !self.writes.is_disjoint(&other.debits)
            || !self.reads.is_disjoint(&other.writes)
            || !self.reads.is_disjoint(&other.debits)
            || !self.debits.is_disjoint(&other.writes)
            || !self.debits.is_disjoint(&other.reads)
    }

    /// Whether nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && self.debits.is_empty()
    }
}

/// A set of state keys touched — read **or** written — while tracking is
/// enabled. The undo log alone is not enough for optimistic concurrency:
/// it records writes (it exists to revert them), but two transactions
/// also conflict when one *reads* an entry the other writes, because the
/// read value feeds guard checks, revert messages and payout amounts.
/// `TouchSet` closes that gap: journaled components record every key a
/// transaction observes — reads and writes separately — and the parallel
/// block executor compares the per-group [`TouchRecord`]s against the
/// declared access sets and against each other to decide whether
/// optimistic results may commit, must be selectively re-executed, or
/// must fall back to serial order.
///
/// Reads come through `&self` accessors, so the sets live behind
/// [`RefCell`]s; tracking is off by default and costs one branch when
/// disabled, exactly like [`StateJournal::record`].
#[derive(Clone, Debug)]
pub struct TouchSet<K: Ord> {
    enabled: bool,
    reads: RefCell<BTreeSet<K>>,
    writes: RefCell<BTreeSet<K>>,
    debits: RefCell<BTreeSet<K>>,
}

impl<K: Ord> Default for TouchSet<K> {
    fn default() -> Self {
        Self {
            enabled: false,
            reads: RefCell::new(BTreeSet::new()),
            writes: RefCell::new(BTreeSet::new()),
            debits: RefCell::new(BTreeSet::new()),
        }
    }
}

impl<K: Ord + Copy> TouchSet<K> {
    /// A disabled touch set (recording is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// An enabled touch set, recording from the first access.
    pub fn tracking() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Whether accesses are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one observed key (no-op when disabled). Takes `&self` so
    /// read-only accessors can report their reads.
    pub fn record_read(&self, key: K) {
        if self.enabled {
            self.reads.borrow_mut().insert(key);
        }
    }

    /// Records one written key (no-op when disabled).
    pub fn record_write(&self, key: K) {
        if self.enabled {
            self.writes.borrow_mut().insert(key);
        }
    }

    /// Records one commutatively *debited* key (no-op when disabled).
    pub fn record_debit(&self, key: K) {
        if self.enabled {
            self.debits.borrow_mut().insert(key);
        }
    }

    /// Drains and returns the touch record accumulated since tracking
    /// began (or the last take). Keys both read and written report only
    /// as writes — the stronger access subsumes the weaker. A key both
    /// debited and written reports as a write (the write breaks
    /// commutativity); a key both read and debited keeps both classes
    /// (each makes its own cross-group overlaps order-sensitive).
    pub fn take(&mut self) -> TouchRecord<K> {
        let writes = std::mem::take(&mut *self.writes.borrow_mut());
        let mut reads = std::mem::take(&mut *self.reads.borrow_mut());
        let mut debits = std::mem::take(&mut *self.debits.borrow_mut());
        reads.retain(|k| !writes.contains(k));
        debits.retain(|k| !writes.contains(k));
        TouchRecord {
            reads,
            writes,
            debits,
        }
    }
}

/// A reusable undo log with an explicit recording window.
///
/// While recording, [`StateJournal::record`] appends undo entries; while
/// idle it is a no-op (one branch), so journaled components can call it
/// unconditionally from every mutation site.
#[derive(Clone, Debug, PartialEq)]
pub struct StateJournal<U> {
    recording: bool,
    undo: Vec<U>,
}

impl<U> Default for StateJournal<U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U> StateJournal<U> {
    /// An idle journal.
    pub fn new() -> Self {
        Self {
            recording: false,
            undo: Vec::new(),
        }
    }

    /// Opens the recording window.
    pub fn begin(&mut self) {
        debug_assert!(!self.recording, "journal transaction already open");
        debug_assert!(self.undo.is_empty(), "stale undo records");
        self.recording = true;
    }

    /// Whether a transaction is currently recording.
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// Whether no undo entry has been recorded yet this transaction.
    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    /// Appends an undo entry if recording (no-op otherwise).
    pub fn record(&mut self, undo: U) {
        if self.recording {
            self.undo.push(undo);
        }
    }

    /// Appends a lazily computed undo entry if recording. Use when
    /// capturing the prior value is not free (e.g. a map lookup).
    pub fn record_with(&mut self, undo: impl FnOnce() -> U) {
        if self.recording {
            self.undo.push(undo());
        }
    }

    /// Closes the window keeping the mutations; the undo log is dropped.
    pub fn commit(&mut self) {
        self.recording = false;
        self.undo.clear();
    }

    /// Closes the window keeping the mutations and returns the undo log
    /// in recording (FIFO) order — for components that must propagate
    /// the commit to sub-journals named by their records.
    pub fn drain_commit(&mut self) -> Vec<U> {
        self.recording = false;
        std::mem::take(&mut self.undo)
    }

    /// Closes the window and returns the undo log in LIFO (replay)
    /// order. The caller applies each entry to restore pre-transaction
    /// state.
    pub fn drain_rollback(&mut self) -> Vec<U> {
        self.recording = false;
        let mut undo = std::mem::take(&mut self.undo);
        undo.reverse();
        undo
    }

    /// Resets to idle, discarding any state (used after a snapshot
    /// restore re-imported a cloned journal).
    pub fn reset(&mut self) {
        self.recording = false;
        self.undo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_journal_records_nothing() {
        let mut j: StateJournal<u32> = StateJournal::new();
        j.record(1);
        j.record_with(|| 2);
        assert!(j.is_empty());
        assert!(!j.recording());
    }

    #[test]
    fn drain_rollback_is_lifo() {
        let mut j = StateJournal::new();
        j.begin();
        j.record(1);
        j.record(2);
        j.record(3);
        assert_eq!(j.drain_rollback(), vec![3, 2, 1]);
        assert!(!j.recording());
        assert!(j.is_empty());
    }

    #[test]
    fn disabled_touch_set_records_nothing() {
        let mut t: TouchSet<u32> = TouchSet::new();
        t.record_read(1);
        t.record_write(2);
        assert!(t.take().is_empty());
        let mut t = TouchSet::tracking();
        t.record_read(2);
        t.record_read(1);
        t.record_write(2);
        let rec = t.take();
        assert_eq!(rec.reads.into_iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(rec.writes.into_iter().collect::<Vec<_>>(), vec![2]);
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn touch_records_conflict_on_any_write_overlap() {
        let rec = |reads: &[u32], writes: &[u32]| TouchRecord {
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
            debits: BTreeSet::new(),
        };
        // Read-read sharing commutes.
        assert!(!rec(&[1, 2], &[]).conflicts_with(&rec(&[2, 3], &[])));
        // Write-write and read-write do not.
        assert!(rec(&[], &[1]).conflicts_with(&rec(&[], &[1])));
        assert!(rec(&[1], &[]).conflicts_with(&rec(&[], &[1])));
        assert!(rec(&[], &[1]).conflicts_with(&rec(&[1], &[])));
        // Disjoint sets never conflict.
        assert!(!rec(&[1], &[2]).conflicts_with(&rec(&[3], &[4])));
        assert!(rec(&[1], &[2]).contains(&1) && rec(&[1], &[2]).contains(&2));
    }

    #[test]
    fn debit_overlaps_commute_but_mixed_ones_do_not() {
        let rec = |reads: &[u32], writes: &[u32], debits: &[u32]| TouchRecord {
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
            debits: debits.iter().copied().collect(),
        };
        // Debit-debit overlap commutes (deltas sum at merge).
        assert!(!rec(&[], &[], &[1]).conflicts_with(&rec(&[], &[], &[1])));
        // Debit against a read or write on the other side is a conflict.
        assert!(rec(&[], &[], &[1]).conflicts_with(&rec(&[1], &[], &[])));
        assert!(rec(&[], &[], &[1]).conflicts_with(&rec(&[], &[1], &[])));
        assert!(rec(&[1], &[], &[]).conflicts_with(&rec(&[], &[], &[1])));
        assert!(rec(&[], &[1], &[]).conflicts_with(&rec(&[], &[], &[1])));
        // Debited keys show up in all() and contains().
        let r = rec(&[], &[], &[5]);
        assert!(r.contains(&5));
        assert_eq!(r.all().collect::<Vec<_>>(), vec![5]);
        assert!(!r.is_empty());
    }

    #[test]
    fn take_subsumes_debits_under_writes_but_keeps_read_debit_pairs() {
        let t: TouchSet<u32> = TouchSet::tracking();
        t.record_debit(1);
        t.record_write(1); // write breaks commutativity: reports as write
        t.record_debit(2);
        t.record_read(2); // read + debit both survive
        let mut t = t;
        let rec = t.take();
        assert_eq!(rec.writes.iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(rec.debits.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert_eq!(rec.reads.iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn commit_discards_undo() {
        let mut j = StateJournal::new();
        j.begin();
        j.record(7);
        j.commit();
        assert!(j.is_empty());
        assert!(!j.recording());
        // The journal is reusable after commit.
        j.begin();
        j.record(9);
        assert_eq!(j.drain_rollback(), vec![9]);
    }
}
