//! The transactional state journal: undo-log revert atomicity without
//! whole-state clones.
//!
//! The chain originally provided revert-on-error atomicity by cloning the
//! full contract + ledger before every transaction. With a registry
//! hosting thousands of HIT instances that clone became the dominant
//! simulation cost — every transaction paid for all the state it *didn't*
//! touch. The journal inverts the cost model: state components record an
//! undo entry for each mutation a transaction performs, and a revert
//! replays those entries in LIFO order. Only state actually touched by a
//! transaction pays any cost; a transaction that fails a guard check
//! before mutating anything reverts for free.
//!
//! Two pieces:
//!
//! * [`StateJournal<U>`] — the reusable undo log. Each journaled
//!   component picks its own undo-record type `U` (a prior balance, a
//!   boxed instance snapshot, a created-id marker, …) and appends
//!   records as it mutates. Recording is **off** outside a transaction,
//!   so non-transactional mutations (genesis minting, clock ticks) cost
//!   nothing and leak nothing.
//! * [`Journaled`] — the transaction boundary every chain-hosted state
//!   component implements. The chain brackets each transaction with
//!   [`Journaled::begin_tx`] and exactly one of [`Journaled::commit_tx`]
//!   / [`Journaled::rollback_tx`]; the gas-capped block path uses the
//!   same bracket to roll a *successful* transaction back out of an
//!   overfull block.
//! * [`TouchSet<K>`] — the touched-entry record the optimistic parallel
//!   block executor builds its conflict detection on: while the undo log
//!   captures writes, the touch set additionally captures *reads*, so
//!   two transaction groups conflict exactly when their touch sets
//!   intersect.

use std::cell::RefCell;
use std::collections::BTreeSet;

/// A state component that can bracket mutations into revertible
/// transactions.
///
/// Contract: calls come in strict `begin_tx` → (`commit_tx` |
/// `rollback_tx`) pairs; nesting is not supported (the chain's
/// internal-call mechanism shares the *outer* transaction's journal, as
/// EVM sub-calls share the outer transaction's revert scope).
pub trait Journaled {
    /// Starts recording undo information for subsequent mutations.
    fn begin_tx(&mut self);
    /// Ends the transaction keeping its mutations; discards the undo log.
    fn commit_tx(&mut self);
    /// Ends the transaction reverting every mutation recorded since
    /// [`Journaled::begin_tx`], in LIFO order.
    fn rollback_tx(&mut self);
}

/// A set of state keys touched — read **or** written — while tracking is
/// enabled. The undo log alone is not enough for optimistic concurrency:
/// it records writes (it exists to revert them), but two transactions
/// also conflict when one *reads* an entry the other writes, because the
/// read value feeds guard checks, revert messages and payout amounts.
/// `TouchSet` closes that gap: journaled components record every key a
/// transaction observes, and the parallel block executor intersects the
/// per-group sets to decide whether optimistic results may commit.
///
/// Reads come through `&self` accessors, so the set lives behind a
/// [`RefCell`]; tracking is off by default and costs one branch when
/// disabled, exactly like [`StateJournal::record`].
#[derive(Clone, Debug)]
pub struct TouchSet<K: Ord> {
    enabled: bool,
    keys: RefCell<BTreeSet<K>>,
}

impl<K: Ord> Default for TouchSet<K> {
    fn default() -> Self {
        Self {
            enabled: false,
            keys: RefCell::new(BTreeSet::new()),
        }
    }
}

impl<K: Ord + Copy> TouchSet<K> {
    /// A disabled touch set (recording is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// An enabled touch set, recording from the first access.
    pub fn tracking() -> Self {
        Self {
            enabled: true,
            keys: RefCell::new(BTreeSet::new()),
        }
    }

    /// Whether accesses are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one touched key (no-op when disabled). Takes `&self` so
    /// read-only accessors can report their reads.
    pub fn record(&self, key: K) {
        if self.enabled {
            self.keys.borrow_mut().insert(key);
        }
    }

    /// Drains and returns every key touched since tracking began (or the
    /// last take).
    pub fn take(&mut self) -> BTreeSet<K> {
        std::mem::take(&mut self.keys.borrow_mut())
    }
}

/// A reusable undo log with an explicit recording window.
///
/// While recording, [`StateJournal::record`] appends undo entries; while
/// idle it is a no-op (one branch), so journaled components can call it
/// unconditionally from every mutation site.
#[derive(Clone, Debug, PartialEq)]
pub struct StateJournal<U> {
    recording: bool,
    undo: Vec<U>,
}

impl<U> Default for StateJournal<U> {
    fn default() -> Self {
        Self::new()
    }
}

impl<U> StateJournal<U> {
    /// An idle journal.
    pub fn new() -> Self {
        Self {
            recording: false,
            undo: Vec::new(),
        }
    }

    /// Opens the recording window.
    pub fn begin(&mut self) {
        debug_assert!(!self.recording, "journal transaction already open");
        debug_assert!(self.undo.is_empty(), "stale undo records");
        self.recording = true;
    }

    /// Whether a transaction is currently recording.
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// Whether no undo entry has been recorded yet this transaction.
    pub fn is_empty(&self) -> bool {
        self.undo.is_empty()
    }

    /// Appends an undo entry if recording (no-op otherwise).
    pub fn record(&mut self, undo: U) {
        if self.recording {
            self.undo.push(undo);
        }
    }

    /// Appends a lazily computed undo entry if recording. Use when
    /// capturing the prior value is not free (e.g. a map lookup).
    pub fn record_with(&mut self, undo: impl FnOnce() -> U) {
        if self.recording {
            self.undo.push(undo());
        }
    }

    /// Closes the window keeping the mutations; the undo log is dropped.
    pub fn commit(&mut self) {
        self.recording = false;
        self.undo.clear();
    }

    /// Closes the window keeping the mutations and returns the undo log
    /// in recording (FIFO) order — for components that must propagate
    /// the commit to sub-journals named by their records.
    pub fn drain_commit(&mut self) -> Vec<U> {
        self.recording = false;
        std::mem::take(&mut self.undo)
    }

    /// Closes the window and returns the undo log in LIFO (replay)
    /// order. The caller applies each entry to restore pre-transaction
    /// state.
    pub fn drain_rollback(&mut self) -> Vec<U> {
        self.recording = false;
        let mut undo = std::mem::take(&mut self.undo);
        undo.reverse();
        undo
    }

    /// Resets to idle, discarding any state (used after a snapshot
    /// restore re-imported a cloned journal).
    pub fn reset(&mut self) {
        self.recording = false;
        self.undo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_journal_records_nothing() {
        let mut j: StateJournal<u32> = StateJournal::new();
        j.record(1);
        j.record_with(|| 2);
        assert!(j.is_empty());
        assert!(!j.recording());
    }

    #[test]
    fn drain_rollback_is_lifo() {
        let mut j = StateJournal::new();
        j.begin();
        j.record(1);
        j.record(2);
        j.record(3);
        assert_eq!(j.drain_rollback(), vec![3, 2, 1]);
        assert!(!j.recording());
        assert!(j.is_empty());
    }

    #[test]
    fn disabled_touch_set_records_nothing() {
        let mut t: TouchSet<u32> = TouchSet::new();
        t.record(1);
        assert!(t.take().is_empty());
        let mut t = TouchSet::tracking();
        t.record(2);
        t.record(1);
        t.record(2);
        assert_eq!(t.take().into_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn commit_discards_undo() {
        let mut j = StateJournal::new();
        j.begin();
        j.record(7);
        j.commit();
        assert!(j.is_empty());
        assert!(!j.recording());
        // The journal is reusable after commit.
        j.begin();
        j.record(9);
        assert_eq!(j.drain_rollback(), vec![9]);
    }
}
