//! # dragoon-ledger
//!
//! The cryptocurrency ledger functionality `L` of §III: a transparent
//! global bookkeeping ledger that smart-contract functionalities call as a
//! subroutine for conditional payments.
//!
//! `L` stores a balance for every party and handles exactly the two
//! oracle queries the paper specifies:
//!
//! * **FreezeCoins** — `(freeze, P_i, b)` from a contract `F`: if
//!   `b_i ≥ b`, move `b` from `P_i` into `F`'s escrow and announce
//!   `(frozen, F, P_i, b)` to every entity; otherwise reply
//!   `(nofund, P_i, b)`.
//! * **PayCoins** — `(pay, P_i, b)` from a contract `F`: if `b_F ≥ b`,
//!   move `b` from the escrow to `P_i` and announce `(paid, F, P_i, b)`.
//!
//! Balances are denominated in an abstract integer unit ("wei" in the
//! Ethereum instantiation). All transitions are recorded as
//! [`LedgerEvent`]s — the transparency the paper's blockchain model
//! assumes.

use std::collections::HashMap;
use std::fmt;

pub mod address;
pub use address::Address;

/// An amount of coins (abstract smallest unit).
pub type Amount = u128;

/// Errors returned by ledger operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerError {
    /// The payer's balance is insufficient (`nofund` in the paper).
    InsufficientFunds {
        /// The account that lacked funds.
        account: Address,
        /// The requested amount.
        requested: Amount,
        /// The available balance.
        available: Amount,
    },
    /// An overflow would occur (astronomically large balances).
    Overflow,
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::InsufficientFunds {
                account,
                requested,
                available,
            } => write!(
                f,
                "insufficient funds in {account}: requested {requested}, available {available}"
            ),
            LedgerError::Overflow => write!(f, "balance overflow"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// A transparent record of a ledger transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerEvent {
    /// Coins were minted to an account (test/genesis provisioning).
    Minted {
        /// Receiving account.
        account: Address,
        /// Amount minted.
        amount: Amount,
    },
    /// `(frozen, F, P_i, b)`: a contract froze a party's coins.
    Frozen {
        /// The contract functionality that requested the freeze.
        contract: Address,
        /// The party whose coins were frozen.
        party: Address,
        /// Amount frozen.
        amount: Amount,
    },
    /// `(nofund, P_i, b)`: a freeze failed for lack of funds.
    NoFund {
        /// The party that lacked funds.
        party: Address,
        /// The requested amount.
        amount: Amount,
    },
    /// `(paid, F, P_i, b)`: a contract paid a party from escrow.
    Paid {
        /// The paying contract.
        contract: Address,
        /// The receiving party.
        party: Address,
        /// Amount paid.
        amount: Amount,
    },
    /// A plain transfer between two parties.
    Transferred {
        /// Sender.
        from: Address,
        /// Receiver.
        to: Address,
        /// Amount.
        amount: Amount,
    },
}

/// The ledger functionality `L`.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    balances: HashMap<Address, Amount>,
    events: Vec<LedgerEvent>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Provisions `amount` new coins to `account` (genesis/testing).
    pub fn mint(&mut self, account: Address, amount: Amount) {
        *self.balances.entry(account).or_insert(0) += amount;
        self.events.push(LedgerEvent::Minted { account, amount });
    }

    /// The balance of `account` (zero if never seen).
    pub fn balance(&self, account: &Address) -> Amount {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// **FreezeCoins**: contract `contract` freezes `amount` from `party`.
    ///
    /// On success the coins move into the contract's escrow balance and a
    /// [`LedgerEvent::Frozen`] is recorded; on failure a
    /// [`LedgerEvent::NoFund`] is recorded and an error returned.
    pub fn freeze(
        &mut self,
        contract: Address,
        party: Address,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        let available = self.balance(&party);
        if available < amount {
            self.events.push(LedgerEvent::NoFund { party, amount });
            return Err(LedgerError::InsufficientFunds {
                account: party,
                requested: amount,
                available,
            });
        }
        *self.balances.get_mut(&party).expect("checked above") -= amount;
        *self.balances.entry(contract).or_insert(0) += amount;
        self.events.push(LedgerEvent::Frozen {
            contract,
            party,
            amount,
        });
        Ok(())
    }

    /// **PayCoins**: contract `contract` pays `amount` to `party` out of
    /// its escrow.
    pub fn pay(
        &mut self,
        contract: Address,
        party: Address,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        let escrow = self.balance(&contract);
        if escrow < amount {
            return Err(LedgerError::InsufficientFunds {
                account: contract,
                requested: amount,
                available: escrow,
            });
        }
        *self.balances.get_mut(&contract).expect("checked above") -= amount;
        *self.balances.entry(party).or_insert(0) += amount;
        self.events.push(LedgerEvent::Paid {
            contract,
            party,
            amount,
        });
        Ok(())
    }

    /// A plain party-to-party transfer.
    pub fn transfer(
        &mut self,
        from: Address,
        to: Address,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        let available = self.balance(&from);
        if available < amount {
            return Err(LedgerError::InsufficientFunds {
                account: from,
                requested: amount,
                available,
            });
        }
        *self.balances.get_mut(&from).expect("checked above") -= amount;
        *self.balances.entry(to).or_insert(0) += amount;
        self.events
            .push(LedgerEvent::Transferred { from, to, amount });
        Ok(())
    }

    /// The transparent event log (every transition, in order).
    pub fn events(&self) -> &[LedgerEvent] {
        &self.events
    }

    /// Total coins in circulation (conservation-law invariant).
    pub fn total_supply(&self) -> Amount {
        self.balances.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_byte(n)
    }

    #[test]
    fn mint_and_balance() {
        let mut l = Ledger::new();
        assert_eq!(l.balance(&addr(1)), 0);
        l.mint(addr(1), 100);
        assert_eq!(l.balance(&addr(1)), 100);
        l.mint(addr(1), 50);
        assert_eq!(l.balance(&addr(1)), 150);
    }

    #[test]
    fn freeze_moves_to_escrow() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.freeze(addr(9), addr(1), 60).unwrap();
        assert_eq!(l.balance(&addr(1)), 40);
        assert_eq!(l.balance(&addr(9)), 60);
        assert!(matches!(
            l.events().last(),
            Some(LedgerEvent::Frozen { amount: 60, .. })
        ));
    }

    #[test]
    fn freeze_insufficient_is_nofund() {
        let mut l = Ledger::new();
        l.mint(addr(1), 10);
        let err = l.freeze(addr(9), addr(1), 60).unwrap_err();
        assert_eq!(
            err,
            LedgerError::InsufficientFunds {
                account: addr(1),
                requested: 60,
                available: 10
            }
        );
        // Balance unchanged, NoFund event recorded.
        assert_eq!(l.balance(&addr(1)), 10);
        assert!(matches!(
            l.events().last(),
            Some(LedgerEvent::NoFund { amount: 60, .. })
        ));
    }

    #[test]
    fn pay_from_escrow() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.freeze(addr(9), addr(1), 100).unwrap();
        l.pay(addr(9), addr(2), 25).unwrap();
        assert_eq!(l.balance(&addr(2)), 25);
        assert_eq!(l.balance(&addr(9)), 75);
    }

    #[test]
    fn pay_exceeding_escrow_fails() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.freeze(addr(9), addr(1), 50).unwrap();
        assert!(l.pay(addr(9), addr(2), 60).is_err());
        assert_eq!(l.balance(&addr(2)), 0);
        assert_eq!(l.balance(&addr(9)), 50);
    }

    #[test]
    fn transfer_between_parties() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.transfer(addr(1), addr(2), 30).unwrap();
        assert_eq!(l.balance(&addr(1)), 70);
        assert_eq!(l.balance(&addr(2)), 30);
        assert!(l.transfer(addr(2), addr(1), 31).is_err());
    }

    #[test]
    fn supply_is_conserved() {
        let mut l = Ledger::new();
        l.mint(addr(1), 500);
        l.mint(addr(2), 300);
        let supply = l.total_supply();
        l.freeze(addr(9), addr(1), 200).unwrap();
        l.pay(addr(9), addr(3), 150).unwrap();
        l.transfer(addr(2), addr(1), 100).unwrap();
        assert_eq!(l.total_supply(), supply);
    }

    #[test]
    fn event_order_is_chronological() {
        let mut l = Ledger::new();
        l.mint(addr(1), 10);
        l.freeze(addr(9), addr(1), 5).unwrap();
        l.pay(addr(9), addr(1), 5).unwrap();
        let kinds: Vec<_> = l
            .events()
            .iter()
            .map(|e| match e {
                LedgerEvent::Minted { .. } => "mint",
                LedgerEvent::Frozen { .. } => "freeze",
                LedgerEvent::Paid { .. } => "pay",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["mint", "freeze", "pay"]);
    }
}
