//! # dragoon-ledger
//!
//! The cryptocurrency ledger functionality `L` of §III: a transparent
//! global bookkeeping ledger that smart-contract functionalities call as a
//! subroutine for conditional payments.
//!
//! `L` stores a balance for every party and handles exactly the two
//! oracle queries the paper specifies:
//!
//! * **FreezeCoins** — `(freeze, P_i, b)` from a contract `F`: if
//!   `b_i ≥ b`, move `b` from `P_i` into `F`'s escrow and announce
//!   `(frozen, F, P_i, b)` to every entity; otherwise reply
//!   `(nofund, P_i, b)`.
//! * **PayCoins** — `(pay, P_i, b)` from a contract `F`: if `b_F ≥ b`,
//!   move `b` from the escrow to `P_i` and announce `(paid, F, P_i, b)`.
//!
//! Balances are denominated in an abstract integer unit ("wei" in the
//! Ethereum instantiation). All transitions are recorded as
//! [`LedgerEvent`]s — the transparency the paper's blockchain model
//! assumes.

use std::collections::HashMap;
use std::fmt;

pub mod address;
pub mod journal;
pub use address::Address;
pub use journal::{Journaled, StateJournal, TouchRecord, TouchSet};

/// An amount of coins (abstract smallest unit).
pub type Amount = u128;

/// Errors returned by ledger operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerError {
    /// The payer's balance is insufficient (`nofund` in the paper).
    InsufficientFunds {
        /// The account that lacked funds.
        account: Address,
        /// The requested amount.
        requested: Amount,
        /// The available balance.
        available: Amount,
    },
    /// An overflow would occur (astronomically large balances).
    Overflow,
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::InsufficientFunds {
                account,
                requested,
                available,
            } => write!(
                f,
                "insufficient funds in {account}: requested {requested}, available {available}"
            ),
            LedgerError::Overflow => write!(f, "balance overflow"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// A transparent record of a ledger transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerEvent {
    /// Coins were minted to an account (test/genesis provisioning).
    Minted {
        /// Receiving account.
        account: Address,
        /// Amount minted.
        amount: Amount,
    },
    /// `(frozen, F, P_i, b)`: a contract froze a party's coins.
    Frozen {
        /// The contract functionality that requested the freeze.
        contract: Address,
        /// The party whose coins were frozen.
        party: Address,
        /// Amount frozen.
        amount: Amount,
    },
    /// `(nofund, P_i, b)`: a freeze failed for lack of funds.
    NoFund {
        /// The party that lacked funds.
        party: Address,
        /// The requested amount.
        amount: Amount,
    },
    /// `(paid, F, P_i, b)`: a contract paid a party from escrow.
    Paid {
        /// The paying contract.
        contract: Address,
        /// The receiving party.
        party: Address,
        /// Amount paid.
        amount: Amount,
    },
    /// A plain transfer between two parties.
    Transferred {
        /// Sender.
        from: Address,
        /// Receiver.
        to: Address,
        /// Amount.
        amount: Amount,
    },
}

/// One undo record of the ledger's transaction journal.
#[derive(Clone, Debug, PartialEq)]
enum LedgerUndo {
    /// `account` held `prior` before this transaction's first write to it
    /// (`None` = no entry existed).
    Balance {
        account: Address,
        prior: Option<Amount>,
    },
    /// One event was appended to the transparent log.
    Event,
    /// `amount` was added to `account`'s commutative-debit accumulator
    /// (shadow ledgers only); undo subtracts it back out.
    Debit { account: Address, amount: Amount },
}

/// The ledger functionality `L`.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    balances: HashMap<Address, Amount>,
    events: Vec<LedgerEvent>,
    /// Per-transaction undo log: balance writes and event appends are
    /// journaled while a chain transaction is open, so a revert restores
    /// exactly the touched entries instead of a whole-map snapshot.
    journal: StateJournal<LedgerUndo>,
    /// Touched-entry tracking (reads *and* writes) for the optimistic
    /// parallel executor's conflict detection. Disabled on the canonical
    /// ledger; enabled on the [`Ledger::sparse_overlay`] shadows the
    /// executor hands to worker threads.
    touches: TouchSet<Address>,
    /// Accounts whose escrow *freezes* record commutative debit touches
    /// instead of read+write touches (shadow ledgers only; empty on the
    /// canonical ledger). Declared by the scheduler from the batch's
    /// access sets so same-sender spawns can run in separate groups.
    delta_accounts: std::collections::BTreeSet<Address>,
    /// Accumulated successful freeze debits per delta account, summed at
    /// merge against the canonical base entry.
    debits: std::collections::BTreeMap<Address, Amount>,
    /// Accounts whose balance entry was written since the last
    /// [`Ledger::mark_delta_clean`] — the working set an incremental
    /// snapshot encodes instead of the whole balance table. Tracked on
    /// the canonical ledger; shadows carry (and discard) their own.
    dirty: std::collections::BTreeSet<Address>,
    /// Length of `events` at the last [`Ledger::mark_delta_clean`]; the
    /// suffix past it is the event delta since the previous snapshot.
    events_mark: usize,
}

impl PartialEq for Ledger {
    /// Ledger equality compares observable state (balances + event log);
    /// the journal and the touch tracking are transient bookkeeping and
    /// are ignored.
    fn eq(&self, other: &Self) -> bool {
        self.balances == other.balances && self.events == other.events
    }
}

impl Journaled for Ledger {
    fn begin_tx(&mut self) {
        self.journal.begin();
    }

    fn commit_tx(&mut self) {
        self.journal.commit();
    }

    fn rollback_tx(&mut self) {
        for undo in self.journal.drain_rollback() {
            self.apply_undo(undo);
        }
    }
}

/// The captured undo log of one *committed* ledger transaction: enough
/// to unwind the commit later (block reorgs in `dragoon-net`), where the
/// plain [`Journaled`] bracket only supports rollback-before-commit.
#[derive(Debug, Default)]
pub struct LedgerCapture(Vec<LedgerUndo>);

impl LedgerCapture {
    /// `true` when the committed transaction touched nothing.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commits the open transaction like [`Journaled::commit_tx`], but
    /// returns the undo log instead of discarding it, so the commit can
    /// be unwound later with [`Ledger::revert_capture`].
    pub fn commit_tx_captured(&mut self) -> LedgerCapture {
        LedgerCapture(self.journal.drain_commit())
    }

    /// Unwinds a previously captured commit. Captures must be reverted
    /// in reverse commit order (newest first) — each one replays its
    /// undo entries LIFO, exactly as a pre-commit rollback would have.
    pub fn revert_capture(&mut self, capture: LedgerCapture) {
        for undo in capture.0.into_iter().rev() {
            self.apply_undo(undo);
        }
    }

    /// Applies one undo record (shared by rollback and capture-revert).
    fn apply_undo(&mut self, undo: LedgerUndo) {
        match undo {
            LedgerUndo::Balance { account, prior } => {
                self.dirty.insert(account);
                match prior {
                    Some(amount) => {
                        self.balances.insert(account, amount);
                    }
                    None => {
                        self.balances.remove(&account);
                    }
                }
            }
            LedgerUndo::Event => {
                self.events.pop();
            }
            LedgerUndo::Debit { account, amount } => {
                let entry = self
                    .debits
                    .get_mut(&account)
                    .expect("journaled debit has an accumulator entry");
                *entry -= amount;
                if *entry == 0 {
                    self.debits.remove(&account);
                }
            }
        }
    }

    /// Journals the prior value of `account`'s balance entry before a
    /// write (no-op outside a transaction), and records the write touch.
    fn record_balance(&mut self, account: Address) {
        self.touches.record_write(account);
        self.journal_balance(account);
    }

    /// Journals the prior value of `account`'s balance entry without
    /// recording any touch (the caller records the appropriate class).
    fn journal_balance(&mut self, account: Address) {
        self.dirty.insert(account);
        let balances = &self.balances;
        self.journal.record_with(|| LedgerUndo::Balance {
            account,
            prior: balances.get(&account).copied(),
        });
    }

    /// Appends to the transparent event log, journaling the append.
    fn push_event(&mut self, event: LedgerEvent) {
        self.journal.record(LedgerUndo::Event);
        self.events.push(event);
    }

    /// The full balance table in deterministic (address-sorted) order —
    /// the canonical form state snapshots serialize. The internal map is
    /// hashed, so iteration order is not stable across processes; the
    /// sort is what makes a snapshot byte-identical to the one a
    /// recovered replica would write.
    pub fn accounts_sorted(&self) -> Vec<(Address, Amount)> {
        let mut accounts: Vec<(Address, Amount)> =
            self.balances.iter().map(|(a, v)| (*a, *v)).collect();
        accounts.sort_unstable_by_key(|(a, _)| *a);
        accounts
    }

    /// Rebuilds a ledger from snapshot parts: the balance table and the
    /// transparent event log. The journal and touch tracking start idle —
    /// exactly the state of a live ledger between transactions, which is
    /// the only point snapshots are ever taken.
    pub fn from_parts(
        balances: impl IntoIterator<Item = (Address, Amount)>,
        events: Vec<LedgerEvent>,
    ) -> Self {
        Self {
            balances: balances.into_iter().collect(),
            events,
            ..Self::default()
        }
    }

    /// Provisions `amount` new coins to `account` (genesis/testing).
    pub fn mint(&mut self, account: Address, amount: Amount) {
        self.record_balance(account);
        *self.balances.entry(account).or_insert(0) += amount;
        self.push_event(LedgerEvent::Minted { account, amount });
    }

    /// The balance of `account` (zero if never seen).
    pub fn balance(&self, account: &Address) -> Amount {
        self.touches.record_read(*account);
        self.balances.get(account).copied().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Optimistic-concurrency support (parallel block execution)
    // ------------------------------------------------------------------

    /// A shadow ledger for one optimistic execution group: the balance
    /// entries of `accounts` copied from this ledger, an empty event log
    /// (only *new* events accumulate), and touch tracking enabled.
    ///
    /// The preset must cover every entry the group may read — the
    /// executor verifies post-hoc that no touched account outside the
    /// preset had a base entry (such a read would have seen a phantom
    /// zero) and falls back to serial re-execution otherwise.
    pub fn sparse_overlay(&self, accounts: impl IntoIterator<Item = Address>) -> Ledger {
        self.sparse_overlay_with_debits(accounts, std::iter::empty())
    }

    /// A [`Ledger::sparse_overlay`] whose `delta_accounts` freeze-debits
    /// record commutative **debit** touches and accumulate their deltas,
    /// so groups debiting the same funded sender can merge additively
    /// instead of conflicting (see [`Ledger::apply_debit`]). The delta
    /// accounts must also be in the preset (`accounts`).
    pub fn sparse_overlay_with_debits(
        &self,
        accounts: impl IntoIterator<Item = Address>,
        delta_accounts: impl IntoIterator<Item = Address>,
    ) -> Ledger {
        let mut balances = HashMap::new();
        for account in accounts {
            if let Some(v) = self.balances.get(&account) {
                balances.insert(account, *v);
            }
        }
        Ledger {
            balances,
            events: Vec::new(),
            journal: StateJournal::new(),
            touches: TouchSet::tracking(),
            delta_accounts: delta_accounts.into_iter().collect(),
            debits: std::collections::BTreeMap::new(),
            dirty: std::collections::BTreeSet::new(),
            events_mark: 0,
        }
    }

    /// The accumulated successful freeze debits of this shadow ledger,
    /// per delta account (empty on the canonical ledger).
    pub fn debit_totals(&self) -> impl Iterator<Item = (Address, Amount)> + '_ {
        self.debits.iter().map(|(a, v)| (*a, *v))
    }

    /// The accumulated debit of one account on this shadow ledger.
    pub fn debit_total(&self, account: &Address) -> Option<Amount> {
        self.debits.get(account).copied()
    }

    /// Applies a shadow ledger's accumulated debit of `account` to the
    /// canonical entry. Debits from disjoint groups commute, so the
    /// executor applies each group's delta in turn after its overdraft
    /// validation proved the sum fits the base entry. Bypasses journal
    /// and events, like [`Ledger::merge_entry`].
    pub fn apply_debit(&mut self, account: Address, delta: Amount) {
        self.dirty.insert(account);
        let entry = self
            .balances
            .get_mut(&account)
            .expect("debited account has a base entry (overdraft check passed)");
        *entry -= delta;
    }

    /// The raw balance entry of `account` — `None` when no entry exists,
    /// which is observably different from an explicit zero for state
    /// comparison. Used by the executor to validate presets and merge
    /// shadow results; records the touch like any other read.
    pub fn balance_entry(&self, account: &Address) -> Option<Amount> {
        self.touches.record_read(*account);
        self.balances.get(account).copied()
    }

    /// Drains the record of accounts touched since touch tracking began,
    /// reads and writes kept apart. Empty unless the ledger was built by
    /// [`Ledger::sparse_overlay`].
    pub fn take_touched(&mut self) -> TouchRecord<Address> {
        self.touches.take()
    }

    /// Installs a shadow ledger's final entry for `account`: `Some`
    /// overwrites, `None` removes (an entry created and rolled back, or
    /// one that never existed). Bypasses journal and events — merging
    /// happens between transactions, after conflict validation.
    pub fn merge_entry(&mut self, account: Address, entry: Option<Amount>) {
        self.dirty.insert(account);
        match entry {
            Some(v) => {
                self.balances.insert(account, v);
            }
            None => {
                self.balances.remove(&account);
            }
        }
    }

    /// Appends a shadow ledger's event slice to the transparent log (the
    /// executor merges per-transaction slices in schedule order, so the
    /// committed log is identical to serial execution's).
    pub fn append_events(&mut self, events: &[LedgerEvent]) {
        self.events.extend_from_slice(events);
    }

    // ------------------------------------------------------------------
    // Incremental-snapshot support (dirty-entry tracking)
    // ------------------------------------------------------------------

    /// The balance entries written since the last
    /// [`Ledger::mark_delta_clean`], address-sorted, with `None` marking
    /// entries that no longer exist (tombstones). Replaying these over
    /// the previous snapshot's balance table reproduces the current one.
    pub fn delta_entries(&self) -> Vec<(Address, Option<Amount>)> {
        self.dirty
            .iter()
            .map(|a| (*a, self.balances.get(a).copied()))
            .collect()
    }

    /// The events appended since the last [`Ledger::mark_delta_clean`].
    pub fn delta_events(&self) -> &[LedgerEvent] {
        &self.events[self.events_mark..]
    }

    /// Number of dirty balance entries (the delta's working-set size).
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Resets the delta baseline: clears the dirty set and marks the
    /// current event-log length. Call after encoding a snapshot (full or
    /// incremental) so the next delta covers only what changes after it.
    pub fn mark_delta_clean(&mut self) {
        self.dirty.clear();
        self.events_mark = self.events.len();
    }

    /// **FreezeCoins**: contract `contract` freezes `amount` from `party`.
    ///
    /// On success the coins move into the contract's escrow balance and a
    /// [`LedgerEvent::Frozen`] is recorded; on failure a
    /// [`LedgerEvent::NoFund`] is recorded and an error returned.
    pub fn freeze(
        &mut self,
        contract: Address,
        party: Address,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        // A delta account's debit is commutative: the guard read and the
        // subtraction record one *debit* touch instead of read+write, and
        // the delta accumulates for the executor's additive merge. The
        // guard is sound across groups because the executor verifies
        // post-hoc that the sum of all groups' debits fits the base entry
        // (any pass decision here then also passes in serial order).
        let delta_mode = self.delta_accounts.contains(&party);
        let available = if delta_mode {
            self.touches.record_debit(party);
            self.balances.get(&party).copied().unwrap_or(0)
        } else {
            self.balance(&party)
        };
        if available < amount {
            self.push_event(LedgerEvent::NoFund { party, amount });
            return Err(LedgerError::InsufficientFunds {
                account: party,
                requested: amount,
                available,
            });
        }
        if delta_mode {
            self.journal_balance(party);
            self.journal.record(LedgerUndo::Debit {
                account: party,
                amount,
            });
            *self.debits.entry(party).or_insert(0) += amount;
        } else {
            self.record_balance(party);
        }
        self.record_balance(contract);
        *self.balances.get_mut(&party).expect("checked above") -= amount;
        *self.balances.entry(contract).or_insert(0) += amount;
        self.push_event(LedgerEvent::Frozen {
            contract,
            party,
            amount,
        });
        Ok(())
    }

    /// **PayCoins**: contract `contract` pays `amount` to `party` out of
    /// its escrow.
    pub fn pay(
        &mut self,
        contract: Address,
        party: Address,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        let escrow = self.balance(&contract);
        if escrow < amount {
            return Err(LedgerError::InsufficientFunds {
                account: contract,
                requested: amount,
                available: escrow,
            });
        }
        self.record_balance(contract);
        self.record_balance(party);
        *self.balances.get_mut(&contract).expect("checked above") -= amount;
        *self.balances.entry(party).or_insert(0) += amount;
        self.push_event(LedgerEvent::Paid {
            contract,
            party,
            amount,
        });
        Ok(())
    }

    /// A plain party-to-party transfer.
    pub fn transfer(
        &mut self,
        from: Address,
        to: Address,
        amount: Amount,
    ) -> Result<(), LedgerError> {
        let available = self.balance(&from);
        if available < amount {
            return Err(LedgerError::InsufficientFunds {
                account: from,
                requested: amount,
                available,
            });
        }
        self.record_balance(from);
        self.record_balance(to);
        *self.balances.get_mut(&from).expect("checked above") -= amount;
        *self.balances.entry(to).or_insert(0) += amount;
        self.push_event(LedgerEvent::Transferred { from, to, amount });
        Ok(())
    }

    /// The transparent event log (every transition, in order).
    pub fn events(&self) -> &[LedgerEvent] {
        &self.events
    }

    /// Total coins in circulation (conservation-law invariant).
    ///
    /// Canonical-ledger only: on a [`Ledger::sparse_overlay`] shadow the
    /// sum would cover just the preset's copied entries, and a whole-map
    /// scan cannot be expressed as a touched-entry set, so contract code
    /// must never guard on it (the debug assertion makes a future misuse
    /// fail loudly in the differential suites instead of silently
    /// committing state that diverges from serial execution).
    pub fn total_supply(&self) -> Amount {
        debug_assert!(
            !self.touches.enabled(),
            "total_supply is not touch-trackable; do not call it on an execution shadow"
        );
        self.balances.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_byte(n)
    }

    #[test]
    fn mint_and_balance() {
        let mut l = Ledger::new();
        assert_eq!(l.balance(&addr(1)), 0);
        l.mint(addr(1), 100);
        assert_eq!(l.balance(&addr(1)), 100);
        l.mint(addr(1), 50);
        assert_eq!(l.balance(&addr(1)), 150);
    }

    #[test]
    fn freeze_moves_to_escrow() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.freeze(addr(9), addr(1), 60).unwrap();
        assert_eq!(l.balance(&addr(1)), 40);
        assert_eq!(l.balance(&addr(9)), 60);
        assert!(matches!(
            l.events().last(),
            Some(LedgerEvent::Frozen { amount: 60, .. })
        ));
    }

    #[test]
    fn freeze_insufficient_is_nofund() {
        let mut l = Ledger::new();
        l.mint(addr(1), 10);
        let err = l.freeze(addr(9), addr(1), 60).unwrap_err();
        assert_eq!(
            err,
            LedgerError::InsufficientFunds {
                account: addr(1),
                requested: 60,
                available: 10
            }
        );
        // Balance unchanged, NoFund event recorded.
        assert_eq!(l.balance(&addr(1)), 10);
        assert!(matches!(
            l.events().last(),
            Some(LedgerEvent::NoFund { amount: 60, .. })
        ));
    }

    #[test]
    fn pay_from_escrow() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.freeze(addr(9), addr(1), 100).unwrap();
        l.pay(addr(9), addr(2), 25).unwrap();
        assert_eq!(l.balance(&addr(2)), 25);
        assert_eq!(l.balance(&addr(9)), 75);
    }

    #[test]
    fn pay_exceeding_escrow_fails() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.freeze(addr(9), addr(1), 50).unwrap();
        assert!(l.pay(addr(9), addr(2), 60).is_err());
        assert_eq!(l.balance(&addr(2)), 0);
        assert_eq!(l.balance(&addr(9)), 50);
    }

    #[test]
    fn transfer_between_parties() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.transfer(addr(1), addr(2), 30).unwrap();
        assert_eq!(l.balance(&addr(1)), 70);
        assert_eq!(l.balance(&addr(2)), 30);
        assert!(l.transfer(addr(2), addr(1), 31).is_err());
    }

    #[test]
    fn supply_is_conserved() {
        let mut l = Ledger::new();
        l.mint(addr(1), 500);
        l.mint(addr(2), 300);
        let supply = l.total_supply();
        l.freeze(addr(9), addr(1), 200).unwrap();
        l.pay(addr(9), addr(3), 150).unwrap();
        l.transfer(addr(2), addr(1), 100).unwrap();
        assert_eq!(l.total_supply(), supply);
    }

    #[test]
    fn event_order_is_chronological() {
        let mut l = Ledger::new();
        l.mint(addr(1), 10);
        l.freeze(addr(9), addr(1), 5).unwrap();
        l.pay(addr(9), addr(1), 5).unwrap();
        let kinds: Vec<_> = l
            .events()
            .iter()
            .map(|e| match e {
                LedgerEvent::Minted { .. } => "mint",
                LedgerEvent::Frozen { .. } => "freeze",
                LedgerEvent::Paid { .. } => "pay",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["mint", "freeze", "pay"]);
    }

    #[test]
    fn rollback_restores_touched_entries_and_events() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        let baseline = l.clone();
        l.begin_tx();
        l.freeze(addr(9), addr(1), 60).unwrap();
        l.pay(addr(9), addr(2), 25).unwrap();
        l.transfer(addr(2), addr(3), 5).unwrap();
        assert_ne!(l, baseline);
        l.rollback_tx();
        assert_eq!(l, baseline, "rollback must restore balances and events");
        // Accounts created inside the transaction disappear entirely.
        assert_eq!(l.balance(&addr(2)), 0);
        assert_eq!(l.balance(&addr(3)), 0);
        assert_eq!(l.events().len(), 1);
    }

    #[test]
    fn rollback_removes_failed_freeze_nofund_event() {
        let mut l = Ledger::new();
        l.mint(addr(1), 10);
        let baseline = l.clone();
        l.begin_tx();
        assert!(l.freeze(addr(9), addr(1), 60).is_err());
        assert_eq!(l.events().len(), 2, "NoFund recorded inside the tx");
        l.rollback_tx();
        assert_eq!(l, baseline, "the NoFund event is part of the revert");
    }

    #[test]
    fn commit_keeps_mutations_and_reuses_journal() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.begin_tx();
        l.freeze(addr(9), addr(1), 60).unwrap();
        l.commit_tx();
        assert_eq!(l.balance(&addr(9)), 60);
        // A later transaction reverts independently of the committed one.
        l.begin_tx();
        l.pay(addr(9), addr(2), 10).unwrap();
        l.rollback_tx();
        assert_eq!(l.balance(&addr(9)), 60);
        assert_eq!(l.balance(&addr(2)), 0);
    }

    #[test]
    fn captured_commits_revert_in_reverse_order() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        let baseline = l.clone();
        // Two committed transactions, each captured.
        l.begin_tx();
        l.freeze(addr(9), addr(1), 60).unwrap();
        let first = l.commit_tx_captured();
        l.begin_tx();
        l.pay(addr(9), addr(2), 25).unwrap();
        l.transfer(addr(2), addr(3), 5).unwrap();
        let second = l.commit_tx_captured();
        let committed = l.clone();
        assert_eq!(l.balance(&addr(3)), 5);
        // Reverting newest-first restores the intermediate, then the
        // original state bit-for-bit.
        l.revert_capture(second);
        assert_eq!(l.balance(&addr(9)), 60);
        assert_eq!(l.balance(&addr(2)), 0);
        l.revert_capture(first);
        assert_eq!(l, baseline, "captured reverts restore the baseline");
        assert_ne!(l, committed);
    }

    #[test]
    fn sparse_overlay_tracks_reads_and_writes() {
        let mut base = Ledger::new();
        base.mint(addr(1), 100);
        base.mint(addr(9), 50);
        let mut shadow = base.sparse_overlay([addr(1), addr(9)]);
        assert!(
            shadow.events().is_empty(),
            "overlay log holds new events only"
        );
        // A read alone must be touched: guards and revert messages depend
        // on it even when nothing is written.
        assert_eq!(shadow.balance(&addr(1)), 100);
        shadow.pay(addr(9), addr(2), 30).unwrap();
        let touched = shadow.take_touched();
        assert!(
            touched.reads.contains(&addr(1)),
            "read-only access is a read touch"
        );
        assert!(
            touched.writes.contains(&addr(9)) && touched.writes.contains(&addr(2)),
            "payment endpoints are write touches"
        );
        assert!(
            !touched.reads.contains(&addr(9)),
            "a read that precedes a write reports as the write alone"
        );
        // Merging the touched entries reproduces serial execution.
        for a in [addr(1), addr(2), addr(9)] {
            base.merge_entry(a, shadow.balance_entry(&a));
        }
        base.append_events(shadow.events());
        assert_eq!(base.balance(&addr(2)), 30);
        assert_eq!(base.balance(&addr(9)), 20);
        assert_eq!(base.events().len(), 3, "mint, mint, paid");
        // The canonical ledger never tracks.
        assert!(base.take_touched().is_empty());
    }

    #[test]
    fn overlay_rollback_removes_created_entries() {
        let mut base = Ledger::new();
        base.mint(addr(9), 50);
        let mut shadow = base.sparse_overlay([addr(9)]);
        shadow.begin_tx();
        shadow.pay(addr(9), addr(2), 10).unwrap();
        shadow.rollback_tx();
        assert_eq!(shadow.balance_entry(&addr(2)), None, "entry fully undone");
        assert_eq!(shadow.balance_entry(&addr(9)), Some(50));
        assert!(shadow.events().is_empty());
        // merge_entry(None) must not materialize a zero entry.
        base.merge_entry(addr(2), None);
        assert_eq!(base.balance_entry(&addr(2)), None);
    }

    #[test]
    fn delta_mode_freeze_records_debits_and_merges_additively() {
        let mut base = Ledger::new();
        base.mint(addr(1), 100);
        // Two shadow groups each freeze from the same delta account.
        let mut a = base.sparse_overlay_with_debits([addr(1), addr(8)], [addr(1)]);
        let mut b = base.sparse_overlay_with_debits([addr(1), addr(9)], [addr(1)]);
        a.begin_tx();
        a.freeze(addr(8), addr(1), 40).unwrap();
        a.commit_tx();
        b.begin_tx();
        b.freeze(addr(9), addr(1), 30).unwrap();
        b.commit_tx();
        let ta = a.take_touched();
        let tb = b.take_touched();
        // The sender is a debit touch, not a read or write — the two
        // groups do not conflict.
        assert!(ta.debits.contains(&addr(1)) && !ta.writes.contains(&addr(1)));
        assert!(!ta.reads.contains(&addr(1)));
        assert!(!ta.conflicts_with(&tb));
        assert_eq!(a.debit_total(&addr(1)), Some(40));
        assert_eq!(b.debit_total(&addr(1)), Some(30));
        // Additive merge: escrow writes install, sender debits sum.
        base.merge_entry(addr(8), a.balance_entry(&addr(8)));
        base.merge_entry(addr(9), b.balance_entry(&addr(9)));
        base.apply_debit(addr(1), 40);
        base.apply_debit(addr(1), 30);
        assert_eq!(base.balance(&addr(1)), 30);
        assert_eq!(base.balance(&addr(8)), 40);
        assert_eq!(base.balance(&addr(9)), 30);
    }

    #[test]
    fn delta_mode_rollback_rewinds_the_debit_accumulator() {
        let mut base = Ledger::new();
        base.mint(addr(1), 100);
        let mut s = base.sparse_overlay_with_debits([addr(1), addr(8)], [addr(1)]);
        s.begin_tx();
        s.freeze(addr(8), addr(1), 40).unwrap();
        s.rollback_tx();
        assert_eq!(s.debit_total(&addr(1)), None, "rolled-back debit gone");
        assert_eq!(s.balance_entry(&addr(1)), Some(100));
        // A failed guard in delta mode records the debit touch but no
        // delta, and the NoFund event reverts with the transaction.
        s.begin_tx();
        assert!(s.freeze(addr(8), addr(1), 500).is_err());
        s.rollback_tx();
        assert_eq!(s.debit_total(&addr(1)), None);
        assert!(s.events().is_empty());
    }

    #[test]
    fn delta_entries_track_the_working_set_with_tombstones() {
        let mut l = Ledger::new();
        l.mint(addr(1), 100);
        l.mint(addr(2), 50);
        l.mark_delta_clean();
        assert!(l.delta_entries().is_empty());
        assert!(l.delta_events().is_empty());
        l.transfer(addr(1), addr(3), 10).unwrap();
        let delta = l.delta_entries();
        assert_eq!(delta, vec![(addr(1), Some(90)), (addr(3), Some(10))]);
        assert_eq!(l.delta_events().len(), 1);
        // Replaying the delta over the pre-delta table reproduces the
        // current one.
        let mut base = Ledger::from_parts([(addr(1), 100), (addr(2), 50)], Vec::new());
        for (a, e) in delta {
            base.merge_entry(a, e);
        }
        assert_eq!(base.accounts_sorted(), l.accounts_sorted());
        // A rolled-back transaction still dirties what it touched, and an
        // entry created-then-undone shows up as a tombstone.
        l.mark_delta_clean();
        l.begin_tx();
        l.transfer(addr(2), addr(4), 5).unwrap();
        l.rollback_tx();
        assert_eq!(
            l.delta_entries(),
            vec![(addr(2), Some(50)), (addr(4), None)],
            "rollback leaves the touched set dirty; the vanished entry is a tombstone"
        );
        assert!(l.delta_events().is_empty(), "the event undo popped it");
    }

    #[test]
    fn journaled_rollback_equals_clone_restore_on_random_ops() {
        // Differential: replay a pseudo-random op sequence against a
        // journaled ledger and a cloned snapshot; rollback must equal the
        // snapshot exactly.
        let mut l = Ledger::new();
        for i in 0..8 {
            l.mint(addr(i), (i as u128 + 1) * 50);
        }
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for round in 0..50 {
            let snapshot = l.clone();
            l.begin_tx();
            for _ in 0..(round % 7 + 1) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = addr((x >> 8) as u8 % 8);
                let b = addr((x >> 16) as u8 % 8 + 8);
                let amt = (x >> 24) as u128 % 90;
                match x % 4 {
                    0 => {
                        let _ = l.freeze(b, a, amt);
                    }
                    1 => {
                        let _ = l.pay(b, a, amt);
                    }
                    2 => {
                        let _ = l.transfer(a, b, amt);
                    }
                    _ => l.mint(a, amt),
                }
            }
            if round % 2 == 0 {
                l.rollback_tx();
                assert_eq!(l, snapshot, "round {round}: rollback != clone restore");
            } else {
                l.commit_tx();
            }
        }
    }
}
