//! Network scenario configuration.

/// A scheduled partition: while `start <= tick < end`, every link
/// between an `island` node and a non-island node is cut (messages sent
/// across the cut are lost, not delayed — anti-entropy re-announces
/// heads every tick, so state catches up after the heal).
#[derive(Clone, Debug)]
pub struct PartitionWindow {
    /// First tick (inclusive) the partition is active.
    pub start: u64,
    /// First tick the partition is healed again.
    pub end: u64,
    /// The node indices on the minority side of the cut.
    pub island: Vec<usize>,
}

impl PartitionWindow {
    /// Whether the link `a ↔ b` is cut at `tick`.
    pub fn cuts(&self, tick: u64, a: usize, b: usize) -> bool {
        (self.start..self.end).contains(&tick)
            && (self.island.contains(&a) != self.island.contains(&b))
    }
}

/// How fork proposers are selected among stalled replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProposerPolicy {
    /// Round-robin over the replica indices (`1..nodes`) by tick.
    RoundRobin,
    /// Seeded lottery: a per-tick pseudo-random replica wins the slot.
    Lottery,
}

/// Built-in relay adversaries, selectable from configuration (the
/// [`crate::RelayPolicy`] trait accepts arbitrary implementations in
/// code; this enum is the `Clone`-able subset a scenario can carry).
#[derive(Clone, Debug)]
pub enum RelaySpec {
    /// Forward everything unchanged.
    Honest,
    /// Network-level MEV, targeting flavor: block messages to the
    /// victim nodes are held back `extra` extra ticks, keeping the
    /// victims' view of the chain stale.
    DelayTargets {
        /// Node indices whose block delivery is delayed.
        victims: Vec<usize>,
        /// Extra delay in ticks.
        extra: u64,
    },
    /// Network-level MEV, withhold-and-release flavor: the sequencer's
    /// block messages are buffered and released in bursts every
    /// `period` ticks — replicas see nothing, go stale (forking once
    /// patience runs out), then receive the whole burst and reorg.
    WithholdRelease {
        /// Burst period in ticks.
        period: u64,
    },
}

/// Everything that defines the simulated network. Defaults give a
/// healthy 4-node topology: short seeded delays, no loss, no
/// partitions, honest relay.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Node count, including the sequencer's own replica (node 0).
    pub nodes: usize,
    /// Per-message link delay range `(min, max)` in ticks, drawn
    /// seeded per send. `(0, 0)` models a perfect instant network.
    pub delay: (u64, u64),
    /// Per-message loss probability in permille (0–1000).
    pub drop_per_mille: u32,
    /// Per-message duplicate-delivery probability in permille.
    pub duplicate_per_mille: u32,
    /// Scheduled partitions (may overlap; a link is cut if any active
    /// window cuts it).
    pub partitions: Vec<PartitionWindow>,
    /// Fork-proposer selection among stalled replicas.
    pub proposer: ProposerPolicy,
    /// Ticks a replica's head must be stale before it proposes its own
    /// block from its gossip mempool (the fork source).
    pub fork_patience: u64,
    /// The relay policy between every pair of nodes.
    pub relay: RelaySpec,
    /// Tick budget for the final convergence drain (after the last
    /// canonical block, the network keeps ticking — partitions heal by
    /// schedule, anti-entropy back-fills — until every node converges
    /// or the budget runs out).
    pub drain_ticks: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            delay: (1, 3),
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            partitions: Vec::new(),
            proposer: ProposerPolicy::RoundRobin,
            fork_patience: 4,
            relay: RelaySpec::Honest,
            drain_ticks: 1_000,
        }
    }
}
