//! # dragoon-net
//!
//! Deterministic multi-node network simulation for the dragoon
//! marketplace chain: N nodes, each owning an independent mempool and
//! a full chain replica (registry, ledger, receipts), connected by a
//! discrete-event gossip layer with seeded per-link delays, loss,
//! duplicate delivery and scheduled partitions — all on one virtual
//! clock, bit-reproducible from a seed.
//!
//! Node 0 replays the canonical sequencer's blocks; the other nodes
//! follow by gossip, buffer competing branches, and switch heads by
//! longest-chain fork choice with full state rollback (the chain's
//! captured-undo replica path). Adversarial [`RelayPolicy`]
//! implementations can delay or withhold block propagation per link —
//! the network-level analogue of MEV — and the convergence
//! differential proves every honest node still settles to the exact
//! single-node state.

pub mod config;
pub mod node;
pub mod relay;
pub mod report;
pub mod sim;

pub use config::{NetConfig, PartitionWindow, ProposerPolicy, RelaySpec};
pub use node::{block_id, BlockId, NetBlock, GENESIS};
pub use relay::{
    build_relay, DelayTargetsRelay, HonestRelay, RelayDecision, RelayPolicy, WithholdReleaseRelay,
};
pub use report::NetReport;
pub use sim::{NetMsg, NetSim};
