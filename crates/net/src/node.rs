//! One simulated node: a chain replica, a block tree with longest-chain
//! fork choice, and a gossip mempool.
//!
//! A node applies blocks through the chain's **captured** path
//! ([`dragoon_chain::replica`]): every applied block leaves a
//! [`BlockUndo`] on a stack parallel to the applied branch, so switching
//! to a heavier branch is pop-revert / re-apply — bit-exact, touched
//! state only, deadline settlements included.

use dragoon_chain::mempool::PendingTx;
use dragoon_chain::replica::{BlockUndo, CaptureStateMachine};
use dragoon_chain::Chain;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A block identity: a content hash over height, proposer, parent and
/// the transaction list — equal on every node that knows the block.
pub type BlockId = u64;

/// The implicit common ancestor of everything: the deployed genesis
/// state every replica starts from.
pub const GENESIS: BlockId = 0;

/// A gossiped block: enough to replay it (full transactions) and to
/// place it in the tree.
#[derive(Clone, Debug)]
pub struct NetBlock<M> {
    /// Content hash (see [`block_id`]).
    pub id: BlockId,
    /// Parent block (or [`GENESIS`]).
    pub parent: BlockId,
    /// Chain height (= the round the block advances its chain to).
    pub height: u64,
    /// Producing node index (`0` = the canonical sequencer).
    pub proposer: usize,
    /// Full transaction list, in execution order.
    pub txs: Vec<PendingTx<M>>,
}

/// Deterministic content hash for block identity (FNV-1a over the
/// header fields and each transaction's seq + sender).
pub fn block_id<M>(height: u64, proposer: usize, parent: BlockId, txs: &[PendingTx<M>]) -> BlockId {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&height.to_le_bytes());
    eat(&(proposer as u64).to_le_bytes());
    eat(&parent.to_le_bytes());
    eat(&(txs.len() as u64).to_le_bytes());
    for tx in txs {
        eat(&tx.seq.to_le_bytes());
        eat(&tx.sender.0);
    }
    // Reserve 0 for genesis.
    h.max(1)
}

/// One node of the simulated network.
pub(crate) struct Node<S: CaptureStateMachine> {
    /// The local chain replica (public to the crate so the simulation
    /// and tests can audit final state).
    pub(crate) chain: Chain<S>,
    /// Every block this node knows, by id.
    blocks: BTreeMap<BlockId, NetBlock<S::Msg>>,
    /// Parent → children edges (for completeness cascades).
    children: BTreeMap<BlockId, Vec<BlockId>>,
    /// Blocks whose entire ancestry down to genesis is known — the only
    /// fork-choice candidates (an orphan's branch can't be replayed).
    complete: BTreeSet<BlockId>,
    /// The applied branch, genesis-exclusive: `applied[h-1]` is the
    /// block at height `h`.
    applied: Vec<BlockId>,
    /// Captured undo state, parallel to `applied`.
    undos: Vec<BlockUndo<S>>,
    /// Gossip mempool: transactions heard but not applied on the
    /// current branch, by canonical sequence number.
    pub(crate) mempool: BTreeMap<u64, PendingTx<S::Msg>>,
    /// Sequence numbers applied on the current branch.
    applied_seqs: BTreeSet<u64>,
    /// Ticks since the head last moved (fork patience counter).
    pub(crate) head_age: u64,
    /// Tick at which this node's head first matched the canonical tip
    /// and has matched ever since (`None` = currently diverged).
    pub(crate) converged_at: Option<u64>,
    /// Branch switches that popped at least one block.
    pub(crate) reorgs: u64,
    /// Deepest single reorg (blocks popped).
    pub(crate) max_reorg_depth: u64,
}

impl<S: CaptureStateMachine> Node<S> {
    pub(crate) fn new(chain: Chain<S>) -> Self {
        assert_eq!(chain.round(), 0, "replicas start from genesis");
        Self {
            chain,
            blocks: BTreeMap::new(),
            children: BTreeMap::new(),
            complete: BTreeSet::new(),
            applied: Vec::new(),
            undos: Vec::new(),
            mempool: BTreeMap::new(),
            applied_seqs: BTreeSet::new(),
            head_age: 0,
            converged_at: None,
            reorgs: 0,
            max_reorg_depth: 0,
        }
    }

    /// The applied head: `(block id, height)`.
    pub(crate) fn head(&self) -> (BlockId, u64) {
        match self.applied.last() {
            Some(id) => (*id, self.applied.len() as u64),
            None => (GENESIS, 0),
        }
    }

    /// Whether this node knows the block.
    pub(crate) fn knows(&self, id: BlockId) -> bool {
        id == GENESIS || self.blocks.contains_key(&id)
    }

    /// A known block by id, cloned for re-gossip.
    pub(crate) fn block(&self, id: BlockId) -> Option<NetBlock<S::Msg>> {
        self.blocks.get(&id).cloned()
    }

    /// Records a gossiped transaction in the mempool (skipping ones
    /// already applied on the current branch).
    pub(crate) fn observe_tx(&mut self, tx: PendingTx<S::Msg>) {
        if !self.applied_seqs.contains(&tx.seq) {
            self.mempool.entry(tx.seq).or_insert(tx);
        }
    }

    /// Inserts a block into the tree. Returns `false` for a duplicate.
    /// The caller runs [`Node::try_advance`] afterwards, and — if the
    /// parent is unknown — requests it from the sender.
    pub(crate) fn insert_block(&mut self, block: NetBlock<S::Msg>) -> bool {
        let id = block.id;
        if self.knows(id) {
            return false;
        }
        let parent = block.parent;
        self.children.entry(parent).or_default().push(id);
        self.blocks.insert(id, block);
        // Completeness cascade: a block whose parent's ancestry is fully
        // known completes, and may complete buffered orphan descendants.
        if parent == GENESIS || self.complete.contains(&parent) {
            let mut queue = VecDeque::from([id]);
            while let Some(b) = queue.pop_front() {
                if self.complete.insert(b) {
                    if let Some(kids) = self.children.get(&b) {
                        queue.extend(kids.iter().copied());
                    }
                }
            }
        }
        true
    }

    /// The first unknown ancestor above `id`, if its branch is still
    /// incomplete — the anti-entropy back-fill target.
    pub(crate) fn missing_ancestor(&self, id: BlockId) -> Option<BlockId> {
        let mut at = id;
        loop {
            match self.blocks.get(&at) {
                None => return if at == GENESIS { None } else { Some(at) },
                Some(b) => {
                    if self.complete.contains(&at) {
                        return None;
                    }
                    at = b.parent;
                }
            }
        }
    }

    /// Longest-chain fork choice over complete blocks: greatest height;
    /// ties prefer the canonical proposer's block, then the smaller id
    /// (both deterministic and identical on every node).
    fn best_head(&self) -> BlockId {
        type ForkKey = (u64, bool, std::cmp::Reverse<BlockId>);
        let mut best: Option<(ForkKey, BlockId)> = None;
        for (&id, b) in &self.blocks {
            if !self.complete.contains(&id) {
                continue;
            }
            let key = (b.height, b.proposer == 0, std::cmp::Reverse(id));
            if best.as_ref().is_none_or(|(k, _)| key > *k) {
                best = Some((key, id));
            }
        }
        best.map_or(GENESIS, |(_, id)| id)
    }

    /// Re-runs fork choice and, if a better branch exists, switches to
    /// it: pops the divergent suffix (reverting state through the
    /// captured undo stack, returning transactions to the mempool) and
    /// applies the winning branch's blocks. Returns the number of
    /// blocks popped (0 for a plain extension or no change).
    pub(crate) fn try_advance(&mut self) -> usize {
        let target = self.best_head();
        if target == self.head().0 {
            return 0;
        }
        // The target branch, genesis-exclusive, oldest first.
        let mut branch: Vec<BlockId> = Vec::new();
        let mut at = target;
        while at != GENESIS {
            branch.push(at);
            at = self.blocks[&at].parent;
        }
        branch.reverse();
        // Common prefix with the applied branch.
        let mut common = 0;
        while common < self.applied.len()
            && common < branch.len()
            && self.applied[common] == branch[common]
        {
            common += 1;
        }
        let popped = self.applied.len() - common;
        if popped > 0 {
            self.reorgs += 1;
            self.max_reorg_depth = self.max_reorg_depth.max(popped as u64);
        }
        for _ in 0..popped {
            let undo = self.undos.pop().expect("undo per applied block");
            self.chain.revert_last_block(undo);
            let id = self.applied.pop().expect("popped block exists");
            for tx in &self.blocks[&id].txs {
                self.applied_seqs.remove(&tx.seq);
                self.mempool.insert(tx.seq, tx.clone());
            }
        }
        for &id in &branch[common..] {
            let block = &self.blocks[&id];
            debug_assert_eq!(block.height, self.chain.round() + 1);
            let txs = block.txs.clone();
            for tx in &txs {
                self.applied_seqs.insert(tx.seq);
                self.mempool.remove(&tx.seq);
            }
            let undo = self.chain.apply_block_captured(txs);
            self.applied.push(id);
            self.undos.push(undo);
        }
        self.head_age = 0;
        popped
    }

    /// Proposes a block on the current head from the gossip mempool —
    /// the fork source: a node only does this when its head has been
    /// stale past the patience window, so the block competes with
    /// canonical blocks it has not seen. The block is inserted and
    /// applied locally; the caller gossips it.
    pub(crate) fn produce(&mut self, proposer: usize) -> NetBlock<S::Msg> {
        let (parent, height) = self.head();
        let txs: Vec<PendingTx<S::Msg>> = self.mempool.values().cloned().collect();
        let block = NetBlock {
            id: block_id(height + 1, proposer, parent, &txs),
            parent,
            height: height + 1,
            proposer,
            txs,
        };
        self.insert_block(block.clone());
        let popped = self.try_advance();
        debug_assert_eq!(popped, 0, "own production extends the head");
        block
    }
}
