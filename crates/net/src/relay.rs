//! Relay policies: the adversary's grip on the wire.
//!
//! Every message handed to the gossip layer passes through one
//! [`RelayPolicy`] before link faults (seeded delay, loss, duplicates)
//! apply. An honest relay forwards everything; the MEV flavors delay or
//! withhold *block* propagation to keep chosen victims' chain views
//! stale — the network-level generalization of mempool front-running:
//! instead of reordering transactions inside a block, the adversary
//! reorders *chain knowledge* across nodes.

use crate::config::RelaySpec;
use crate::sim::NetMsg;

/// What the relay decided for one message on one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayDecision {
    /// Deliver normally (link faults still apply).
    Forward,
    /// Deliver, but add this many ticks of delay first.
    Delay(u64),
    /// Censor the message entirely.
    Drop,
}

/// An adversarial (or honest) relay between every pair of nodes.
///
/// Implementations must be deterministic in their inputs — the
/// convergence differential replays runs bit-exactly from the seed.
pub trait RelayPolicy<M> {
    /// Decides the fate of `msg` sent `from → to` at `tick`.
    fn relay(&mut self, tick: u64, from: usize, to: usize, msg: &NetMsg<M>) -> RelayDecision;
}

/// Forwards everything unchanged.
pub struct HonestRelay;

impl<M> RelayPolicy<M> for HonestRelay {
    fn relay(&mut self, _tick: u64, _from: usize, _to: usize, _msg: &NetMsg<M>) -> RelayDecision {
        RelayDecision::Forward
    }
}

/// Delays block propagation to chosen victims by a fixed number of
/// extra ticks. Victims run behind the head, propose stale forks and
/// reorg when the delayed blocks finally land.
pub struct DelayTargetsRelay {
    victims: Vec<usize>,
    extra: u64,
}

impl DelayTargetsRelay {
    /// Targets `victims` with `extra` ticks of block-delivery delay.
    pub fn new(victims: Vec<usize>, extra: u64) -> Self {
        Self { victims, extra }
    }
}

impl<M> RelayPolicy<M> for DelayTargetsRelay {
    fn relay(&mut self, _tick: u64, _from: usize, to: usize, msg: &NetMsg<M>) -> RelayDecision {
        if matches!(msg, NetMsg::Block(_)) && self.victims.contains(&to) {
            RelayDecision::Delay(self.extra)
        } else {
            RelayDecision::Forward
        }
    }
}

/// Withholds the sequencer's blocks and releases them in bursts: every
/// block message from node 0 is delayed to the next multiple of
/// `period`. Between bursts the replicas see a frozen chain — once
/// their patience runs out they fork — and each burst forces them to
/// reorg back onto the canonical branch.
pub struct WithholdReleaseRelay {
    period: u64,
}

impl WithholdReleaseRelay {
    /// Releases withheld blocks every `period` ticks.
    pub fn new(period: u64) -> Self {
        Self {
            period: period.max(1),
        }
    }
}

impl<M> RelayPolicy<M> for WithholdReleaseRelay {
    fn relay(&mut self, tick: u64, from: usize, _to: usize, msg: &NetMsg<M>) -> RelayDecision {
        if from == 0 && matches!(msg, NetMsg::Block(_)) {
            RelayDecision::Delay(self.period - 1 - (tick % self.period))
        } else {
            RelayDecision::Forward
        }
    }
}

/// Builds the boxed policy a [`RelaySpec`] names.
pub fn build_relay<M>(spec: &RelaySpec) -> Box<dyn RelayPolicy<M>> {
    match spec {
        RelaySpec::Honest => Box::new(HonestRelay),
        RelaySpec::DelayTargets { victims, extra } => {
            Box::new(DelayTargetsRelay::new(victims.clone(), *extra))
        }
        RelaySpec::WithholdRelease { period } => Box::new(WithholdReleaseRelay::new(*period)),
    }
}
