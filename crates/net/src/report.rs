//! The network run's serializable outcome.

/// Counters and convergence facts for one simulated network run.
///
/// Everything here derives from the canonical block feed (which is
/// thread-count independent) and the seeded gossip layer, so the JSON
/// is byte-stable across `DRAGOON_THREADS` — safe to golden-gate — but
/// is kept out of `MarketReport::to_json` so pre-net witnesses stay
/// byte-identical.
#[derive(Clone, Debug, Default)]
pub struct NetReport {
    /// Node count (including the sequencer's replica, node 0).
    pub nodes: usize,
    /// Virtual clock ticks elapsed (rounds + final drain).
    pub ticks: u64,
    /// Messages handed to the gossip layer.
    pub messages_sent: u64,
    /// Messages lost to partitions, link loss or relay censorship.
    pub messages_dropped: u64,
    /// Duplicate deliveries injected by the link layer.
    pub duplicates_delivered: u64,
    /// Fork blocks produced by stalled replicas.
    pub forks_produced: u64,
    /// Branch switches that popped at least one applied block, summed
    /// over nodes.
    pub reorgs: u64,
    /// Deepest single reorg (blocks popped and re-applied).
    pub max_reorg_depth: u64,
    /// Scheduled partition windows in the scenario.
    pub partition_windows: usize,
    /// Ticks spent in the final convergence drain.
    pub drain_ticks: u64,
    /// Whether every node ended on the canonical head.
    pub converged: bool,
    /// Per-node tick at which the node's head reached the canonical
    /// tip and stayed there (`-1` = never converged).
    pub convergence_tick: Vec<i64>,
}

impl NetReport {
    /// Compact single-object JSON.
    pub fn to_json(&self) -> String {
        self.metric_set().to_json_object()
    }

    /// The network counters as one registry [`dragoon_trace::MetricSet`]
    /// (`net_*` names); [`NetReport::to_json`] is a thin view over this
    /// set, byte-identical to the historical serialization.
    pub fn metric_set(&self) -> dragoon_trace::MetricSet {
        dragoon_trace::MetricSet::new("net")
            .gauge("nodes", "net_nodes", self.nodes as u64)
            .counter("ticks", "net_ticks_total", self.ticks)
            .counter(
                "messages_sent",
                "net_messages_sent_total",
                self.messages_sent,
            )
            .counter(
                "messages_dropped",
                "net_messages_dropped_total",
                self.messages_dropped,
            )
            .counter(
                "duplicates_delivered",
                "net_duplicates_delivered_total",
                self.duplicates_delivered,
            )
            .counter(
                "forks_produced",
                "net_forks_produced_total",
                self.forks_produced,
            )
            .counter("reorgs", "net_reorgs_total", self.reorgs)
            .gauge(
                "max_reorg_depth",
                "net_max_reorg_depth_blocks",
                self.max_reorg_depth,
            )
            .gauge(
                "partition_windows",
                "net_partition_windows",
                self.partition_windows as u64,
            )
            .counter("drain_ticks", "net_drain_ticks_total", self.drain_ticks)
            .flag("converged", "net_converged", self.converged)
            .per_index(
                "convergence_tick",
                "net_convergence_tick",
                self.convergence_tick.clone(),
                "node",
            )
    }

    /// A human-oriented one-liner for example binaries.
    pub fn summary(&self) -> String {
        format!(
            "net:    {} nodes over {} ticks — {} msgs ({} dropped, {} dups), \
             {} forks, {} reorgs (max depth {}), converged: {}",
            self.nodes,
            self.ticks,
            self.messages_sent,
            self.messages_dropped,
            self.duplicates_delivered,
            self.forks_produced,
            self.reorgs,
            self.max_reorg_depth,
            self.converged,
        )
    }
}
