//! The network run's serializable outcome.

/// Counters and convergence facts for one simulated network run.
///
/// Everything here derives from the canonical block feed (which is
/// thread-count independent) and the seeded gossip layer, so the JSON
/// is byte-stable across `DRAGOON_THREADS` — safe to golden-gate — but
/// is kept out of `MarketReport::to_json` so pre-net witnesses stay
/// byte-identical.
#[derive(Clone, Debug, Default)]
pub struct NetReport {
    /// Node count (including the sequencer's replica, node 0).
    pub nodes: usize,
    /// Virtual clock ticks elapsed (rounds + final drain).
    pub ticks: u64,
    /// Messages handed to the gossip layer.
    pub messages_sent: u64,
    /// Messages lost to partitions, link loss or relay censorship.
    pub messages_dropped: u64,
    /// Duplicate deliveries injected by the link layer.
    pub duplicates_delivered: u64,
    /// Fork blocks produced by stalled replicas.
    pub forks_produced: u64,
    /// Branch switches that popped at least one applied block, summed
    /// over nodes.
    pub reorgs: u64,
    /// Deepest single reorg (blocks popped and re-applied).
    pub max_reorg_depth: u64,
    /// Scheduled partition windows in the scenario.
    pub partition_windows: usize,
    /// Ticks spent in the final convergence drain.
    pub drain_ticks: u64,
    /// Whether every node ended on the canonical head.
    pub converged: bool,
    /// Per-node tick at which the node's head reached the canonical
    /// tip and stayed there (`-1` = never converged).
    pub convergence_tick: Vec<i64>,
}

impl NetReport {
    /// Compact single-object JSON.
    pub fn to_json(&self) -> String {
        let ticks: Vec<String> = self
            .convergence_tick
            .iter()
            .map(ToString::to_string)
            .collect();
        format!(
            "{{\"nodes\":{},\"ticks\":{},\"messages_sent\":{},\
             \"messages_dropped\":{},\"duplicates_delivered\":{},\
             \"forks_produced\":{},\"reorgs\":{},\"max_reorg_depth\":{},\
             \"partition_windows\":{},\"drain_ticks\":{},\"converged\":{},\
             \"convergence_tick\":[{}]}}",
            self.nodes,
            self.ticks,
            self.messages_sent,
            self.messages_dropped,
            self.duplicates_delivered,
            self.forks_produced,
            self.reorgs,
            self.max_reorg_depth,
            self.partition_windows,
            self.drain_ticks,
            self.converged,
            ticks.join(",")
        )
    }

    /// A human-oriented one-liner for example binaries.
    pub fn summary(&self) -> String {
        format!(
            "net:    {} nodes over {} ticks — {} msgs ({} dropped, {} dups), \
             {} forks, {} reorgs (max depth {}), converged: {}",
            self.nodes,
            self.ticks,
            self.messages_sent,
            self.messages_dropped,
            self.duplicates_delivered,
            self.forks_produced,
            self.reorgs,
            self.max_reorg_depth,
            self.converged,
        )
    }
}
