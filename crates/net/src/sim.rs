//! The discrete-event network engine.
//!
//! One [`NetSim`] owns N [`Node`]s and a single virtual clock. All
//! communication is message passing through a deterministic event
//! queue: every send draws its fate (relay decision, loss, delay,
//! duplication) from one seeded RNG in a fixed iteration order, so a
//! whole run — forks, reorgs, convergence ticks — is bit-reproducible
//! from the seed.
//!
//! ## Topology and roles
//!
//! Node 0 is the **sequencer's replica**: the canonical chain (driven
//! by the market engine) hands each produced block's transaction list
//! to [`NetSim::broadcast_block`]; node 0 applies it instantly and
//! gossips it to every peer. Replicas (nodes 1..N) validate by
//! re-execution and follow longest-chain fork choice. A replica whose
//! head goes stale past the patience window proposes its own block
//! from its gossip mempool — the genuine fork source under partitions
//! and adversarial relays — which the canonical branch later reorgs
//! away (canonical production is strictly faster, so it always wins on
//! height; at equal height the canonical proposer wins the tie).
//!
//! ## Anti-entropy
//!
//! Every tick each node announces its head to every peer; a receiver
//! that does not know the announced block requests it (and, for
//! orphans, walks parent requests) from the announcer. Combined with
//! scheduled partition heals this gives eventual delivery under
//! arbitrary drop rates.

use crate::config::{NetConfig, ProposerPolicy};
use crate::node::{block_id, BlockId, NetBlock, Node, GENESIS};
use crate::relay::{build_relay, RelayDecision, RelayPolicy};
use crate::report::NetReport;
use dragoon_chain::mempool::PendingTx;
use dragoon_chain::replica::CaptureStateMachine;
use dragoon_chain::Chain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A gossip-layer message.
#[derive(Clone, Debug)]
pub enum NetMsg<M> {
    /// Transaction propagation (sequencer → replica mempools).
    Tx(PendingTx<M>),
    /// Block propagation.
    Block(NetBlock<M>),
    /// Anti-entropy head announcement.
    HeadAnnounce {
        /// The announcer's applied head.
        head: BlockId,
        /// Its height.
        height: u64,
    },
    /// Request for a missing block (orphan back-fill).
    BlockRequest {
        /// The wanted block id.
        id: BlockId,
    },
}

/// One queued delivery.
struct Delivery<M> {
    to: usize,
    from: usize,
    msg: NetMsg<M>,
}

/// The N-node network simulation (see module docs).
pub struct NetSim<S: CaptureStateMachine> {
    cfg: NetConfig,
    nodes: Vec<Node<S>>,
    /// The event queue, totally ordered by (due tick, enqueue seq).
    queue: BTreeMap<(u64, u64), Delivery<S::Msg>>,
    next_event: u64,
    tick: u64,
    rng: StdRng,
    relay: Box<dyn RelayPolicy<S::Msg>>,
    /// The canonical branch tip (node 0's feed) and its height.
    canonical_tip: BlockId,
    canonical_height: u64,
    /// Fork production gate: on while the market is live, off during
    /// the final drain (proposers stop once demand stops).
    producing: bool,
    report: NetReport,
}

impl<S: CaptureStateMachine> NetSim<S> {
    /// Builds the network: `nodes` replicas constructed from identical
    /// genesis state (`genesis` is called once per node and must be
    /// deterministic), links seeded from `seed`.
    pub fn new(cfg: NetConfig, seed: u64, genesis: impl Fn() -> Chain<S>) -> Self {
        assert!(cfg.nodes >= 1, "a network needs at least the sequencer");
        let nodes: Vec<Node<S>> = (0..cfg.nodes).map(|_| Node::new(genesis())).collect();
        let relay = build_relay(&cfg.relay);
        let report = NetReport {
            nodes: cfg.nodes,
            partition_windows: cfg.partitions.len(),
            convergence_tick: vec![-1; cfg.nodes],
            ..NetReport::default()
        };
        Self {
            cfg,
            nodes,
            queue: BTreeMap::new(),
            next_event: 0,
            tick: 0,
            rng: StdRng::seed_from_u64(seed),
            relay,
            canonical_tip: GENESIS,
            canonical_height: 0,
            producing: true,
            report,
        }
    }

    /// Replaces the relay policy (for tests injecting custom
    /// adversaries beyond the [`crate::RelaySpec`] built-ins).
    pub fn with_relay(mut self, relay: Box<dyn RelayPolicy<S::Msg>>) -> Self {
        self.relay = relay;
        self
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The virtual clock.
    pub fn tick_now(&self) -> u64 {
        self.tick
    }

    /// Node `i`'s chain replica, for state audits.
    pub fn node_chain(&self, i: usize) -> &Chain<S> {
        &self.nodes[i].chain
    }

    /// Node `i`'s applied head `(block id, height)`.
    pub fn node_head(&self, i: usize) -> (BlockId, u64) {
        self.nodes[i].head()
    }

    /// The canonical tip `(block id, height)` as fed by the sequencer.
    pub fn canonical_head(&self) -> (BlockId, u64) {
        (self.canonical_tip, self.canonical_height)
    }

    /// Announces one canonical-chain submission to every replica's
    /// mempool (transaction propagation; subject to link faults).
    pub fn gossip_tx(&mut self, tx: PendingTx<S::Msg>) {
        self.nodes[0].observe_tx(tx.clone());
        for to in 1..self.nodes.len() {
            self.send(0, to, NetMsg::Tx(tx.clone()));
        }
    }

    /// Feeds one produced canonical block (its executed transaction
    /// list, in receipt order): node 0 applies it directly, gossips it
    /// to every peer, and the network advances one tick.
    pub fn broadcast_block(&mut self, txs: Vec<PendingTx<S::Msg>>) {
        let mut sp = dragoon_trace::span(dragoon_trace::SpanKind::Gossip, self.tick);
        let sent_before = self.report.messages_sent;
        let height = self.canonical_height + 1;
        let block = NetBlock {
            id: block_id(height, 0, self.canonical_tip, &txs),
            parent: self.canonical_tip,
            height,
            proposer: 0,
            txs,
        };
        self.canonical_tip = block.id;
        self.canonical_height = height;
        for to in 1..self.nodes.len() {
            self.send(0, to, NetMsg::Block(block.clone()));
        }
        let sent = self.report.messages_sent - sent_before;
        sp.arg("height", height);
        sp.arg("sent", sent);
        // The gossip layer is seeded and single-threaded, so the send
        // count is deterministic and safe for the golden stream.
        dragoon_trace::event(
            dragoon_trace::SpanKind::Gossip,
            self.tick,
            &[("height", height), ("sent", sent)],
        );
        self.nodes[0].insert_block(block);
        let popped = self.nodes[0].try_advance();
        debug_assert_eq!(popped, 0, "the sequencer's replica never reorgs");
        self.advance_tick();
    }

    /// Runs the final convergence drain: fork production stops, the
    /// clock keeps ticking (delivering queued messages, healing
    /// partitions on schedule, anti-entropy back-filling) until every
    /// node's head is the canonical tip or the configured tick budget
    /// runs out. Returns whether the network converged.
    pub fn drain(&mut self) -> bool {
        self.producing = false;
        let budget = self.cfg.drain_ticks;
        let start = self.tick;
        while !self.all_converged() && self.tick - start < budget {
            self.advance_tick();
        }
        self.report.drain_ticks = self.tick - start;
        self.finish_report();
        self.all_converged()
    }

    /// The network outcome so far (final after [`NetSim::drain`]).
    pub fn report(&self) -> NetReport {
        let mut report = self.report.clone();
        report.ticks = self.tick;
        report.converged = self.all_converged();
        for (i, node) in self.nodes.iter().enumerate() {
            report.convergence_tick[i] = node.converged_at.map_or(-1, |t| t as i64);
            report.reorgs += node.reorgs;
            report.max_reorg_depth = report.max_reorg_depth.max(node.max_reorg_depth);
        }
        report
    }

    fn finish_report(&mut self) {
        self.report = self.report();
        // Node counters are folded in; zero them so a second call to
        // `report()` does not double-count.
        for node in &mut self.nodes {
            node.reorgs = 0;
            node.max_reorg_depth = 0;
        }
    }

    fn all_converged(&self) -> bool {
        self.nodes.iter().all(|n| n.head().0 == self.canonical_tip)
    }

    /// One virtual clock tick: deliver everything due, run
    /// anti-entropy, let a stalled replica propose, update
    /// staleness/convergence bookkeeping.
    fn advance_tick(&mut self) {
        self.tick += 1;
        let heads: Vec<BlockId> = self.nodes.iter().map(|n| n.head().0).collect();
        self.deliver_due();
        self.anti_entropy();
        if self.producing {
            self.fork_production();
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.head().0 == heads[i] {
                node.head_age += 1;
            } else {
                node.head_age = 0;
            }
            if node.head().0 == self.canonical_tip {
                if node.converged_at.is_none() {
                    node.converged_at = Some(self.tick);
                }
            } else {
                node.converged_at = None;
            }
        }
    }

    /// Processes every queued delivery due at or before the current
    /// tick, in deterministic (due, enqueue-seq) order. Processing may
    /// enqueue new same-tick deliveries (zero-delay links); the loop
    /// drains those too.
    fn deliver_due(&mut self) {
        while let Some((&key, _)) = self.queue.first_key_value() {
            if key.0 > self.tick {
                break;
            }
            let delivery = self.queue.remove(&key).expect("peeked entry exists");
            self.process(delivery);
        }
    }

    fn process(&mut self, delivery: Delivery<S::Msg>) {
        let Delivery { to, from, msg } = delivery;
        match msg {
            NetMsg::Tx(tx) => self.nodes[to].observe_tx(tx),
            NetMsg::Block(block) => {
                let id = block.id;
                if self.nodes[to].insert_block(block) {
                    if let Some(missing) = self.nodes[to].missing_ancestor(id) {
                        self.send(to, from, NetMsg::BlockRequest { id: missing });
                    }
                    let popped = self.nodes[to].try_advance();
                    if popped > 0 {
                        dragoon_trace::event(
                            dragoon_trace::SpanKind::Reorg,
                            self.tick,
                            &[("node", to as u64), ("depth", popped as u64)],
                        );
                    }
                }
            }
            NetMsg::HeadAnnounce { head, .. } => {
                if !self.nodes[to].knows(head) {
                    self.send(to, from, NetMsg::BlockRequest { id: head });
                } else if let Some(missing) = self.nodes[to].missing_ancestor(head) {
                    self.send(to, from, NetMsg::BlockRequest { id: missing });
                }
            }
            NetMsg::BlockRequest { id } => {
                if let Some(block) = self.nodes[to].block(id) {
                    self.send(to, from, NetMsg::Block(block));
                }
            }
        }
    }

    /// Every node announces its head to every peer, every tick — the
    /// retry mechanism that makes delivery eventual under drops and
    /// heals.
    fn anti_entropy(&mut self) {
        for from in 0..self.nodes.len() {
            let (head, height) = self.nodes[from].head();
            if head == GENESIS {
                continue;
            }
            for to in 0..self.nodes.len() {
                if to != from {
                    self.send(from, to, NetMsg::HeadAnnounce { head, height });
                }
            }
        }
    }

    /// The scheduled proposer (if any replica is stale past patience)
    /// builds a block on its own head from its gossip mempool.
    fn fork_production(&mut self) {
        let replicas = self.nodes.len().saturating_sub(1);
        if replicas == 0 {
            return;
        }
        let slot = match self.cfg.proposer {
            ProposerPolicy::RoundRobin => 1 + (self.tick as usize % replicas),
            ProposerPolicy::Lottery => 1 + self.rng.gen_range(0..replicas),
        };
        if self.nodes[slot].head_age < self.cfg.fork_patience {
            return;
        }
        let block = self.nodes[slot].produce(slot);
        self.report.forks_produced += 1;
        dragoon_trace::event(
            dragoon_trace::SpanKind::Fork,
            self.tick,
            &[("node", slot as u64), ("height", block.height)],
        );
        for to in 0..self.nodes.len() {
            if to != slot {
                self.send(slot, to, NetMsg::Block(block.clone()));
            }
        }
    }

    /// Whether the link `a ↔ b` is cut by any active partition window.
    fn partitioned(&self, a: usize, b: usize) -> bool {
        self.cfg.partitions.iter().any(|w| w.cuts(self.tick, a, b))
    }

    /// Sends one message through the link `from → to`: partitions cut
    /// it, the relay policy rules on it, then seeded loss / delay /
    /// duplication apply. Deliveries are enqueued, never processed
    /// inline.
    fn send(&mut self, from: usize, to: usize, msg: NetMsg<S::Msg>) {
        self.report.messages_sent += 1;
        if self.partitioned(from, to) {
            self.report.messages_dropped += 1;
            return;
        }
        let extra = match self.relay.relay(self.tick, from, to, &msg) {
            RelayDecision::Forward => 0,
            RelayDecision::Delay(extra) => extra,
            RelayDecision::Drop => {
                self.report.messages_dropped += 1;
                return;
            }
        };
        if self.cfg.drop_per_mille > 0 && self.rng.gen_range(0..1000u32) < self.cfg.drop_per_mille {
            self.report.messages_dropped += 1;
            return;
        }
        let (lo, hi) = self.cfg.delay;
        let delay = if hi > lo {
            self.rng.gen_range(lo..=hi)
        } else {
            lo
        };
        self.enqueue(self.tick + delay + extra, from, to, msg.clone());
        if self.cfg.duplicate_per_mille > 0
            && self.rng.gen_range(0..1000u32) < self.cfg.duplicate_per_mille
        {
            self.report.duplicates_delivered += 1;
            self.enqueue(self.tick + delay + extra + 1, from, to, msg);
        }
    }

    fn enqueue(&mut self, due: u64, from: usize, to: usize, msg: NetMsg<S::Msg>) {
        let seq = self.next_event;
        self.next_event += 1;
        self.queue.insert((due, seq), Delivery { to, from, msg });
    }
}
