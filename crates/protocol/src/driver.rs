//! The end-to-end protocol driver: runs Π_hit over the simulated chain
//! and produces a structured report (settlements, payments, per-phase gas
//! — the raw material of Table III).

use crate::requester::{Requester, Verdict};
use crate::storage::ContentStore;
use crate::worker::{Worker, WorkerBehavior};
use dragoon_chain::{Chain, Gas, GasSchedule, ReorderPolicy, TxStatus};
use dragoon_contract::{HitContract, HitMessage, PhaseWindows, Settlement};
use dragoon_core::task::Answer;
use dragoon_core::workload::Workload;
use dragoon_crypto::commitment::Commitment;
use dragoon_ledger::Address;
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration of a protocol run.
pub struct RunConfig {
    /// The workload (task + gold standards + hidden truth).
    pub workload: Workload,
    /// One behaviour per worker; the first `K` that the contract accepts
    /// fill the task (extra entries model attackers racing for slots).
    pub behaviors: Vec<WorkerBehavior>,
    /// The gas schedule in force.
    pub schedule: GasSchedule,
    /// Optional per-block gas cap (Ethereum mainnet ran ~10M in the
    /// paper's measurement window); `None` = unbounded blocks.
    pub block_gas_limit: Option<dragoon_chain::Gas>,
}

impl RunConfig {
    /// Convenience constructor with unbounded blocks.
    pub fn new(workload: Workload, behaviors: Vec<WorkerBehavior>, schedule: GasSchedule) -> Self {
        Self {
            workload,
            behaviors,
            schedule,
            block_gas_limit: None,
        }
    }
}

/// Gas usage per protocol operation (the rows of Table III).
#[derive(Clone, Debug, Default)]
pub struct GasByPhase {
    /// The requester's publish transaction (includes task-contract
    /// deployment).
    pub publish: Gas,
    /// Each worker's commit transaction.
    pub commits: Vec<Gas>,
    /// Each worker's reveal transaction.
    pub reveals: Vec<Gas>,
    /// The golden opening transaction.
    pub golden: Gas,
    /// Each rejection transaction (PoQoEA `evaluate` or `outrange`).
    pub rejects: Vec<Gas>,
    /// The settlement transaction.
    pub finalize: Gas,
}

impl GasByPhase {
    /// A worker's "submit answers" cost: commit + reveal (the Table III
    /// per-worker row).
    pub fn submit_per_worker(&self) -> Vec<Gas> {
        self.commits
            .iter()
            .zip(&self.reveals)
            .map(|(c, r)| c + r)
            .collect()
    }

    /// Total gas across all protocol transactions.
    pub fn total(&self) -> Gas {
        self.publish
            + self.commits.iter().sum::<Gas>()
            + self.reveals.iter().sum::<Gas>()
            + self.golden
            + self.rejects.iter().sum::<Gas>()
            + self.finalize
    }
}

/// The outcome of a protocol run.
pub struct RunReport {
    /// Per-phase gas usage.
    pub gas: GasByPhase,
    /// Final settlement of every committed worker.
    pub settlements: BTreeMap<Address, Settlement>,
    /// Final ledger balance of every party.
    pub balances: BTreeMap<Address, u128>,
    /// The answers the requester successfully collected (the utility of
    /// the whole exercise).
    pub collected: Vec<(Address, Answer)>,
    /// The chain, for deeper inspection.
    pub chain: Chain<HitContract>,
    /// The requester's address.
    pub requester: Address,
    /// The worker addresses, in behaviour order.
    pub workers: Vec<Address>,
}

/// Runs the full protocol with honest FIFO scheduling.
pub fn run<R: Rng + ?Sized>(config: RunConfig, rng: &mut R) -> RunReport {
    run_with_policy(config, &mut dragoon_chain::FifoPolicy, rng)
}

/// Runs the full protocol under an arbitrary (possibly adversarial)
/// message-scheduling policy.
pub fn run_with_policy<R: Rng + ?Sized>(
    config: RunConfig,
    policy: &mut dyn ReorderPolicy<HitMessage>,
    rng: &mut R,
) -> RunReport {
    let RunConfig {
        workload,
        behaviors,
        schedule,
        block_gas_limit,
    } = config;
    let requester_addr = Address::from_seed(0xd1a6_0000);
    let worker_addrs: Vec<Address> = (0..behaviors.len() as u64)
        .map(|i| Address::from_seed(0x3031_0000 + i))
        .collect();

    let mut store = ContentStore::new();
    let requester = Requester::new(requester_addr, &workload, &mut store, rng);
    let mut chain: Chain<HitContract> =
        Chain::deploy(HitContract::new(PhaseWindows::default()), 0, schedule);
    if let Some(limit) = block_gas_limit {
        chain = chain.with_block_gas_limit(limit);
    }
    chain.ledger.mint(requester_addr, workload.spec.budget);

    // Phase 1: publish.
    chain.submit(requester_addr, requester.publish_msg());
    chain.advance_round(policy);

    // Phase 2-a: commits. Copy-paste attackers observe the honest
    // commitments in the mempool before submitting.
    let mut workers: Vec<Worker> = worker_addrs
        .iter()
        .zip(behaviors)
        .map(|(addr, b)| Worker::new(*addr, b))
        .collect();
    let mut observed: Vec<Commitment> = Vec::new();
    // Honest-ish workers first (they populate the mempool the attacker
    // watches), then the copiers.
    let ek = requester.public_key();
    let mut copier_indices = Vec::new();
    for (i, w) in workers.iter_mut().enumerate() {
        if matches!(w.behavior, WorkerBehavior::CopyPaste) {
            copier_indices.push(i);
            continue;
        }
        if let Some(msg) = w.commit_msg(&workload, &ek, &observed, rng) {
            if let HitMessage::Commit { commitment } = &msg {
                observed.push(*commitment);
            }
            chain.submit(w.addr, msg);
        }
    }
    for i in copier_indices {
        let w = &mut workers[i];
        if let Some(msg) = w.commit_msg(&workload, &ek, &observed, rng) {
            chain.submit(w.addr, msg);
        }
    }
    chain.advance_round(policy);

    // From here the driver is event-driven: each party watches the
    // contract's phase and reacts, tolerating adversarial delays (the
    // phase windows absorb the one-clock-period maximum). A generous
    // round bound guarantees termination even under pathological
    // policies.
    let mut reveals_sent: Vec<Address> = Vec::new();
    let mut golden_sent = false;
    let mut verdicts_sent = false;
    let mut verdict_targets: Vec<Address> = Vec::new();
    let mut finalize_sent = false;
    let mut collected = Vec::new();
    let max_round = chain.round() + 48;
    while !chain.contract().is_settled() && chain.round() < max_round {
        match chain.contract().phase() {
            dragoon_contract::Phase::Reveal => {
                // Phase 2-b: accepted workers open their commitments.
                let accepted = chain.contract().committed_workers().to_vec();
                for w in &workers {
                    if accepted.contains(&w.addr) && !reveals_sent.contains(&w.addr) {
                        reveals_sent.push(w.addr);
                        if let Some(msg) = w.reveal_msg(rng) {
                            chain.submit(w.addr, msg);
                        }
                    }
                }
            }
            dragoon_contract::Phase::Evaluate => {
                // The requester sequences its phase-3 transactions:
                // golden first, rejections once the golden opening has
                // confirmed, settlement once the rejections have
                // confirmed — a rushing adversary can reorder messages
                // *within* a round, so dependent messages must not share
                // one.
                if !golden_sent {
                    golden_sent = true;
                    chain.submit(requester_addr, requester.golden_msg());
                } else if !verdicts_sent && chain.contract().golden().is_some() {
                    // Golden confirmed: read every revealed submission
                    // (from event logs), decrypt, challenge the bad ones.
                    verdicts_sent = true;
                    let mut msgs = Vec::new();
                    for addr in chain.contract().committed_workers().to_vec() {
                        if let Some(cts) = chain.contract().revealed(&addr) {
                            match requester.evaluate(addr, cts, rng) {
                                Verdict::Accept { answer, .. } => collected.push((addr, answer)),
                                Verdict::RejectOutOfRange { msg } => {
                                    verdict_targets.push(addr);
                                    msgs.push(msg);
                                }
                                Verdict::RejectLowQuality { msg, .. } => {
                                    verdict_targets.push(addr);
                                    msgs.push(msg);
                                }
                            }
                        }
                    }
                    for msg in msgs {
                        chain.submit(requester_addr, msg);
                    }
                } else if !finalize_sent
                    && verdicts_sent
                    && verdict_targets
                        .iter()
                        .all(|w| chain.contract().settlement(w).is_some())
                    && chain
                        .contract()
                        .evaluate_deadline()
                        .is_some_and(|d| chain.round() >= d)
                {
                    // Deadline passed and all rejections confirmed:
                    // settle explicitly (the clock-driven settlement is
                    // the gas-free backstop if this gets delayed).
                    finalize_sent = true;
                    chain.submit(requester_addr, HitMessage::Finalize);
                }
            }
            _ => {}
        }
        chain.advance_round(policy);
    }
    assert!(chain.contract().is_settled(), "protocol must terminate");

    // Collect the report.
    let mut gas = GasByPhase::default();
    for r in chain.receipts() {
        if r.status != TxStatus::Ok {
            continue;
        }
        match r.label {
            "publish" => gas.publish = r.gas_used,
            "commit" => gas.commits.push(r.gas_used),
            "reveal" => gas.reveals.push(r.gas_used),
            "golden" => gas.golden = r.gas_used,
            "outrange" | "evaluate" => gas.rejects.push(r.gas_used),
            "finalize" => gas.finalize = r.gas_used,
            _ => {}
        }
    }
    let mut settlements = BTreeMap::new();
    for addr in chain.contract().committed_workers().to_vec() {
        if let Some(s) = chain.contract().settlement(&addr) {
            settlements.insert(addr, s.clone());
        }
    }
    let mut balances = BTreeMap::new();
    balances.insert(requester_addr, chain.ledger.balance(&requester_addr));
    for addr in &worker_addrs {
        balances.insert(*addr, chain.ledger.balance(addr));
    }
    RunReport {
        gas,
        settlements,
        balances,
        collected,
        chain,
        requester: requester_addr,
        workers: worker_addrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_contract::RejectReason;
    use dragoon_core::workload::{imagenet_workload, AnswerModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BUDGET: u128 = 4_000_000;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xd21e)
    }

    fn honest(n: usize, accuracy: f64) -> Vec<WorkerBehavior> {
        vec![WorkerBehavior::Honest(AnswerModel::Diligent { accuracy }); n]
    }

    #[test]
    fn four_honest_workers_all_paid() {
        let mut rng = rng();
        let workload = imagenet_workload(BUDGET, &mut rng);
        let report = run(
            RunConfig::new(workload, honest(4, 1.0), GasSchedule::istanbul()),
            &mut rng,
        );
        assert_eq!(report.collected.len(), 4);
        for w in &report.workers {
            assert_eq!(report.balances[w], BUDGET / 4);
            assert_eq!(report.settlements[w], Settlement::Paid);
        }
        assert_eq!(report.balances[&report.requester], 0);
    }

    #[test]
    fn low_quality_worker_rejected_and_share_refunded() {
        let mut rng = rng();
        let workload = imagenet_workload(BUDGET, &mut rng);
        let mut behaviors = honest(3, 1.0);
        behaviors.push(WorkerBehavior::Honest(AnswerModel::Diligent {
            accuracy: 0.0,
        }));
        let report = run(
            RunConfig::new(workload, behaviors, GasSchedule::istanbul()),
            &mut rng,
        );
        let bad = report.workers[3];
        assert_eq!(report.balances[&bad], 0);
        assert!(matches!(
            report.settlements[&bad],
            Settlement::Rejected(RejectReason::LowQuality { .. })
        ));
        assert_eq!(report.balances[&report.requester], BUDGET / 4);
        assert_eq!(report.gas.rejects.len(), 1);
        // Three good answers collected.
        assert_eq!(report.collected.len(), 3);
    }

    #[test]
    fn out_of_range_worker_rejected() {
        let mut rng = rng();
        let workload = imagenet_workload(BUDGET, &mut rng);
        let mut behaviors = honest(3, 1.0);
        behaviors.push(WorkerBehavior::Honest(AnswerModel::OutOfRange));
        let report = run(
            RunConfig::new(workload, behaviors, GasSchedule::istanbul()),
            &mut rng,
        );
        let bad = report.workers[3];
        assert_eq!(report.balances[&bad], 0);
        assert!(matches!(
            report.settlements[&bad],
            Settlement::Rejected(RejectReason::OutOfRange { .. })
        ));
    }

    #[test]
    fn copy_paste_attacker_locked_out() {
        let mut rng = rng();
        let workload = imagenet_workload(BUDGET, &mut rng);
        // 4 honest fill the task; a 5th copier races them.
        let mut behaviors = honest(4, 1.0);
        behaviors.push(WorkerBehavior::CopyPaste);
        let report = run(
            RunConfig::new(workload, behaviors, GasSchedule::istanbul()),
            &mut rng,
        );
        let copier = report.workers[4];
        assert_eq!(report.balances[&copier], 0);
        assert!(!report.settlements.contains_key(&copier));
        // The honest four were all paid.
        for w in &report.workers[..4] {
            assert_eq!(report.balances[w], BUDGET / 4);
        }
    }

    #[test]
    fn non_revealer_unpaid_share_refunded() {
        let mut rng = rng();
        let workload = imagenet_workload(BUDGET, &mut rng);
        let mut behaviors = honest(3, 1.0);
        behaviors.push(WorkerBehavior::CommitNoReveal);
        let report = run(
            RunConfig::new(workload, behaviors, GasSchedule::istanbul()),
            &mut rng,
        );
        let silent = report.workers[3];
        assert_eq!(report.balances[&silent], 0);
        assert_eq!(
            report.settlements[&silent],
            Settlement::Rejected(RejectReason::NoReveal)
        );
        assert_eq!(report.balances[&report.requester], BUDGET / 4);
    }

    #[test]
    fn gas_report_has_all_rows() {
        let mut rng = rng();
        let workload = imagenet_workload(BUDGET, &mut rng);
        let report = run(
            RunConfig::new(workload, honest(4, 1.0), GasSchedule::istanbul()),
            &mut rng,
        );
        assert!(report.gas.publish > 1_000_000);
        assert_eq!(report.gas.commits.len(), 4);
        assert_eq!(report.gas.reveals.len(), 4);
        assert!(report.gas.golden > 21_000);
        assert!(report.gas.finalize > 21_000);
        assert_eq!(report.gas.submit_per_worker().len(), 4);
        let total = report.gas.total();
        assert!(
            (8_000_000..20_000_000).contains(&total),
            "total gas = {total}"
        );
    }

    #[test]
    fn collected_answers_match_ground_truth_for_perfect_workers() {
        let mut rng = rng();
        let workload = imagenet_workload(BUDGET, &mut rng);
        let truth = workload.truth.clone();
        let report = run(
            RunConfig::new(workload, honest(4, 1.0), GasSchedule::istanbul()),
            &mut rng,
        );
        for (_, answer) in &report.collected {
            assert_eq!(answer.0, truth.0);
        }
    }
}
