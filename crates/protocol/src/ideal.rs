//! The ideal functionality `F_hit` of decentralized HITs (Fig 2).
//!
//! `F_hit` is the *trusted* specification the real protocol must emulate:
//! it receives plaintext answers directly, computes quality itself, and
//! drives the ledger for conditional payments. The real-vs-ideal
//! integration tests (`tests/real_vs_ideal.rs`) run Π_hit and `F_hit` on
//! identical inputs and compare the joint outcomes — the executable
//! counterpart of the paper's Theorem 1 simulation argument.
//!
//! The leakage log records exactly what Fig 2 leaks to the adversary
//! `S`: message types, lengths, and — once evaluation happens — the gold
//! standards. Confidentiality tests assert nothing else escapes.

use dragoon_core::quality::quality;
use dragoon_core::task::{Answer, GoldenStandards};
use dragoon_crypto::elgamal::PlaintextRange;
use dragoon_ledger::{Address, Amount, Ledger, LedgerError};
use std::collections::BTreeMap;
use std::fmt;

/// The phase of the ideal functionality.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdealPhase {
    /// Awaiting the publish input.
    Publish,
    /// Phase 2: collecting answers until `K` arrive.
    Collect,
    /// Phase 3: evaluating answers.
    Evaluate,
    /// Finished.
    Done,
}

/// What `F_hit` leaks to the simulator/adversary (Fig 2, blue/brown
/// annotations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Leakage {
    /// `(publishing, R, N, B, K, range, Θ, |G|, |Gs|)`.
    Publishing {
        /// The requester.
        requester: Address,
        /// Number of questions.
        n: usize,
        /// The budget.
        budget: Amount,
        /// Worker quota.
        k: usize,
        /// Number of gold standards (only the size leaks!).
        golds: usize,
    },
    /// `(answering, W_j, |a_j|)` — only the length of the answer leaks.
    Answering {
        /// The answering worker.
        worker: Address,
        /// The answer length.
        len: usize,
    },
    /// `(evaluated, W_j, G, Gs)` — evaluation publishes the golds.
    Evaluated {
        /// The evaluated worker.
        worker: Address,
    },
    /// `(outranged, W_j, a_{i,j})`.
    OutRanged {
        /// The worker.
        worker: Address,
        /// The out-of-range value.
        value: u64,
    },
}

/// Errors of the ideal functionality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdealError {
    /// Input arrived in the wrong phase.
    WrongPhase,
    /// The requester lacks the budget (`nofund`).
    NoFund,
    /// A worker tried to answer twice (`if (W_j, ·) ∈ answers, do
    /// nothing`).
    DuplicateAnswer,
    /// Evaluation referenced an unknown worker.
    UnknownWorker,
    /// Only the requester can evaluate.
    NotRequester,
}

impl fmt::Display for IdealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdealError::WrongPhase => write!(f, "wrong phase"),
            IdealError::NoFund => write!(f, "insufficient funds"),
            IdealError::DuplicateAnswer => write!(f, "worker already answered"),
            IdealError::UnknownWorker => write!(f, "unknown worker"),
            IdealError::NotRequester => write!(f, "not the requester"),
        }
    }
}

impl std::error::Error for IdealError {}

/// The ideal functionality `F_hit`, in the `L`-hybrid model.
pub struct IdealHit {
    /// The ledger functionality `L` it calls as a subroutine.
    pub ledger: Ledger,
    phase: IdealPhase,
    /// The functionality's own escrow address.
    addr: Address,
    requester: Option<Address>,
    n: usize,
    budget: Amount,
    k: usize,
    range: PlaintextRange,
    theta: u64,
    golden: Option<GoldenStandards>,
    answers: Vec<(Address, Option<Answer>)>,
    settled: BTreeMap<Address, bool>, // worker -> paid?
    leakage: Vec<Leakage>,
}

impl IdealHit {
    /// Creates the functionality over a ledger.
    pub fn new(ledger: Ledger) -> Self {
        Self {
            ledger,
            phase: IdealPhase::Publish,
            addr: Address::from_seed(0xf417),
            requester: None,
            n: 0,
            budget: 0,
            k: 0,
            range: PlaintextRange::binary(),
            theta: 0,
            golden: None,
            answers: Vec::new(),
            settled: BTreeMap::new(),
            leakage: Vec::new(),
        }
    }

    /// The current phase.
    pub fn phase(&self) -> IdealPhase {
        self.phase
    }

    /// The leakage log (what the adversary saw).
    pub fn leakage(&self) -> &[Leakage] {
        &self.leakage
    }

    /// Phase 1: `(publish, N, B, K, range, Θ, G, Gs)` from `R`.
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &mut self,
        requester: Address,
        n: usize,
        budget: Amount,
        k: usize,
        range: PlaintextRange,
        theta: u64,
        golden: GoldenStandards,
    ) -> Result<(), IdealError> {
        if self.phase != IdealPhase::Publish {
            return Err(IdealError::WrongPhase);
        }
        self.leakage.push(Leakage::Publishing {
            requester,
            n,
            budget,
            k,
            golds: golden.len(),
        });
        match self.ledger.freeze(self.addr, requester, budget) {
            Ok(()) => {}
            Err(LedgerError::InsufficientFunds { .. }) => return Err(IdealError::NoFund),
            Err(_) => return Err(IdealError::NoFund),
        }
        self.requester = Some(requester);
        self.n = n;
        self.budget = budget;
        self.k = k;
        self.range = range;
        self.theta = theta;
        self.golden = Some(golden);
        self.phase = IdealPhase::Collect;
        Ok(())
    }

    /// Phase 2: `(answer, a_j)` from `W_j`. `None` models `⊥` (a worker
    /// the adversary silenced).
    pub fn submit_answer(
        &mut self,
        worker: Address,
        answer: Option<Answer>,
    ) -> Result<(), IdealError> {
        if self.phase != IdealPhase::Collect {
            return Err(IdealError::WrongPhase);
        }
        if self.answers.iter().any(|(w, _)| *w == worker) {
            // Fig 2: "if (Wj, ·) ∈ answers, do nothing".
            return Err(IdealError::DuplicateAnswer);
        }
        self.leakage.push(Leakage::Answering {
            worker,
            len: answer.as_ref().map(|a| a.len()).unwrap_or(0),
        });
        self.answers.push((worker, answer));
        if self.answers.len() == self.k {
            self.phase = IdealPhase::Evaluate;
        }
        Ok(())
    }

    /// The answers the requester receives (Fig 2 sends `answers` to `R`).
    pub fn answers(&self) -> &[(Address, Option<Answer>)] {
        &self.answers
    }

    /// Phase 3: `(evaluate, W_j)` from `R` — the functionality computes
    /// the quality itself and pays iff `Quality ≥ Θ`.
    pub fn evaluate(&mut self, sender: Address, worker: Address) -> Result<(), IdealError> {
        self.check_evaluate(sender, &worker)?;
        let answer = self
            .answers
            .iter()
            .find(|(w, _)| *w == worker)
            .and_then(|(_, a)| a.clone());
        let golden = self.golden.as_ref().expect("published");
        let q = answer.as_ref().map(|a| quality(a, golden)).unwrap_or(0);
        self.leakage.push(Leakage::Evaluated { worker });
        if q >= self.theta {
            self.pay(worker);
        }
        self.settled.insert(worker, q >= self.theta);
        Ok(())
    }

    /// Phase 3: `(outrange, W_j, i)` from `R`.
    pub fn outrange(
        &mut self,
        sender: Address,
        worker: Address,
        index: usize,
    ) -> Result<(), IdealError> {
        self.check_evaluate(sender, &worker)?;
        let answer = self
            .answers
            .iter()
            .find(|(w, _)| *w == worker)
            .and_then(|(_, a)| a.clone());
        let value = answer.as_ref().and_then(|a| a.0.get(index)).copied();
        match value {
            Some(v) if !self.range.contains(v) => {
                // Genuinely out of range: leak it, no payment.
                self.leakage.push(Leakage::OutRanged { worker, value: v });
                self.settled.insert(worker, false);
            }
            _ => {
                // The accusation is false: pay the worker.
                self.pay(worker);
                self.settled.insert(worker, true);
            }
        }
        Ok(())
    }

    fn check_evaluate(&self, sender: Address, worker: &Address) -> Result<(), IdealError> {
        if self.phase != IdealPhase::Evaluate {
            return Err(IdealError::WrongPhase);
        }
        if Some(sender) != self.requester {
            return Err(IdealError::NotRequester);
        }
        if !self.answers.iter().any(|(w, _)| w == worker) {
            return Err(IdealError::UnknownWorker);
        }
        if self.settled.contains_key(worker) {
            return Err(IdealError::DuplicateAnswer);
        }
        Ok(())
    }

    /// End of phase 3 (the clock period expires): any worker the
    /// requester did not message gets paid by default if their answer is
    /// not `⊥`; leftovers return to the requester.
    pub fn finalize(&mut self) {
        if self.phase != IdealPhase::Evaluate {
            // A task that never filled up refunds on finalize too.
            if self.phase == IdealPhase::Collect {
                let requester = self.requester.expect("published");
                let leftover = self.ledger.balance(&self.addr);
                if leftover > 0 {
                    self.ledger
                        .pay(self.addr, requester, leftover)
                        .expect("own balance");
                }
                self.phase = IdealPhase::Done;
            }
            return;
        }
        for (worker, answer) in self.answers.clone() {
            if self.settled.contains_key(&worker) {
                continue;
            }
            if answer.is_some() {
                self.pay(worker);
                self.settled.insert(worker, true);
            } else {
                self.settled.insert(worker, false);
            }
        }
        let requester = self.requester.expect("published");
        let leftover = self.ledger.balance(&self.addr);
        if leftover > 0 {
            self.ledger
                .pay(self.addr, requester, leftover)
                .expect("own balance");
        }
        self.phase = IdealPhase::Done;
    }

    fn pay(&mut self, worker: Address) {
        let reward = self.budget / self.k as Amount;
        self.ledger
            .pay(self.addr, worker, reward)
            .expect("escrow holds budget");
    }

    /// Whether `worker` ended up paid.
    pub fn was_paid(&self, worker: &Address) -> Option<bool> {
        self.settled.get(worker).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> GoldenStandards {
        GoldenStandards {
            indexes: vec![0, 2],
            answers: vec![1, 0],
        }
    }

    fn setup() -> (IdealHit, Address, Vec<Address>) {
        let mut ledger = Ledger::new();
        let requester = Address::from_byte(1);
        ledger.mint(requester, 1_000);
        let workers: Vec<Address> = (10..14).map(Address::from_byte).collect();
        let mut f = IdealHit::new(ledger);
        f.publish(
            requester,
            4,
            1_000,
            4,
            PlaintextRange::binary(),
            2,
            golden(),
        )
        .unwrap();
        (f, requester, workers)
    }

    #[test]
    fn publish_freezes_budget() {
        let (f, requester, _) = setup();
        assert_eq!(f.ledger.balance(&requester), 0);
        assert_eq!(f.phase(), IdealPhase::Collect);
        assert!(matches!(f.leakage()[0], Leakage::Publishing { .. }));
    }

    #[test]
    fn publish_without_funds_fails() {
        let ledger = Ledger::new();
        let mut f = IdealHit::new(ledger);
        let err = f
            .publish(
                Address::from_byte(1),
                4,
                1_000,
                4,
                PlaintextRange::binary(),
                2,
                golden(),
            )
            .unwrap_err();
        assert_eq!(err, IdealError::NoFund);
    }

    #[test]
    fn collects_exactly_k_answers() {
        let (mut f, _, workers) = setup();
        let good = Answer(vec![1, 0, 0, 0]);
        for w in &workers {
            f.submit_answer(*w, Some(good.clone())).unwrap();
        }
        assert_eq!(f.phase(), IdealPhase::Evaluate);
        assert_eq!(f.answers().len(), 4);
        // A fifth answer is out of phase.
        assert_eq!(
            f.submit_answer(Address::from_byte(99), Some(good)),
            Err(IdealError::WrongPhase)
        );
    }

    #[test]
    fn duplicate_answers_ignored() {
        let (mut f, _, workers) = setup();
        let a = Answer(vec![1, 0, 0, 0]);
        f.submit_answer(workers[0], Some(a.clone())).unwrap();
        assert_eq!(
            f.submit_answer(workers[0], Some(a)),
            Err(IdealError::DuplicateAnswer)
        );
    }

    #[test]
    fn default_payment_on_silence() {
        let (mut f, requester, workers) = setup();
        let good = Answer(vec![1, 0, 0, 0]);
        for w in &workers {
            f.submit_answer(*w, Some(good.clone())).unwrap();
        }
        f.finalize();
        for w in &workers {
            assert_eq!(f.ledger.balance(w), 250);
            assert_eq!(f.was_paid(w), Some(true));
        }
        assert_eq!(f.ledger.balance(&requester), 0);
    }

    #[test]
    fn evaluate_pays_only_qualified() {
        let (mut f, requester, workers) = setup();
        let good = Answer(vec![1, 0, 0, 0]); // quality 2 ≥ Θ=2
        let bad = Answer(vec![0, 0, 1, 0]); // quality 0
        f.submit_answer(workers[0], Some(good.clone())).unwrap();
        f.submit_answer(workers[1], Some(bad)).unwrap();
        f.submit_answer(workers[2], Some(good.clone())).unwrap();
        f.submit_answer(workers[3], Some(good)).unwrap();
        // The trusted functionality computes quality itself — the
        // requester cannot lie about it.
        f.evaluate(requester, workers[0]).unwrap();
        f.evaluate(requester, workers[1]).unwrap();
        f.finalize();
        assert_eq!(f.ledger.balance(&workers[0]), 250);
        assert_eq!(f.ledger.balance(&workers[1]), 0);
        assert_eq!(f.ledger.balance(&workers[2]), 250);
        assert_eq!(f.ledger.balance(&workers[3]), 250);
        // The bad worker's share returned to the requester.
        assert_eq!(f.ledger.balance(&requester), 250);
    }

    #[test]
    fn outrange_checks_the_actual_value() {
        let (mut f, requester, workers) = setup();
        let outr = Answer(vec![9, 0, 0, 0]);
        let good = Answer(vec![1, 0, 0, 0]);
        f.submit_answer(workers[0], Some(outr)).unwrap();
        f.submit_answer(workers[1], Some(good.clone())).unwrap();
        f.submit_answer(workers[2], Some(good.clone())).unwrap();
        f.submit_answer(workers[3], Some(good)).unwrap();
        f.outrange(requester, workers[0], 0).unwrap();
        // A false accusation pays the worker.
        f.outrange(requester, workers[1], 0).unwrap();
        f.finalize();
        assert_eq!(f.ledger.balance(&workers[0]), 0);
        assert_eq!(f.ledger.balance(&workers[1]), 250);
        assert!(f
            .leakage()
            .iter()
            .any(|l| matches!(l, Leakage::OutRanged { value: 9, .. })));
    }

    #[test]
    fn bottom_answers_unpaid() {
        let (mut f, requester, workers) = setup();
        let good = Answer(vec![1, 0, 0, 0]);
        f.submit_answer(workers[0], None).unwrap(); // ⊥
        for w in &workers[1..] {
            f.submit_answer(*w, Some(good.clone())).unwrap();
        }
        f.finalize();
        assert_eq!(f.ledger.balance(&workers[0]), 0);
        assert_eq!(f.ledger.balance(&requester), 250);
    }

    #[test]
    fn only_requester_evaluates() {
        let (mut f, _, workers) = setup();
        let good = Answer(vec![1, 0, 0, 0]);
        for w in &workers {
            f.submit_answer(*w, Some(good.clone())).unwrap();
        }
        assert_eq!(
            f.evaluate(workers[0], workers[1]),
            Err(IdealError::NotRequester)
        );
    }

    #[test]
    fn leakage_hides_answer_content() {
        // The only thing leaked during collection is the answer LENGTH.
        let (mut f, _, workers) = setup();
        let a = Answer(vec![1, 1, 1, 1]);
        f.submit_answer(workers[0], Some(a)).unwrap();
        match &f.leakage()[1] {
            Leakage::Answering { len, .. } => assert_eq!(*len, 4),
            other => panic!("unexpected leakage {other:?}"),
        }
    }

    #[test]
    fn unfilled_task_refunds_on_finalize() {
        let (mut f, requester, workers) = setup();
        f.submit_answer(workers[0], Some(Answer(vec![1, 0, 0, 0])))
            .unwrap();
        // Only 1 of 4 answers arrived; the task never fills.
        f.finalize();
        assert_eq!(f.phase(), IdealPhase::Done);
        assert_eq!(f.ledger.balance(&requester), 1_000);
    }
}
