//! # dragoon-protocol
//!
//! The decentralized HIT protocol Π_hit (Fig 5) and its security
//! harness:
//!
//! * [`requester`] / [`worker`] — the off-chain clients, including
//!   adversarial worker behaviours (copy-paste free-riders, silent
//!   committers, malformed reveals).
//! * [`driver`] — end-to-end protocol runs over the simulated chain,
//!   producing per-phase gas reports (Table III's raw material).
//! * [`ideal`] — the ideal functionality `F_hit` (Fig 2), the trusted
//!   specification used by the real-vs-ideal comparison tests.
//! * [`proving`] — the asynchronous proving pipeline: a keyed proof-job
//!   queue and scoped worker pool with deterministic per-job RNG
//!   streams and modeled (tick-based) proving latency.
//! * [`storage`] — content-addressed off-chain storage (the Swarm
//!   stand-in for task question sets).
//! * [`strawman`] — the transparent (no-privacy) design the paper's
//!   introduction shows is broken; used to demonstrate the free-riding
//!   attack Dragoon prevents.

pub mod driver;
pub mod ideal;
pub mod proving;
pub mod requester;
pub mod storage;
pub mod strawman;
pub mod worker;

pub use driver::{run, run_with_policy, GasByPhase, RunConfig, RunReport};
pub use ideal::{IdealHit, IdealPhase, Leakage};
pub use proving::{
    job_rng, JobKey, ProofJob, ProofPhase, ProvingConfig, ProvingService, ProvingStats,
};
pub use requester::{Evaluator, Requester, Verdict};
pub use storage::ContentStore;
pub use worker::{CommitArtifacts, Worker, WorkerBehavior};
