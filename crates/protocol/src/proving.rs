//! The asynchronous proving pipeline: a keyed job queue plus a scoped
//! worker pool that takes proving (answer encryption, commitments,
//! VPKE / PoQoEA evaluation proofs) off the agent hot path.
//!
//! Agents no longer prove inline while the round advances. Instead each
//! drive enqueues a [`ProofJob`] keyed by `(agent, instance, phase)`;
//! the [`ProvingService`] computes the batch on a scoped thread pool and
//! releases each finished output at `enqueue_tick + latency`, where the
//! latency is **modeled** — derived deterministically from the job's
//! declared cost units and [`ProvingConfig::ticks_per_kilocost`], never
//! from wall clock. Released outputs re-enter the sim in deterministic
//! `(ready_tick, enqueue_seq)` order, so the mempool sequence — and
//! therefore committed chain state — is bit-identical for any
//! `DRAGOON_THREADS`.
//!
//! Determinism of the proofs themselves comes from per-job RNG streams:
//! [`job_rng`] splits the master seed by the job key, so a proof's
//! randomness depends only on `(seed, agent, instance, phase)` — not on
//! which worker thread ran it or in what order the pool scheduled it.
//!
//! With the service disabled (the default), the same unified job path
//! runs inline and serially: every job still gets its keyed RNG stream
//! and releases on the tick it was enqueued, which is exactly the
//! async pipeline at zero latency — the equivalence the
//! `proving_equivalence` suite pins down.

use dragoon_ledger::Address;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which protocol phase a proof job belongs to (part of the job key and
/// of the per-job RNG domain separation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProofPhase {
    /// Answer draw + encryption + commitment.
    Commit,
    /// Commitment opening (no proving work; cost 0).
    Reveal,
    /// Decrypt + VPKE / PoQoEA verdict proving.
    Evaluate,
    /// Non-proving control messages (publish, golden, finalize, cancel)
    /// routed through the queue so mempool order is phase-independent.
    Control,
}

impl ProofPhase {
    fn tag(self) -> u64 {
        match self {
            ProofPhase::Commit => 1,
            ProofPhase::Reveal => 2,
            ProofPhase::Evaluate => 3,
            ProofPhase::Control => 4,
        }
    }
}

/// The queue key: which agent asked, for which HIT instance, in which
/// phase. Also the domain-separation input of [`job_rng`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey {
    /// The submitting agent's on-chain identity.
    pub agent: Address,
    /// The HIT instance the job belongs to (`u64::MAX` for jobs not tied
    /// to a single instance).
    pub instance: u64,
    /// The protocol phase.
    pub phase: ProofPhase,
}

/// One unit of proving work: a keyed closure plus its modeled cost.
///
/// The closure receives the job's private RNG stream and returns the
/// engine-defined output (a message to submit, artifacts to install…).
/// It must not touch shared agent state — everything it reads is
/// captured by value at enqueue time.
pub struct ProofJob<T> {
    /// The queue key.
    pub key: JobKey,
    /// Modeled proving cost in abstract cost units (0 for control jobs).
    pub cost: u64,
    /// The work itself, run with the job's keyed RNG stream.
    pub run: Box<dyn FnOnce(&mut StdRng) -> T + Send>,
}

/// How the proving service is wired into a market run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvingConfig {
    /// `true` routes jobs through the async pipeline (parallel compute,
    /// modeled latency); `false` (default) runs the same jobs inline,
    /// serially, at zero latency.
    pub enabled: bool,
    /// Simulated ticks of latency per 1000 cost units (rounded down).
    /// 0 means every proof is ready in the tick it was requested.
    pub ticks_per_kilocost: u64,
}

/// Counters the proving service exposes into `MarketReport`. All fields
/// serialized by [`ProvingStats::to_json`] are thread-independent; the
/// observed `threads` value is kept out of the JSON for exactly that
/// reason.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvingStats {
    /// Jobs enqueued.
    pub jobs: u64,
    /// Jobs whose output was released back into the sim.
    pub completed: u64,
    /// Jobs still pending when the run ended (their HITs settled ⊥ via
    /// the deadline path without them).
    pub dropped: u64,
    /// Outputs released after their session was already closed/settled —
    /// late proofs the engine discarded.
    pub stale: u64,
    /// Peak number of queued (not yet released) jobs.
    pub queue_peak: u64,
    /// Release-latency histogram in ticks: `[0, 1, 2–3, 4–7, 8+]`.
    pub latency_hist: [u64; 5],
    /// Largest observed release latency in ticks.
    pub latency_max: u64,
    /// Proof-cache hits attributable to this run.
    pub cache_hits: u64,
    /// Proof-cache misses (table builds) attributable to this run.
    pub cache_misses: u64,
    /// Release-before-enqueue clock violations: a drained output whose
    /// release tick preceded its enqueue tick. The tick clock is
    /// monotone, so this can never happen on a healthy run; debug
    /// builds assert it, release builds count offenders here (instead
    /// of silently clamping the latency to 0). Always 0.
    pub latency_violations: u64,
    /// Worker threads the pool used. **Thread-dependent — excluded from
    /// the JSON witness.**
    pub threads: u64,
}

impl ProvingStats {
    /// Serializes the thread-independent counters as a JSON object.
    pub fn to_json(&self) -> String {
        self.metric_set().to_json_object()
    }

    /// The proving counters as one registry [`dragoon_trace::MetricSet`]
    /// (`proving_*` names); [`ProvingStats::to_json`] is a thin view
    /// over this set.
    pub fn metric_set(&self) -> dragoon_trace::MetricSet {
        dragoon_trace::MetricSet::new("proving")
            .counter("jobs", "proving_jobs_total", self.jobs)
            .counter("completed", "proving_completed_total", self.completed)
            .counter("dropped", "proving_dropped_total", self.dropped)
            .counter("stale", "proving_stale_total", self.stale)
            .gauge("queue_peak", "proving_queue_peak_jobs", self.queue_peak)
            .hist(
                "latency_hist",
                "proving_latency_ticks",
                self.latency_hist.to_vec(),
                &["0", "1", "3", "7", "+Inf"],
            )
            .gauge("latency_max", "proving_latency_max_ticks", self.latency_max)
            .counter("cache_hits", "proving_cache_hits_total", self.cache_hits)
            .counter(
                "cache_misses",
                "proving_cache_misses_total",
                self.cache_misses,
            )
            .counter(
                "latency_violations",
                "proving_latency_violations_total",
                self.latency_violations,
            )
    }

    fn record_latency(&mut self, ticks: u64) {
        let bucket = match ticks {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=7 => 3,
            _ => 4,
        };
        self.latency_hist[bucket] += 1;
        self.latency_max = self.latency_max.max(ticks);
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-job RNG stream: a splitmix64 sponge over the master seed and
/// the job key. A job's randomness is a pure function of
/// `(seed, agent, instance, phase)` — independent of thread count,
/// scheduling order, and every other job.
pub fn job_rng(master_seed: u64, key: &JobKey) -> StdRng {
    let mut h = splitmix64(master_seed ^ 0xd1a6_0b0b_5eed_0001);
    let absorb = |state: &mut u64, v: u64| {
        *state = splitmix64(*state ^ v);
    };
    // Address: 20 bytes → three u64 words (last one 4-byte padded).
    let a = &key.agent.0;
    let mut word = [0u8; 8];
    for chunk in a.chunks(8) {
        word.fill(0);
        word[..chunk.len()].copy_from_slice(chunk);
        absorb(&mut h, u64::from_le_bytes(word));
    }
    absorb(&mut h, key.instance);
    absorb(&mut h, key.phase.tag());
    StdRng::seed_from_u64(h)
}

struct QueuedOutput<T> {
    ready_tick: u64,
    enqueue_tick: u64,
    seq: u64,
    key: JobKey,
    output: T,
}

/// The proving service: computes proof jobs (in parallel when enabled)
/// and releases their outputs in deterministic `(ready_tick, seq)`
/// order.
pub struct ProvingService<T> {
    master_seed: u64,
    threads: usize,
    config: ProvingConfig,
    queue: Vec<QueuedOutput<T>>,
    next_seq: u64,
    stats: ProvingStats,
}

impl<T: Send> ProvingService<T> {
    /// Creates the service. `threads` is the already-resolved pool width
    /// (`dragoon_chain::resolve_threads`); it only affects wall-clock
    /// speed, never results.
    pub fn new(master_seed: u64, threads: usize, config: ProvingConfig) -> Self {
        Self {
            master_seed,
            threads: threads.max(1),
            config,
            queue: Vec::new(),
            next_seq: 0,
            stats: ProvingStats {
                threads: threads.max(1) as u64,
                ..ProvingStats::default()
            },
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ProvingConfig {
        self.config
    }

    /// Enqueues and computes a batch of jobs requested at `tick`.
    ///
    /// Each job runs with its own [`job_rng`] stream — on the scoped
    /// pool when the service is enabled with >1 thread, inline and in
    /// enqueue order otherwise; both paths produce identical outputs.
    /// The output becomes visible to [`Self::drain_ready`] at
    /// `tick + cost·ticks_per_kilocost/1000` (always `tick` itself when
    /// the service is disabled).
    pub fn submit_batch(&mut self, tick: u64, jobs: Vec<ProofJob<T>>) {
        if jobs.is_empty() {
            return;
        }
        let total_cost: u64 = jobs.iter().map(|j| j.cost).sum();
        let mut sp = dragoon_trace::span(dragoon_trace::SpanKind::Prove, tick);
        sp.arg("jobs", jobs.len() as u64);
        sp.arg("cost", total_cost);
        // The batch's job set (keys + costs) is deterministic, so this
        // event is safe for the golden stream at any thread count.
        dragoon_trace::event(
            dragoon_trace::SpanKind::Prove,
            tick,
            &[("jobs", jobs.len() as u64), ("cost", total_cost)],
        );
        self.stats.jobs += jobs.len() as u64;
        let latencies: Vec<u64> = jobs
            .iter()
            .map(|j| {
                if self.config.enabled {
                    j.cost * self.config.ticks_per_kilocost / 1000
                } else {
                    0
                }
            })
            .collect();
        let keys: Vec<JobKey> = jobs.iter().map(|j| j.key).collect();
        let outputs = if self.config.enabled && self.threads > 1 && jobs.len() > 1 {
            Self::run_parallel(self.master_seed, self.threads, jobs)
        } else {
            jobs.into_iter()
                .map(|job| {
                    let mut rng = job_rng(self.master_seed, &job.key);
                    (job.run)(&mut rng)
                })
                .collect()
        };
        for ((output, key), latency) in outputs.into_iter().zip(keys).zip(latencies) {
            self.queue.push(QueuedOutput {
                ready_tick: tick + latency,
                enqueue_tick: tick,
                seq: self.next_seq,
                key,
                output,
            });
            self.next_seq += 1;
        }
        self.stats.queue_peak = self.stats.queue_peak.max(self.queue.len() as u64);
    }

    /// Work-stealing parallel execution over a scoped pool: an atomic
    /// cursor hands out job indexes, each thread returns `(index,
    /// output)` pairs, and the merge re-establishes enqueue order.
    fn run_parallel(master_seed: u64, threads: usize, jobs: Vec<ProofJob<T>>) -> Vec<T> {
        let n = jobs.len();
        let slots: Vec<std::sync::Mutex<Option<ProofJob<T>>>> = jobs
            .into_iter()
            .map(|j| std::sync::Mutex::new(Some(j)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let mut merged: Vec<Option<T>> = Vec::with_capacity(n);
        merged.resize_with(n, || None);
        let chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(n))
                .map(|_| {
                    let cursor = &cursor;
                    let slots = &slots;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let job = slots[i]
                                .lock()
                                .expect("job slot poisoned")
                                .take()
                                .expect("job taken twice");
                            let mut rng = job_rng(master_seed, &job.key);
                            local.push((i, (job.run)(&mut rng)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("proving worker panicked"))
                .collect()
        });
        for (i, out) in chunks.into_iter().flatten() {
            merged[i] = Some(out);
        }
        merged
            .into_iter()
            .map(|o| o.expect("proving job lost"))
            .collect()
    }

    /// Releases every output whose ready tick has arrived, in
    /// `(ready_tick, seq)` order — the deterministic admission order
    /// into the mempool.
    pub fn drain_ready(&mut self, tick: u64) -> Vec<(JobKey, T)> {
        let mut ready: Vec<QueuedOutput<T>> = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].ready_tick <= tick {
                ready.push(self.queue.swap_remove(i));
            } else {
                i += 1;
            }
        }
        ready.sort_by_key(|q| (q.ready_tick, q.seq));
        if !ready.is_empty() {
            dragoon_trace::event(
                dragoon_trace::SpanKind::Release,
                tick,
                &[("jobs", ready.len() as u64)],
            );
        }
        self.stats.completed += ready.len() as u64;
        for q in &ready {
            // The tick clock is monotone: an output can only drain at
            // or after the tick it was enqueued. Count (don't clamp) a
            // violation so a broken clock shows up in the stats.
            debug_assert!(
                tick >= q.enqueue_tick,
                "job released at tick {tick} before its enqueue at {}",
                q.enqueue_tick
            );
            match tick.checked_sub(q.enqueue_tick) {
                Some(latency) => self.stats.record_latency(latency),
                None => {
                    self.stats.latency_violations += 1;
                    dragoon_trace::counter_inc("proving_latency_violations_total");
                }
            }
        }
        ready.into_iter().map(|q| (q.key, q.output)).collect()
    }

    /// Jobs computed but not yet released.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Closes the service at the end of a run: whatever is still queued
    /// is recorded as dropped (its HIT settled ⊥ without it).
    pub fn finish(&mut self) {
        self.stats.dropped += self.queue.len() as u64;
        self.queue.clear();
    }

    /// Read access to the counters.
    pub fn stats(&self) -> &ProvingStats {
        &self.stats
    }

    /// Mutable access (the engine records stale drops and cache deltas).
    pub fn stats_mut(&mut self) -> &mut ProvingStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn key(byte: u8, instance: u64, phase: ProofPhase) -> JobKey {
        JobKey {
            agent: Address::from_byte(byte),
            instance,
            phase,
        }
    }

    fn draw_job(k: JobKey, cost: u64) -> ProofJob<u64> {
        ProofJob {
            key: k,
            cost,
            run: Box::new(|rng: &mut StdRng| rng.gen::<u64>()),
        }
    }

    #[test]
    fn job_rng_is_a_pure_function_of_seed_and_key() {
        let k = key(7, 3, ProofPhase::Commit);
        let a: u64 = job_rng(42, &k).gen();
        let b: u64 = job_rng(42, &k).gen();
        assert_eq!(a, b);
        let c: u64 = job_rng(43, &k).gen();
        assert_ne!(a, c, "different master seed, different stream");
        let d: u64 = job_rng(42, &key(7, 3, ProofPhase::Evaluate)).gen();
        assert_ne!(a, d, "different phase, different stream");
        let e: u64 = job_rng(42, &key(8, 3, ProofPhase::Commit)).gen();
        assert_ne!(a, e, "different agent, different stream");
    }

    #[test]
    fn disabled_service_releases_same_tick_in_enqueue_order() {
        let mut svc: ProvingService<u64> = ProvingService::new(1, 4, ProvingConfig::default());
        let jobs: Vec<_> = (0..8u8)
            .map(|b| draw_job(key(b, 0, ProofPhase::Commit), 10_000))
            .collect();
        svc.submit_batch(5, jobs);
        let out = svc.drain_ready(5);
        assert_eq!(out.len(), 8, "zero latency when disabled");
        let order: Vec<u8> = out.iter().map(|(k, _)| k.agent.0[19]).collect();
        assert_eq!(order, (0..8).collect::<Vec<u8>>());
    }

    #[test]
    fn parallel_and_serial_outputs_are_identical() {
        let cfg = ProvingConfig {
            enabled: true,
            ticks_per_kilocost: 0,
        };
        let make = || -> Vec<ProofJob<u64>> {
            (0..32u8)
                .map(|b| draw_job(key(b, u64::from(b) * 7, ProofPhase::Evaluate), 500))
                .collect()
        };
        let mut serial: ProvingService<u64> = ProvingService::new(9, 1, cfg);
        serial.submit_batch(0, make());
        let mut parallel: ProvingService<u64> = ProvingService::new(9, 8, cfg);
        parallel.submit_batch(0, make());
        assert_eq!(serial.drain_ready(0), parallel.drain_ready(0));
    }

    #[test]
    fn latency_delays_release_and_orders_by_ready_then_seq() {
        let cfg = ProvingConfig {
            enabled: true,
            ticks_per_kilocost: 1,
        };
        let mut svc: ProvingService<u64> = ProvingService::new(3, 1, cfg);
        // Costs 2000 and 0 → latencies 2 and 0 ticks.
        svc.submit_batch(
            10,
            vec![
                draw_job(key(1, 0, ProofPhase::Commit), 2_000),
                draw_job(key(2, 0, ProofPhase::Control), 0),
            ],
        );
        let now = svc.drain_ready(10);
        assert_eq!(now.len(), 1);
        assert_eq!(now[0].0.agent, Address::from_byte(2));
        assert!(svc.drain_ready(11).is_empty());
        let later = svc.drain_ready(12);
        assert_eq!(later.len(), 1);
        assert_eq!(later[0].0.agent, Address::from_byte(1));
        assert_eq!(svc.stats().latency_hist, [1, 0, 1, 0, 0]);
        assert_eq!(svc.stats().latency_max, 2);
    }

    #[test]
    fn finish_counts_unreleased_jobs_as_dropped() {
        let cfg = ProvingConfig {
            enabled: true,
            ticks_per_kilocost: 1,
        };
        let mut svc: ProvingService<u64> = ProvingService::new(3, 2, cfg);
        svc.submit_batch(0, vec![draw_job(key(1, 0, ProofPhase::Commit), 50_000)]);
        assert!(svc.drain_ready(3).is_empty());
        svc.finish();
        assert_eq!(svc.stats().dropped, 1);
        assert_eq!(svc.pending(), 0);
    }
}
