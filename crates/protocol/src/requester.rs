//! The requester client of Π_hit (Fig 5): key management, task
//! publication, answer evaluation and proof generation.

use crate::storage::{encode_questions, ContentStore, Digest};
use dragoon_contract::{HitMessage, PublishParams};
use dragoon_core::poqoea;
use dragoon_core::task::{Answer, EncryptedAnswer, GoldenStandards, TaskSpec};
use dragoon_core::workload::Workload;
use dragoon_crypto::commitment::{Commitment, CommitmentKey};
use dragoon_crypto::elgamal::{Decrypted, KeyPair, PlaintextRange};
use dragoon_crypto::vpke;
use dragoon_ledger::Address;
use rand::Rng;

/// What the requester decided about one worker's submission.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Quality ≥ Θ — accept (silence; the contract pays by default).
    Accept {
        /// The computed quality.
        quality: u64,
        /// The decrypted answer vector (the crowdsourced data!).
        answer: Answer,
    },
    /// Some item is out of range — reject with a VPKE proof.
    RejectOutOfRange {
        /// The message to submit.
        msg: HitMessage,
    },
    /// Quality < Θ — reject with a PoQoEA proof.
    RejectLowQuality {
        /// The proven quality.
        quality: u64,
        /// The message to submit.
        msg: HitMessage,
    },
}

/// The requester client.
///
/// One key pair serves all tasks — the paper highlights that all protocol
/// scripts are simulatable without the secret key, so key reuse leaks
/// nothing (§VI "Off-chain costs").
pub struct Requester {
    /// The requester's on-chain identity.
    pub addr: Address,
    keypair: KeyPair,
    task: TaskSpec,
    golden: GoldenStandards,
    gs_key: CommitmentKey,
    task_digest: Digest,
}

impl Requester {
    /// Creates a requester for a workload, uploading the question set to
    /// off-chain storage.
    pub fn new<R: Rng + ?Sized>(
        addr: Address,
        workload: &Workload,
        store: &mut ContentStore,
        rng: &mut R,
    ) -> Self {
        Self::with_keypair(addr, KeyPair::generate(rng), workload, store, rng)
    }

    /// Creates a requester reusing an existing key pair (one key pair
    /// across all tasks).
    pub fn with_keypair<R: Rng + ?Sized>(
        addr: Address,
        keypair: KeyPair,
        workload: &Workload,
        store: &mut ContentStore,
        rng: &mut R,
    ) -> Self {
        let task_digest = store.put(encode_questions(&workload.spec.questions));
        Self {
            addr,
            keypair,
            task: workload.spec.clone(),
            golden: workload.golden.clone(),
            gs_key: CommitmentKey::random(rng),
            task_digest,
        }
    }

    /// The requester's public encryption key.
    pub fn public_key(&self) -> dragoon_crypto::elgamal::EncryptionKey {
        self.keypair.ek
    }

    /// The task this requester runs.
    pub fn task(&self) -> &TaskSpec {
        &self.task
    }

    /// Phase 1: the publish message (freezes `B` in the contract).
    pub fn publish_msg(&self) -> HitMessage {
        HitMessage::Publish(PublishParams {
            n: self.task.n,
            budget: self.task.budget,
            k: self.task.k,
            range: self.task.range,
            theta: self.task.theta,
            ek: self.keypair.ek,
            comm_gs: Commitment::commit(&self.golden.encode(), &self.gs_key),
            task_digest: self.task_digest,
        })
    }

    /// Phase 3: the golden opening message.
    pub fn golden_msg(&self) -> HitMessage {
        HitMessage::Golden {
            golden: self.golden.clone(),
            key: self.gs_key,
        }
    }

    /// Decrypts a revealed submission and decides accept / reject,
    /// producing the proof message when rejecting (Fig 5, phase 3).
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        worker: Address,
        cts: &EncryptedAnswer,
        rng: &mut R,
    ) -> Verdict {
        self.evaluator().evaluate(worker, cts, rng)
    }

    /// A self-contained evaluation capsule: everything `evaluate` reads,
    /// cloneable into a proof job so evaluation (decrypt + VPKE/PoQoEA
    /// proving) can run on a proving worker thread while the requester
    /// agent stays on the sim thread.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator {
            keypair: self.keypair,
            golden: self.golden.clone(),
            range: self.task.range,
            theta: self.task.theta,
        }
    }

    /// The decryption key (exposed for benches of the proving cost; a
    /// real deployment would keep this private).
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// The golden standards (the requester's secret parameters).
    pub fn golden(&self) -> &GoldenStandards {
        &self.golden
    }

    /// The range of the task's questions.
    pub fn range(&self) -> PlaintextRange {
        self.task.range
    }
}

/// The detachable evaluation half of a [`Requester`]: owns the key
/// pair, gold standards and acceptance parameters — exactly what one
/// evaluation touches, nothing of the on-chain identity. `Clone` so the
/// proving service can move one per verdict job across threads.
#[derive(Clone)]
pub struct Evaluator {
    keypair: KeyPair,
    golden: GoldenStandards,
    range: PlaintextRange,
    theta: u64,
}

impl Evaluator {
    /// Decrypts a revealed submission and decides accept / reject,
    /// producing the proof message when rejecting (Fig 5, phase 3).
    /// Byte-for-byte the evaluation [`Requester::evaluate`] performs.
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        worker: Address,
        cts: &EncryptedAnswer,
        rng: &mut R,
    ) -> Verdict {
        let range = self.range;
        // Decrypt every item; find the first out-of-range one.
        let mut plain = Vec::with_capacity(cts.len());
        for (i, ct) in cts.0.iter().enumerate() {
            match self.keypair.dk.decrypt(ct, &range) {
                Decrypted::InRange(m) => plain.push(m),
                Decrypted::OutOfRange(_) => {
                    let (claim, proof) = vpke::prove_with_key(&self.keypair, ct, &range, rng);
                    return Verdict::RejectOutOfRange {
                        msg: HitMessage::OutRange {
                            worker,
                            index: i,
                            claim,
                            proof,
                        },
                    };
                }
            }
        }
        let answer = Answer(plain);
        let q = dragoon_core::quality(&answer, &self.golden);
        if q >= self.theta {
            Verdict::Accept { quality: q, answer }
        } else {
            let (chi, proof) =
                poqoea::prove_quality_with_key(&self.keypair, cts, &self.golden, &range, rng);
            debug_assert_eq!(chi, q);
            Verdict::RejectLowQuality {
                quality: chi,
                msg: HitMessage::Evaluate { worker, chi, proof },
            }
        }
    }

    /// The number of proving cost units one evaluation of `cts` models:
    /// every item is decrypted, and (pessimistically) each gold standard
    /// may need a VPKE proof.
    pub fn evaluation_cost(&self, cts: &EncryptedAnswer) -> u64 {
        cts.len() as u64 + 2 * self.golden.answers.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_core::workload::{draw_answer, imagenet_workload, AnswerModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, Workload, ContentStore, Requester) {
        let mut rng = StdRng::seed_from_u64(0x5e71);
        let w = imagenet_workload(4_000, &mut rng);
        let mut store = ContentStore::new();
        let r = Requester::new(Address::from_byte(1), &w, &mut store, &mut rng);
        (rng, w, store, r)
    }

    #[test]
    fn publish_message_carries_task_params() {
        let (_, w, store, r) = setup();
        let HitMessage::Publish(p) = r.publish_msg() else {
            panic!("expected publish");
        };
        assert_eq!(p.n, w.spec.n);
        assert_eq!(p.k, w.spec.k);
        assert_eq!(p.theta, w.spec.theta);
        // The digest resolves to the question set in the store.
        assert!(store.get(&p.task_digest).is_some());
    }

    #[test]
    fn golden_opens_publish_commitment() {
        let (_, _, _, r) = setup();
        let HitMessage::Publish(p) = r.publish_msg() else {
            panic!()
        };
        let HitMessage::Golden { golden, key } = r.golden_msg() else {
            panic!()
        };
        assert!(p.comm_gs.open(&golden.encode(), &key));
    }

    #[test]
    fn accepts_good_answers() {
        let (mut rng, w, _, r) = setup();
        let a = draw_answer(
            &AnswerModel::Diligent { accuracy: 1.0 },
            &w.truth,
            &w.spec.range,
            &mut rng,
        );
        let cts = a.encrypt(&r.public_key(), &mut rng);
        match r.evaluate(Address::from_byte(9), &cts, &mut rng) {
            Verdict::Accept { quality, answer } => {
                assert_eq!(quality, 6);
                assert_eq!(answer, a, "requester recovers the submitted data");
            }
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn rejects_low_quality_with_proof() {
        let (mut rng, w, _, r) = setup();
        let a = draw_answer(
            &AnswerModel::Diligent { accuracy: 0.0 },
            &w.truth,
            &w.spec.range,
            &mut rng,
        );
        let cts = a.encrypt(&r.public_key(), &mut rng);
        match r.evaluate(Address::from_byte(9), &cts, &mut rng) {
            Verdict::RejectLowQuality { quality, msg } => {
                assert_eq!(quality, 0);
                let HitMessage::Evaluate { chi, proof, .. } = msg else {
                    panic!()
                };
                assert_eq!(chi, 0);
                assert_eq!(proof.len(), 6);
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_range_with_vpke() {
        let (mut rng, w, _, r) = setup();
        let a = draw_answer(&AnswerModel::OutOfRange, &w.truth, &w.spec.range, &mut rng);
        let cts = a.encrypt(&r.public_key(), &mut rng);
        match r.evaluate(Address::from_byte(9), &cts, &mut rng) {
            Verdict::RejectOutOfRange { msg } => {
                let HitMessage::OutRange { index, .. } = msg else {
                    panic!()
                };
                assert_eq!(index, 0);
            }
            other => panic!("expected outrange, got {other:?}"),
        }
    }
}
