//! Content-addressed off-chain storage — the stand-in for Swarm (§VI).
//!
//! The paper stores each task's question set in Swarm and commits only
//! the digest on-chain ("to ensure integrity of HIT questions, the digest
//! of the questions is committed in the contract, which significantly
//! reduces on-chain cost"). This module reproduces that split: blobs live
//! off-chain, addressed by their Keccak-256 digest; readers verify
//! integrity by re-hashing.

use dragoon_crypto::keccak256;
use std::collections::HashMap;

/// A content digest (the on-chain anchor).
pub type Digest = [u8; 32];

/// An in-process content-addressed store.
#[derive(Clone, Debug, Default)]
pub struct ContentStore {
    blobs: HashMap<Digest, Vec<u8>>,
}

impl ContentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a blob and returns its digest.
    pub fn put(&mut self, bytes: Vec<u8>) -> Digest {
        let digest = keccak256(&bytes);
        self.blobs.insert(digest, bytes);
        digest
    }

    /// Fetches a blob, verifying its integrity against the digest.
    ///
    /// Returns `None` when missing *or* when the stored bytes fail the
    /// integrity check (a malicious storage node served tampered data).
    pub fn get(&self, digest: &Digest) -> Option<&[u8]> {
        let bytes = self.blobs.get(digest)?;
        (keccak256(bytes) == *digest).then_some(bytes.as_slice())
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Test hook: corrupt the blob stored under `digest` (models a
    /// malicious storage provider).
    pub fn tamper(&mut self, digest: &Digest) {
        if let Some(bytes) = self.blobs.get_mut(digest) {
            if let Some(b) = bytes.first_mut() {
                *b ^= 0xff;
            }
        }
    }
}

/// Serializes a question set for off-chain storage.
pub fn encode_questions(questions: &[dragoon_core::Question]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(questions.len() as u64).to_le_bytes());
    for q in questions {
        let p = q.prompt.as_bytes();
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(p);
        out.extend_from_slice(&(q.options.len() as u64).to_le_bytes());
        for o in &q.options {
            let ob = o.as_bytes();
            out.extend_from_slice(&(ob.len() as u64).to_le_bytes());
            out.extend_from_slice(ob);
        }
    }
    out
}

/// Parses a stored question set.
pub fn decode_questions(bytes: &[u8]) -> Option<Vec<dragoon_core::Question>> {
    let mut pos = 0usize;
    let read_u64 = |bytes: &[u8], pos: &mut usize| -> Option<u64> {
        let v = u64::from_le_bytes(bytes.get(*pos..*pos + 8)?.try_into().ok()?);
        *pos += 8;
        Some(v)
    };
    let read_str = |bytes: &[u8], pos: &mut usize| -> Option<String> {
        let len = u64::from_le_bytes(bytes.get(*pos..*pos + 8)?.try_into().ok()?) as usize;
        *pos += 8;
        let s = String::from_utf8(bytes.get(*pos..*pos + len)?.to_vec()).ok()?;
        *pos += len;
        Some(s)
    };
    let n = read_u64(bytes, &mut pos)? as usize;
    let mut questions = Vec::with_capacity(n);
    for _ in 0..n {
        let prompt = read_str(bytes, &mut pos)?;
        let n_opts = read_u64(bytes, &mut pos)? as usize;
        let mut options = Vec::with_capacity(n_opts);
        for _ in 0..n_opts {
            options.push(read_str(bytes, &mut pos)?);
        }
        questions.push(dragoon_core::Question { prompt, options });
    }
    (pos == bytes.len()).then_some(questions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_core::Question;

    fn questions() -> Vec<Question> {
        vec![
            Question {
                prompt: "Does the image contain a cat?".into(),
                options: vec!["no".into(), "yes".into()],
            },
            Question {
                prompt: "Is the street parking available?".into(),
                options: vec!["no".into(), "yes".into(), "unknown".into()],
            },
        ]
    }

    #[test]
    fn put_get_round_trip() {
        let mut store = ContentStore::new();
        let digest = store.put(b"hello".to_vec());
        assert_eq!(store.get(&digest), Some(&b"hello"[..]));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn missing_digest_is_none() {
        let store = ContentStore::new();
        assert!(store.get(&[0u8; 32]).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn tampered_blob_fails_integrity() {
        let mut store = ContentStore::new();
        let digest = store.put(b"sensitive task data".to_vec());
        store.tamper(&digest);
        assert!(
            store.get(&digest).is_none(),
            "tampered content must not verify"
        );
    }

    #[test]
    fn questions_round_trip() {
        let qs = questions();
        let encoded = encode_questions(&qs);
        assert_eq!(decode_questions(&encoded).unwrap(), qs);
    }

    #[test]
    fn question_decode_rejects_truncation() {
        let encoded = encode_questions(&questions());
        assert!(decode_questions(&encoded[..encoded.len() - 1]).is_none());
        assert!(decode_questions(&[]).is_none());
    }

    #[test]
    fn full_flow_store_questions() {
        let mut store = ContentStore::new();
        let qs = questions();
        let digest = store.put(encode_questions(&qs));
        let fetched = decode_questions(store.get(&digest).unwrap()).unwrap();
        assert_eq!(fetched, qs);
    }
}
