//! The **transparent strawman**: decentralized HITs *without* privacy —
//! the design the paper's introduction argues is broken.
//!
//! "Due to the transparency of blockchain, once some answers are
//! submitted, any malicious worker can simply copy and re-submit them to
//! earn rewards without making any real efforts […] the straightforwardly
//! decentralized crowdsourcing could lose all basic utilities" (§I).
//!
//! This module implements that straightforward design — plaintext answers
//! straight onto the chain, quality checked openly — so tests and
//! examples can *demonstrate* the free-riding attack succeeding here and
//! failing against Dragoon, plus the "tragedy of the commons" payoff
//! analysis for rational workers.

use dragoon_core::quality::quality;
use dragoon_core::task::Answer;
use dragoon_core::workload::{draw_answer, AnswerModel, Workload};
use dragoon_ledger::Address;
use rand::Rng;
use std::collections::BTreeMap;

/// A worker strategy in the transparent protocol.
#[derive(Clone, Debug)]
pub enum TransparentStrategy {
    /// Does real work (with some accuracy) and submits early.
    Work(AnswerModel),
    /// Waits, copies the first plaintext answer it sees in the mempool,
    /// mutates one position to dodge naive duplicate checks, resubmits.
    CopyMutate,
    /// Waits to copy; if nothing appears, submits nothing.
    FreeRideOrAbstain,
}

/// Outcome of a transparent run.
#[derive(Clone, Debug)]
pub struct TransparentOutcome {
    /// Who got paid `B/K`.
    pub paid: BTreeMap<Address, bool>,
    /// Per-worker effort spent (1.0 = answered all questions honestly,
    /// ~0 = copied).
    pub effort: BTreeMap<Address, f64>,
    /// The answers the requester collected, with their *independent
    /// information content*: copied answers contribute nothing new.
    pub independent_answers: usize,
}

/// Runs the transparent (no-privacy) protocol: answers land in plaintext
/// and are publicly visible the moment they are submitted, so copiers
/// act after observing workers. The requester pays every answer whose
/// quality clears `Θ` — it has no way to distinguish copies.
pub fn run_transparent<R: Rng + ?Sized>(
    workload: &Workload,
    strategies: &[TransparentStrategy],
    rng: &mut R,
) -> TransparentOutcome {
    let addrs: Vec<Address> = (0..strategies.len() as u64)
        .map(|i| Address::from_seed(0x57a0_0000 + i))
        .collect();
    // Round 1: the workers who do real work submit (visible to all!).
    let mut board: Vec<(Address, Answer)> = Vec::new();
    let mut effort = BTreeMap::new();
    for (addr, strat) in addrs.iter().zip(strategies) {
        if let TransparentStrategy::Work(model) = strat {
            let a = draw_answer(model, &workload.truth, &workload.spec.range, rng);
            board.push((*addr, a));
            effort.insert(*addr, 1.0);
        }
    }
    // Round 2: copiers read the public board.
    let honest_board = board.clone();
    for (addr, strat) in addrs.iter().zip(strategies) {
        match strat {
            TransparentStrategy::CopyMutate | TransparentStrategy::FreeRideOrAbstain => {
                if let Some((_, victim)) = honest_board.first() {
                    let mut copy = victim.clone();
                    if matches!(strat, TransparentStrategy::CopyMutate) && !copy.0.is_empty() {
                        // Mutate one (probably non-gold) position.
                        let i = rng.gen_range(0..copy.0.len());
                        copy.0[i] = workload.spec.range.lo
                            + (copy.0[i] + 1 - workload.spec.range.lo) % workload.spec.range.len();
                    }
                    board.push((*addr, copy));
                    effort.insert(*addr, 0.0);
                } else {
                    effort.insert(*addr, 0.0);
                }
            }
            TransparentStrategy::Work(_) => {}
        }
    }
    // The requester pays everything that clears Θ — copies included,
    // because plaintext copies of good answers are good answers.
    let k = workload.spec.k;
    let mut paid = BTreeMap::new();
    for (addr, answer) in board.iter().take(k) {
        let q = quality(answer, &workload.golden);
        paid.insert(*addr, q >= workload.spec.theta);
    }
    for addr in &addrs {
        paid.entry(*addr).or_insert(false);
    }
    // Independent information: only the originals carry new signal.
    let independent_answers = board
        .iter()
        .take(k)
        .filter(|(a, _)| effort.get(a).copied().unwrap_or(0.0) > 0.0)
        .count();
    TransparentOutcome {
        paid,
        effort,
        independent_answers,
    }
}

/// Expected-payoff comparison for a rational worker deciding between
/// working (cost `effort_cost`, quality ≈ accuracy) and copying
/// (cost ≈ 0) — under the transparent protocol vs. under Dragoon.
///
/// Returns `(work_payoff, copy_payoff)` per protocol; a protocol is
/// incentive-sound for effort when `work > copy`.
#[derive(Clone, Copy, Debug)]
pub struct PayoffMatrix {
    /// Payoff of honest work in the transparent protocol.
    pub transparent_work: f64,
    /// Payoff of copying in the transparent protocol.
    pub transparent_copy: f64,
    /// Payoff of honest work under Dragoon.
    pub dragoon_work: f64,
    /// Payoff of copying under Dragoon.
    pub dragoon_copy: f64,
}

/// Computes the payoff matrix: reward × P(paid) − effort cost.
///
/// Under the transparent protocol the copier inherits the victim's
/// P(quality ≥ Θ); under Dragoon ciphertext copies are rejected as
/// duplicate commitments (and mutating a ciphertext breaks decryption),
/// so the copier's payoff is zero.
pub fn payoff_matrix(reward: f64, effort_cost: f64, p_qualify_honest: f64) -> PayoffMatrix {
    PayoffMatrix {
        transparent_work: reward * p_qualify_honest - effort_cost,
        transparent_copy: reward * p_qualify_honest, // free ride
        dragoon_work: reward * p_qualify_honest - effort_cost,
        dragoon_copy: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_core::workload::imagenet_workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x57aa)
    }

    #[test]
    fn copier_gets_paid_in_transparent_protocol() {
        let mut rng = rng();
        let w = imagenet_workload(4_000_000, &mut rng);
        let outcome = run_transparent(
            &w,
            &[
                TransparentStrategy::Work(AnswerModel::Diligent { accuracy: 1.0 }),
                TransparentStrategy::Work(AnswerModel::Diligent { accuracy: 1.0 }),
                TransparentStrategy::CopyMutate,
                TransparentStrategy::CopyMutate,
            ],
            &mut rng,
        );
        // Both copiers ride the honest answers to payment.
        let copier1 = Address::from_seed(0x57a0_0002);
        let copier2 = Address::from_seed(0x57a0_0003);
        assert!(
            outcome.paid[&copier1],
            "free-riding succeeds without privacy"
        );
        assert!(outcome.paid[&copier2]);
        assert_eq!(outcome.effort[&copier1], 0.0);
        // The requester paid for 4 answers but got only 2 independent ones.
        assert_eq!(outcome.independent_answers, 2);
    }

    #[test]
    fn no_honest_workers_means_no_utility() {
        // The tragedy of the commons: if everyone waits to copy, nothing
        // is ever produced.
        let mut rng = rng();
        let w = imagenet_workload(4_000_000, &mut rng);
        let outcome = run_transparent(
            &w,
            &[
                TransparentStrategy::FreeRideOrAbstain,
                TransparentStrategy::FreeRideOrAbstain,
                TransparentStrategy::FreeRideOrAbstain,
                TransparentStrategy::FreeRideOrAbstain,
            ],
            &mut rng,
        );
        assert_eq!(outcome.independent_answers, 0);
        assert!(outcome.paid.values().all(|p| !p));
    }

    #[test]
    fn copying_dominates_in_transparent_not_in_dragoon() {
        let m = payoff_matrix(100.0, 20.0, 0.95);
        // Transparent: copying strictly dominates working — the paper's
        // "rational workers might wait to copy" collapse.
        assert!(m.transparent_copy > m.transparent_work);
        // Dragoon: working strictly dominates copying.
        assert!(m.dragoon_work > m.dragoon_copy);
        assert!(m.dragoon_work > 0.0, "working remains profitable");
    }
}
