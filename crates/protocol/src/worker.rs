//! The worker client of Π_hit (Fig 5) and adversarial worker behaviours.

use dragoon_contract::HitMessage;
use dragoon_core::task::{Answer, EncryptedAnswer};
use dragoon_core::workload::{draw_answer, AnswerModel, GroundTruth, Workload};
use dragoon_crypto::commitment::{Commitment, CommitmentKey};
use dragoon_crypto::elgamal::{EncryptionKey, PlaintextRange};
use dragoon_crypto::precomp::ProofCache;
use dragoon_ledger::Address;
use rand::Rng;

/// How a worker behaves during the protocol run.
#[derive(Clone, Debug)]
pub enum WorkerBehavior {
    /// Follows the protocol, producing answers from a model.
    Honest(AnswerModel),
    /// Follows the protocol, submitting exactly this answer vector
    /// (used by the real-vs-ideal tests to fix both worlds' inputs).
    Fixed(Answer),
    /// Tries to free-ride by replaying the first commitment it observes
    /// in the mempool (the copy-and-paste attack the commit–reveal
    /// structure plus duplicate-rejection defeats).
    CopyPaste,
    /// Commits but never reveals — recorded as `⊥`, unpaid.
    CommitNoReveal,
    /// Reveals ciphertexts that do not open the commitment (malformed
    /// reveal; rejected on-chain, so equivalent to `⊥`).
    BadReveal,
}

/// Everything a commit proof-job computes: the drawn answer, its
/// ciphertexts, the blinding key and the resulting commitment. Produced
/// off the hot path by [`Worker::prepare_commit`] (pure — safe to run on
/// a proving worker thread) and installed into the session by
/// [`Worker::install_commit`] when the job's latency elapses.
#[derive(Clone, Debug)]
pub struct CommitArtifacts {
    /// The plaintext answer (None for copy-paste replays).
    pub answer: Option<Answer>,
    /// The encrypted answer (None for copy-paste replays).
    pub ciphertexts: Option<EncryptedAnswer>,
    /// The commitment blinding key (None for copy-paste replays).
    pub key: Option<CommitmentKey>,
    /// The commitment to submit.
    pub commitment: Commitment,
}

/// The worker client: holds the answer, blinding key and ciphertexts
/// between the commit and reveal phases.
pub struct Worker {
    /// The worker's on-chain identity.
    pub addr: Address,
    /// The behaviour this worker follows.
    pub behavior: WorkerBehavior,
    answer: Option<Answer>,
    ciphertexts: Option<dragoon_core::task::EncryptedAnswer>,
    key: Option<CommitmentKey>,
    commitment: Option<Commitment>,
}

impl Worker {
    /// Creates a worker with an address and behaviour.
    pub fn new(addr: Address, behavior: WorkerBehavior) -> Self {
        Self {
            addr,
            behavior,
            answer: None,
            ciphertexts: None,
            key: None,
            commitment: None,
        }
    }

    /// Phase 2-a: produce the commit message.
    ///
    /// `observed` is the set of commitments already visible in the
    /// mempool/chain — the copy-paste attacker replays one of them.
    pub fn commit_msg<R: Rng + ?Sized>(
        &mut self,
        workload: &Workload,
        ek: &EncryptionKey,
        observed: &[Commitment],
        rng: &mut R,
    ) -> Option<HitMessage> {
        let copied = match &self.behavior {
            WorkerBehavior::CopyPaste => Some(*observed.first()?),
            _ => None,
        };
        let artifacts = Self::prepare_commit(
            &self.behavior,
            &workload.truth,
            workload.spec.range,
            ek,
            copied,
            None,
            rng,
        )?;
        Some(self.install_commit(artifacts))
    }

    /// The compute half of the commit: draws the answer, encrypts it and
    /// commits — everything the proving service runs off the hot path.
    /// Pure in the session state (`&self`-free), so it can execute on a
    /// worker thread while the agent object stays on the sim thread.
    ///
    /// `copied` is the commitment a copy-paste attacker decided to
    /// replay at enqueue time (None aborts the copy). `cache` enables
    /// the keyed fixed-base table for the requester's encryption key.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare_commit<R: Rng + ?Sized>(
        behavior: &WorkerBehavior,
        truth: &GroundTruth,
        range: PlaintextRange,
        ek: &EncryptionKey,
        copied: Option<Commitment>,
        cache: Option<&ProofCache>,
        rng: &mut R,
    ) -> Option<CommitArtifacts> {
        match behavior {
            WorkerBehavior::CopyPaste => {
                // Replay an observed commitment verbatim.
                let commitment = copied?;
                Some(CommitArtifacts {
                    answer: None,
                    ciphertexts: None,
                    key: None,
                    commitment,
                })
            }
            WorkerBehavior::Honest(_)
            | WorkerBehavior::Fixed(_)
            | WorkerBehavior::CommitNoReveal
            | WorkerBehavior::BadReveal => {
                let answer = match behavior {
                    WorkerBehavior::Honest(m) => draw_answer(m, truth, &range, rng),
                    WorkerBehavior::Fixed(a) => a.clone(),
                    // Non-revealers still commit to something plausible.
                    _ => draw_answer(&AnswerModel::RandomBot, truth, &range, rng),
                };
                let cts = answer.encrypt_cached(ek, rng, cache);
                let key = CommitmentKey::random(rng);
                let commitment = Commitment::commit(&cts.encode(), &key);
                Some(CommitArtifacts {
                    answer: Some(answer),
                    ciphertexts: Some(cts),
                    key: Some(key),
                    commitment,
                })
            }
        }
    }

    /// The install half of the commit: stores the artifacts in the
    /// session and returns the message to submit.
    pub fn install_commit(&mut self, artifacts: CommitArtifacts) -> HitMessage {
        let commitment = artifacts.commitment;
        self.answer = artifacts.answer;
        self.ciphertexts = artifacts.ciphertexts;
        self.key = artifacts.key;
        self.commitment = Some(commitment);
        HitMessage::Commit { commitment }
    }

    /// Phase 2-b: produce the reveal message (if this behaviour reveals).
    pub fn reveal_msg<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<HitMessage> {
        Self::reveal_msg_with(&self.behavior, self.ciphertexts.as_ref(), self.key, rng)
    }

    /// The static form of [`Self::reveal_msg`]: everything the reveal
    /// reads, passed by value/reference so a proof job can capture clones
    /// and run off-thread.
    pub fn reveal_msg_with<R: Rng + ?Sized>(
        behavior: &WorkerBehavior,
        ciphertexts: Option<&EncryptedAnswer>,
        key: Option<CommitmentKey>,
        rng: &mut R,
    ) -> Option<HitMessage> {
        match behavior {
            WorkerBehavior::CommitNoReveal | WorkerBehavior::CopyPaste => None,
            WorkerBehavior::BadReveal => {
                // Open with a wrong key.
                Some(HitMessage::Reveal {
                    ciphertexts: ciphertexts.cloned()?,
                    key: CommitmentKey::random(rng),
                })
            }
            WorkerBehavior::Honest(_) | WorkerBehavior::Fixed(_) => Some(HitMessage::Reveal {
                ciphertexts: ciphertexts.cloned()?,
                key: key?,
            }),
        }
    }

    /// The plaintext answer this worker produced (None for copiers).
    pub fn answer(&self) -> Option<&Answer> {
        self.answer.as_ref()
    }

    /// The commitment this worker submitted.
    pub fn commitment(&self) -> Option<&Commitment> {
        self.commitment.as_ref()
    }

    /// The stored ciphertexts (what a reveal job needs to capture).
    pub fn ciphertexts(&self) -> Option<&EncryptedAnswer> {
        self.ciphertexts.as_ref()
    }

    /// The stored blinding key (what a reveal job needs to capture).
    pub fn commit_key(&self) -> Option<CommitmentKey> {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragoon_core::workload::imagenet_workload;
    use dragoon_crypto::elgamal::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, Workload, KeyPair) {
        let mut rng = StdRng::seed_from_u64(0x30b1);
        let w = imagenet_workload(4_000, &mut rng);
        let kp = KeyPair::generate(&mut rng);
        (rng, w, kp)
    }

    #[test]
    fn honest_worker_commits_and_reveals() {
        let (mut rng, w, kp) = setup();
        let mut worker = Worker::new(
            Address::from_byte(1),
            WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.9 }),
        );
        let commit = worker.commit_msg(&w, &kp.ek, &[], &mut rng).unwrap();
        let HitMessage::Commit { commitment } = commit else {
            panic!()
        };
        let reveal = worker.reveal_msg(&mut rng).unwrap();
        let HitMessage::Reveal { ciphertexts, key } = reveal else {
            panic!()
        };
        assert!(commitment.open(&ciphertexts.encode(), &key));
        assert_eq!(worker.answer().unwrap().len(), 106);
    }

    #[test]
    fn copy_paste_replays_observed_commitment() {
        let (mut rng, w, kp) = setup();
        let mut honest = Worker::new(
            Address::from_byte(1),
            WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 1.0 }),
        );
        let HitMessage::Commit { commitment } =
            honest.commit_msg(&w, &kp.ek, &[], &mut rng).unwrap()
        else {
            panic!()
        };
        let mut copier = Worker::new(Address::from_byte(2), WorkerBehavior::CopyPaste);
        let HitMessage::Commit { commitment: copied } = copier
            .commit_msg(&w, &kp.ek, &[commitment], &mut rng)
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(copied, commitment, "the attack is an exact replay");
        assert!(copier.reveal_msg(&mut rng).is_none());
    }

    #[test]
    fn copy_paste_with_nothing_to_copy_aborts() {
        let (mut rng, w, kp) = setup();
        let mut copier = Worker::new(Address::from_byte(2), WorkerBehavior::CopyPaste);
        assert!(copier.commit_msg(&w, &kp.ek, &[], &mut rng).is_none());
    }

    #[test]
    fn no_reveal_behaviour() {
        let (mut rng, w, kp) = setup();
        let mut worker = Worker::new(Address::from_byte(3), WorkerBehavior::CommitNoReveal);
        assert!(worker.commit_msg(&w, &kp.ek, &[], &mut rng).is_some());
        assert!(worker.reveal_msg(&mut rng).is_none());
    }

    #[test]
    fn bad_reveal_does_not_open() {
        let (mut rng, w, kp) = setup();
        let mut worker = Worker::new(Address::from_byte(4), WorkerBehavior::BadReveal);
        let HitMessage::Commit { commitment } =
            worker.commit_msg(&w, &kp.ek, &[], &mut rng).unwrap()
        else {
            panic!()
        };
        let HitMessage::Reveal { ciphertexts, key } = worker.reveal_msg(&mut rng).unwrap() else {
            panic!()
        };
        assert!(!commitment.open(&ciphertexts.encode(), &key));
    }
}
