//! The marketplace's agent pools: requesters (one per HIT, reusing the
//! protocol-layer [`Requester`] client) and a shared worker pool whose
//! members participate in many HITs concurrently through per-task
//! [`Worker`] sessions.

use dragoon_contract::HitId;
use dragoon_core::workload::Workload;
use dragoon_ledger::Address;
use dragoon_protocol::{Requester, Worker, WorkerBehavior};
use std::collections::BTreeMap;

/// A requester agent: owns one HIT from publication to settlement.
pub struct RequesterAgent {
    /// On-chain identity.
    pub addr: Address,
    /// The protocol client (keys, proofs, evaluation).
    pub client: Requester,
    /// The workload this agent crowdsources.
    pub workload: Workload,
    /// Block in which the instance was created.
    pub published_block: Option<u64>,
    /// Phase-3 sequencing state (mirrors the single-task driver).
    pub golden_sent: bool,
    /// Whether the evaluation proof job has been *enqueued* (rejections
    /// decided; they enter the mempool when the job's latency elapses).
    pub verdicts_sent: bool,
    /// Whether the evaluation job's output has been released back into
    /// the sim — the gate `Finalize` waits on, so a slow evaluation
    /// proof delays finalization instead of racing it.
    pub verdicts_landed: bool,
    /// Workers this agent has challenged.
    pub reject_targets: Vec<Address>,
    /// Whether `Finalize` has been submitted.
    pub finalize_sent: bool,
    /// Whether `Cancel` has been submitted (unfillable task).
    pub cancel_sent: bool,
    /// Answers successfully collected (the marketplace's utility).
    pub collected: usize,
    /// Cartel bookkeeping (econ layer): verdicts were computed off-chain
    /// ahead of the golden-opening decision.
    pub verdicts_ready: bool,
    /// Cartel bookkeeping: the golden opening was withheld (no rejection
    /// would land, so the gold standards stay secret and the deadline
    /// backstop settles the task).
    pub golden_withheld: bool,
    /// Rejection messages computed off-chain, submitted once the golden
    /// opening confirms (cartel path only).
    pub pending_rejects: Vec<dragoon_contract::HitMessage>,
}

impl RequesterAgent {
    /// Wraps a protocol client.
    pub fn new(addr: Address, client: Requester, workload: Workload) -> Self {
        Self {
            addr,
            client,
            workload,
            published_block: None,
            golden_sent: false,
            verdicts_sent: false,
            verdicts_landed: false,
            reject_targets: Vec::new(),
            finalize_sent: false,
            cancel_sent: false,
            collected: 0,
            verdicts_ready: false,
            golden_withheld: false,
            pending_rejects: Vec::new(),
        }
    }
}

/// A pool worker: one identity, one behaviour, many concurrent sessions.
pub struct WorkerAgent {
    /// On-chain identity.
    pub addr: Address,
    /// The behaviour every session of this worker follows.
    pub behavior: WorkerBehavior,
    /// Live per-HIT protocol sessions. Sessions are removed when their
    /// HIT settles (or the worker loses an overbooked commit race), so
    /// the map holds live sessions only.
    pub sessions: BTreeMap<HitId, Worker>,
    /// Live-session count, maintained incrementally: +1 when a session
    /// joins in `drive_commit`, −1 when `harvest` removes it. Makes the
    /// engine's capacity check O(1) instead of a rescan of the session
    /// map against the settled set per live HIT per block.
    pub live_sessions: usize,
    /// HITs this worker has already revealed for.
    pub revealed: Vec<HitId>,
    /// Whether the worker is still in the pool (churn departures flip
    /// this off: the worker stops committing and stops revealing, so its
    /// outstanding commitments settle as `⊥` and escrow flows back).
    pub active: bool,
}

impl WorkerAgent {
    /// A fresh worker.
    pub fn new(addr: Address, behavior: WorkerBehavior) -> Self {
        Self {
            addr,
            behavior,
            sessions: BTreeMap::new(),
            live_sessions: 0,
            revealed: Vec::new(),
            active: true,
        }
    }
}
