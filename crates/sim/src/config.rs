//! Marketplace scenario configuration.

use dragoon_chain::Gas;
use dragoon_contract::{PhaseWindows, SettlementMode};
use dragoon_core::workload::AnswerModel;
use dragoon_econ::EconConfig;
use dragoon_net::NetConfig;
use dragoon_protocol::{ProvingConfig, WorkerBehavior};

/// Which mempool scheduler the market runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarketPolicy {
    /// Honest FIFO delivery.
    Fifo,
    /// Reverse-order delivery every round (a crude rushing adversary).
    Reverse,
    /// A designated front-runner (the first worker of the pool) whose
    /// transactions jump the queue every round.
    FrontRun,
}

/// A weighted worker-behaviour mix; weights are relative frequencies.
pub type BehaviorMix = Vec<(WorkerBehavior, u32)>;

/// Everything that defines one marketplace run. Every field has a
/// sensible default (see [`MarketConfig::default`]); construct with
/// struct-update syntax:
///
/// ```
/// use dragoon_sim::MarketConfig;
/// let cfg = MarketConfig { hits: 250, seed: 7, ..MarketConfig::default() };
/// ```
#[derive(Clone, Debug)]
pub struct MarketConfig {
    /// Total HITs published over the run.
    pub hits: usize,
    /// HITs published per block until `hits` is reached.
    pub spawn_per_block: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Max concurrent unsettled HITs one worker participates in.
    pub worker_capacity: usize,
    /// Extra candidates racing for each task's last slot beyond `k`
    /// (exercises `TaskFull` contention; 0 = no overbooking).
    pub overbook: usize,
    /// Questions per task `N`.
    pub questions: usize,
    /// Gold standards per task `|G|`.
    pub golds: usize,
    /// Workers per task `K`.
    pub k: usize,
    /// Quality threshold `Θ`.
    pub theta: u64,
    /// Budget per task `B`.
    pub budget: u128,
    /// The weighted behaviour mix workers are drawn from.
    pub behavior_mix: BehaviorMix,
    /// Phase windows for every instance (`commit_timeout` should be
    /// `Some` so unfillable tasks cancel instead of lingering forever).
    pub windows: PhaseWindows,
    /// Per-block gas cap (`None` = unbounded blocks).
    pub block_gas_limit: Option<Gas>,
    /// Inline or batched settlement verification.
    pub settlement: SettlementMode,
    /// The mempool scheduling policy.
    pub policy: MarketPolicy,
    /// Hard stop after this many blocks (unfinished HITs are reported).
    pub max_blocks: u64,
    /// The run's master seed; equal seeds ⇒ identical reports.
    pub seed: u64,
    /// Revert-atomicity strategy for the hosted chain: `false` (default)
    /// uses the journaled state layer; `true` restores the pre-journal
    /// whole-state clone checkpointing. The baseline exists for the
    /// journal-equivalence differential tests and the throughput-
    /// comparison bench — same seed, both settings, identical reports.
    pub clone_checkpointing: bool,
    /// Worker threads for block execution *and* block-boundary
    /// settlement verification: `0` (default) resolves from the
    /// `DRAGOON_THREADS` environment variable, then the host's available
    /// parallelism; `1` forces the strictly serial executor (the
    /// differential baseline, like `clone_checkpointing`). Reports are
    /// identical for every value — only wall clock changes.
    pub exec_threads: usize,
    /// The market-economics layer (`dragoon-econ`): cross-HIT worker
    /// reputation, dynamic pricing of `B` from observed fill rates,
    /// seeded worker churn and adversary policies (golden-withholding
    /// requester cartels, reputation-farming sybils). Disabled by
    /// default — existing scenarios stay byte-identical.
    pub econ: EconConfig,
    /// The multi-node network layer (`dragoon-net`): the canonical
    /// chain's blocks fan out over a deterministic gossip network of
    /// full replicas with seeded link faults, scheduled partitions and
    /// longest-chain fork choice. `None` (default) = single-node, all
    /// existing scenarios byte-identical.
    pub net: Option<NetConfig>,
    /// The asynchronous proving pipeline (`dragoon_protocol::proving`):
    /// disabled (default) runs every proof job inline at zero latency;
    /// enabled computes jobs on a scoped worker pool and releases each
    /// output `cost · ticks_per_kilocost / 1000` simulated ticks after
    /// it was requested. Committed chain state is bit-identical across
    /// `DRAGOON_THREADS` either way (per-job RNG streams); enabling the
    /// service with zero latency reproduces the disabled run exactly
    /// (`tests/proving_equivalence.rs`).
    pub proving: ProvingConfig,
    /// Durable chain state (`dragoon_chain::store`): every produced
    /// block's executed transactions append to an on-disk log, with full
    /// state snapshots at a configurable cadence, so a crashed run can
    /// be recovered bit-identically from snapshot + block tail. `None`
    /// (default) = in-memory only, all existing scenarios byte-identical.
    pub persist: Option<PersistConfig>,
}

/// Configuration of the on-disk block store.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding `blocks.log`, `snapshot-*.bin` and
    /// `delta-*.bin`. Created (and any previous run's artifacts cleared)
    /// at market construction.
    pub dir: std::path::PathBuf,
    /// Write a state snapshot every this many blocks (`0` = never;
    /// recovery then replays the whole log from genesis).
    pub snapshot_every: u64,
    /// Snapshots at the cadence are incremental (dirty working set
    /// against the previous artifact, periodic full rebases) instead of
    /// full encodes. Recovery composes base + deltas bit-identically.
    pub incremental: bool,
    /// Truncate `blocks.log` after each successful snapshot publish so
    /// the log stays bounded by one snapshot interval.
    pub compact_log: bool,
    /// Flush the log to the OS every this many appends (`0` = only at
    /// snapshots and drains). 1 (default) keeps the torn-tail window at
    /// a single record.
    pub flush_every: u64,
    /// Move disk writes to a dedicated writer thread behind a bounded
    /// channel; the round loop hands off frames and keeps executing.
    pub background_writer: bool,
    /// Overlap block N's batched settlement verification with round
    /// N+1's agent-step generation and proving (batched settlement
    /// only; committed state stays byte-identical).
    pub overlap_verify: bool,
}

impl PersistConfig {
    /// A store in `dir` with the default snapshot cadence (every 64
    /// blocks) and the synchronous, full-snapshot PR-8 behaviour: no
    /// pipelining, flush on every append.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 64,
            incremental: false,
            compact_log: false,
            flush_every: 1,
            background_writer: false,
            overlap_verify: false,
        }
    }

    /// The fully pipelined lifecycle: background writer, incremental
    /// snapshots, log compaction and overlapped settlement verification,
    /// with a relaxed (8-append) flush cadence.
    pub fn pipelined(dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            incremental: true,
            compact_log: true,
            flush_every: 8,
            background_writer: true,
            overlap_verify: true,
            ..Self::new(dir)
        }
    }
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            hits: 50,
            spawn_per_block: 8,
            workers: 40,
            worker_capacity: 4,
            overbook: 1,
            questions: 6,
            golds: 3,
            k: 3,
            theta: 3,
            budget: 3_000,
            behavior_mix: vec![
                (
                    WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.95 }),
                    6,
                ),
                (
                    WorkerBehavior::Honest(AnswerModel::Diligent { accuracy: 0.30 }),
                    2,
                ),
                (WorkerBehavior::Honest(AnswerModel::RandomBot), 1),
                (WorkerBehavior::CommitNoReveal, 1),
            ],
            windows: PhaseWindows {
                commit_timeout: Some(12),
                reveal: 2,
                evaluate: 4,
            },
            block_gas_limit: Some(30_000_000),
            settlement: SettlementMode::Batched,
            policy: MarketPolicy::Fifo,
            max_blocks: 600,
            seed: 0xd1a6_0000,
            clone_checkpointing: false,
            exec_threads: 0,
            econ: EconConfig::default(),
            net: None,
            proving: ProvingConfig::default(),
            persist: None,
        }
    }
}
